#!/usr/bin/env python
"""Validate the code references in the documentation suite.

Scans ``docs/PAPER_MAP.md`` (and any other docs passed on the command line)
for backticked code anchors and verifies each one still exists:

* ``repro.module``, ``repro.module.Name`` or ``repro.module.Name.attr`` --
  resolved by importing the longest importable module prefix and walking the
  remaining attributes;
* ``src/...``, ``benchmarks/...``, ``tests/...`` or ``scripts/...`` file
  paths (optionally with a ``:line`` suffix) -- checked against the repo
  tree.

Exits non-zero listing every broken reference, so CI fails when a refactor
renames a module or class the docs still point at.  Run locally with::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_DOCS = ["docs/PAPER_MAP.md", "docs/TUNING.md", "docs/INVARIANTS.md"]

BACKTICK = re.compile(r"`([^`]+)`")
DOTTED = re.compile(r"^repro(?:\.\w+)+$")
FILEPATH = re.compile(r"^(?:src|benchmarks|tests|scripts|examples|docs)/[\w./-]+$")


def check_dotted(ref: str) -> Tuple[bool, str]:
    """Resolve a ``repro.x.y.Z`` reference by import + getattr walk."""
    parts = ref.split(".")
    module = None
    attr_start = len(parts)
    # Longest importable prefix wins; attributes take over from there.
    for end in range(len(parts), 0, -1):
        try:
            module = importlib.import_module(".".join(parts[:end]))
            attr_start = end
            break
        except ImportError:
            continue
        except Exception as exc:  # pragma: no cover - import-time crash
            return False, f"import error: {exc!r}"
    if module is None:
        return False, "no importable module prefix"
    target = module
    for attr in parts[attr_start:]:
        if not hasattr(target, attr):
            return False, f"{type(target).__name__} {'.'.join(parts[:attr_start])!r} has no attribute chain {'.'.join(parts[attr_start:])!r}"
        target = getattr(target, attr)
    return True, ""


def check_filepath(ref: str) -> Tuple[bool, str]:
    path = ref.split(":", 1)[0]  # tolerate file.py:123 anchors
    if (REPO_ROOT / path).exists():
        return True, ""
    return False, "file does not exist"


def check_document(doc_path: Path) -> List[str]:
    errors: List[str] = []
    seen = set()
    text = doc_path.read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        for match in BACKTICK.finditer(line):
            ref = match.group(1).strip()
            if ref in seen:
                continue
            seen.add(ref)
            if DOTTED.match(ref):
                ok, reason = check_dotted(ref)
            elif FILEPATH.match(ref):
                ok, reason = check_filepath(ref)
            else:
                continue  # not a code anchor (env vars, shell snippets, ...)
            if not ok:
                errors.append(f"{doc_path}:{line_number}: `{ref}` -- {reason}")
    return errors


def main(argv: List[str]) -> int:
    docs = argv[1:] or DEFAULT_DOCS
    errors: List[str] = []
    checked = 0
    for doc in docs:
        path = REPO_ROOT / doc
        if not path.exists():
            errors.append(f"{doc}: document not found")
            continue
        checked += 1
        errors.extend(check_document(path))
    if errors:
        print(f"check_docs: {len(errors)} broken reference(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"check_docs: all code references resolve ({checked} document(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
