"""Table 4 -- localization accuracy vs probe-matrix coverage / identifiability.

The reproduced claims (scaled to a Fattree(6)):

* accuracy rises with coverage ((1,0) -> (3,0)),
* adding identifiability helps more per selected path than adding coverage:
  the (1,1) matrix reaches at least the (2,0) accuracy with fewer paths, and
  the (1,2) matrix is the best of all,
* accuracy does not collapse as the number of concurrent failures grows.
"""

from __future__ import annotations

import pytest

from repro.experiments import table4


@pytest.fixture(scope="module")
def table4_result():
    return table4.run(
        radix=6,
        alpha_beta=((1, 0), (2, 0), (1, 1), (1, 2)),
        failure_counts=(1, 5),
        trials=6,
        probes_per_path=100,
        seed=2017,
    )


class TestTable4Harness:
    def test_runs_and_benchmarks(self, benchmark):
        table = benchmark.pedantic(
            table4.run,
            kwargs=dict(
                radix=4,
                alpha_beta=((1, 0), (1, 1)),
                failure_counts=(1,),
                trials=4,
                probes_per_path=60,
            ),
            rounds=1,
            iterations=1,
        )
        assert len(table.rows) == 2

    def test_identifiability_trend(self, benchmark, table4_result):
        def read_rows():
            return {row["alpha_beta"]: row for row in table4_result.rows}

        rows = benchmark(read_rows)
        acc = {key: rows[key]["acc_1_failures"] for key in rows}
        paths = {key: rows[key]["paths"] for key in rows}
        # Coverage trend.
        assert acc["(2,0)"] >= acc["(1,0)"]
        # Identifiability beats 0-identifiability clearly.
        assert acc["(1,1)"] >= acc["(1,0)"] + 10.0
        # Identifiability is cheaper per path than coverage.
        assert paths["(1,1)"] < paths["(2,0)"]
        assert acc["(1,1)"] >= acc["(2,0)"] - 7.0
        # The strongest matrix is the most accurate.
        assert acc["(1,2)"] == max(acc.values())

    def test_accuracy_stable_under_many_failures(self, benchmark, table4_result):
        rows = benchmark(lambda: {row["alpha_beta"]: row for row in table4_result.rows})
        strong = rows["(1,2)"]
        assert strong["acc_5_failures"] >= strong["acc_1_failures"] - 20.0
        assert strong["acc_5_failures"] >= 70.0
