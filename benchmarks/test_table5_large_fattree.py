"""Table 5 -- accuracy / FP / FN with a 2-identifiable probe matrix.

The reproduced claims (scaled from the paper's 48-ary Fattree to Fattree(6)):

* accuracy stays high and roughly flat as the number of concurrent failures
  grows,
* the false-positive ratio stays very low (the paper: < 0.1%; we allow a few
  percent at this much smaller scale),
* accuracy + false negatives account for all truly bad links.
"""

from __future__ import annotations

import pytest

from repro.experiments import table5


class TestTable5Harness:
    def test_two_identifiable_localization(self, benchmark):
        table = benchmark.pedantic(
            table5.run,
            kwargs=dict(radix=6, beta=2, failure_counts=(1, 5, 10), trials=6, probes_per_path=150),
            rounds=1,
            iterations=1,
        )
        assert len(table.rows) == 3
        accuracies = [row["accuracy_pct"] for row in table.rows]
        false_positives = [row["false_positive_pct"] for row in table.rows]
        assert all(acc >= 80.0 for acc in accuracies)
        assert all(fp <= 10.0 for fp in false_positives)
        # Flatness: accuracy at 10 concurrent failures within 15 points of single-failure accuracy.
        assert accuracies[-1] >= accuracies[0] - 15.0
        for row in table.rows:
            assert row["accuracy_pct"] + row["false_negative_pct"] == pytest.approx(100.0, abs=1e-6)
        # The construction step reports its deterministic work profile (a
        # counter gate, not a timing one): with decomposition + lazy updates
        # on (the defaults), the lazy greedy's evaluations must stay far
        # below the strawman bound of one full rescore per iteration.
        counters = table.metadata["pmc_cost_counters"]
        assert counters["greedy_evaluations"] > 0
        assert counters["greedy_iterations"] == table.metadata["pmc_selected_paths"]
        strawman_bound = counters["greedy_iterations"] * table.metadata["pmc_candidate_paths"]
        assert counters["greedy_evaluations"] < strawman_bound
