"""§5.3 claim -- PLL vs Tomo / SCORE / OMP on identical observations.

The reproduced claims: given the same probe matrix, PLL's accuracy is at least
as high as Tomo's and SCORE's (the paper quotes ~2% higher), its false
positives are no worse, and it is substantially faster than OMP (the paper
quotes an order of magnitude over the baselines at DCN scale).
"""

from __future__ import annotations

import pytest

from repro.experiments import pll_comparison


@pytest.fixture(scope="module")
def comparison_table():
    return pll_comparison.run(
        radix=6, alpha=3, beta=1, trials=15, failures_per_trial=2, probes_per_path=120, seed=553
    )


def _row(table, algorithm):
    return next(row for row in table.rows if row["algorithm"] == algorithm)


class TestPLLComparison:
    def test_benchmark_small_run(self, benchmark):
        table = benchmark.pedantic(
            pll_comparison.run,
            kwargs=dict(radix=4, trials=5, failures_per_trial=1, probes_per_path=60),
            rounds=1,
            iterations=1,
        )
        assert [row["algorithm"] for row in table.rows] == ["PLL", "Tomo", "SCORE", "OMP"]

    def test_pll_accuracy_leads(self, benchmark, comparison_table):
        rows = benchmark(lambda: comparison_table.rows)
        pll = _row(comparison_table, "PLL")
        assert pll["accuracy_pct"] >= _row(comparison_table, "Tomo")["accuracy_pct"] - 1.0
        assert pll["accuracy_pct"] >= _row(comparison_table, "SCORE")["accuracy_pct"] - 1.0
        assert pll["accuracy_pct"] >= 85.0

    def test_pll_false_positives_low(self, benchmark, comparison_table):
        rows = benchmark(lambda: comparison_table.rows)
        pll = _row(comparison_table, "PLL")
        omp = _row(comparison_table, "OMP")
        assert pll["false_positive_pct"] <= 6.0
        assert pll["false_positive_pct"] <= omp["false_positive_pct"] + 1.0

    def test_pll_faster_than_omp(self, benchmark, comparison_table):
        rows = benchmark(lambda: comparison_table.rows)
        pll = _row(comparison_table, "PLL")
        omp = _row(comparison_table, "OMP")
        assert pll["mean_runtime_ms"] <= omp["mean_runtime_ms"]
