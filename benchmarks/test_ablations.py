"""Ablation benches for the design choices called out in DESIGN.md.

* PMC: lazy (CELF) score updates vs full re-scoring; decomposition on/off;
  symmetry on/off -- all must keep the constructed matrix valid while the
  optimised variants stay competitive on time.
* PLL: the hit-ratio threshold (0.6 default) -- too strict misses blackholes,
  too lax admits false positives; 0.6 should sit at or near the best accuracy.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.contracts import informational_wall
from repro.core import PMCOptions, check_coverage, check_identifiability, construct_probe_matrix, pmc_for_topology
from repro.localization import (
    PLLConfig,
    PLLLocalizer,
    aggregate_metrics,
    evaluate_localization,
    preprocess_observations,
)
from repro.simulation import FailureGenerator, LossMode, ProbeConfig, ProbeSimulator
from repro.topology import build_fattree


class TestPMCAblations:
    def test_lazy_update_cuts_evaluations(self, fattree6_routing):
        """Deterministic sibling of the wall-clock ablation: CELF never
        rescores more candidates than the eager greedy (counter-gated)."""
        results = {}
        for label, lazy in (("eager", False), ("lazy", True)):
            options = PMCOptions(alpha=2, beta=1, use_decomposition=True, use_lazy_update=lazy)
            results[label] = construct_probe_matrix(fattree6_routing, options).stats
        assert results["lazy"].greedy_evaluations <= results["eager"].greedy_evaluations
        # On Fattree(6) the saving is large, not marginal (paper §4.3).
        assert results["lazy"].greedy_evaluations * 5 < results["eager"].greedy_evaluations
        # The eager greedy never skips; lazy may or may not, but both report
        # the full counter profile.
        assert results["eager"].lazy_skips == 0
        assert results["lazy"].lazy_skips >= 0

    def test_decomposition_cuts_evaluations(self, fattree6_routing):
        """Decomposition solves per-component heaps, so the eager greedy
        rescored strictly fewer candidates per iteration (counter-gated)."""
        evals = {}
        for label, decompose in (("flat", False), ("decomposed", True)):
            options = PMCOptions(
                alpha=2, beta=1, use_decomposition=decompose, use_lazy_update=False
            )
            evals[label] = construct_probe_matrix(fattree6_routing, options).stats.greedy_evaluations
        assert evals["decomposed"] <= evals["flat"]

    @pytest.mark.wallclock
    @informational_wall("Ablation wall timings are informational comparisons, never determinism gates")
    def test_lazy_update_not_slower_than_eager(self, benchmark, fattree6_routing):
        def run_both():
            timings = {}
            for label, lazy in (("eager", False), ("lazy", True)):
                options = PMCOptions(alpha=2, beta=1, use_decomposition=True, use_lazy_update=lazy)
                start = time.perf_counter()
                result = construct_probe_matrix(fattree6_routing, options)
                timings[label] = time.perf_counter() - start
                assert check_coverage(result.probe_matrix, 2)
            return timings

        timings = benchmark.pedantic(run_both, rounds=2, iterations=1)
        assert timings["lazy"] <= timings["eager"]

    @pytest.mark.wallclock
    @informational_wall("Ablation wall timings are informational comparisons, never determinism gates")
    def test_decomposition_benefits_fattree(self, benchmark, fattree6_routing):
        def run_both():
            timings = {}
            for label, decompose in (("flat", False), ("decomposed", True)):
                options = PMCOptions(
                    alpha=2, beta=1, use_decomposition=decompose, use_lazy_update=False
                )
                start = time.perf_counter()
                construct_probe_matrix(fattree6_routing, options)
                timings[label] = time.perf_counter() - start
            return timings

        timings = benchmark.pedantic(run_both, rounds=2, iterations=1)
        # Fattree splits into k/2 independent subproblems, so decomposition
        # must not hurt and normally helps the un-optimised greedy a lot.
        assert timings["decomposed"] <= timings["flat"] * 1.1

    def test_symmetry_keeps_selection_size(self, benchmark, fattree6):
        def run_both():
            sizes = {}
            for label, symmetry in (("plain", False), ("symmetry", True)):
                result = pmc_for_topology(fattree6, alpha=2, beta=1, use_symmetry=symmetry)
                assert check_coverage(result.probe_matrix, 2)
                assert check_identifiability(result.probe_matrix, 1)
                sizes[label] = result.num_paths
            return sizes

        sizes = benchmark.pedantic(run_both, rounds=1, iterations=1)
        # §4.4: the number of selected paths with symmetry reduction is very
        # similar to that without.
        assert sizes["symmetry"] <= 1.3 * sizes["plain"]


class TestPLLThresholdAblation:
    @pytest.fixture(scope="class")
    def scenario_bundle(self):
        topology = build_fattree(4)
        probe_matrix = pmc_for_topology(topology, alpha=3, beta=1).probe_matrix
        rng = np.random.default_rng(31)
        generator = FailureGenerator(topology, rng)
        bundles = []
        for _ in range(15):
            scenario = generator.generate_single()
            simulator = ProbeSimulator(topology, scenario, rng)
            observations = simulator.observe_probe_matrix(
                probe_matrix, ProbeConfig(probes_per_path=120)
            )
            cleaned = preprocess_observations(probe_matrix, observations)
            bundles.append((scenario, cleaned.observations))
        return topology, probe_matrix, bundles

    def test_default_threshold_is_near_optimal(self, benchmark, scenario_bundle):
        topology, probe_matrix, bundles = scenario_bundle

        def sweep():
            results = {}
            for threshold in (0.2, 0.6, 0.95):
                metrics = []
                localizer = PLLLocalizer(PLLConfig(hit_ratio_threshold=threshold))
                for scenario, observations in bundles:
                    verdict = localizer.localize(probe_matrix, observations)
                    metrics.append(
                        evaluate_localization(
                            scenario.bad_link_ids, verdict.suspected_links, probe_matrix.link_ids
                        )
                    )
                aggregated = aggregate_metrics(metrics)
                results[threshold] = (
                    aggregated["accuracy"],
                    aggregated["false_positive_ratio"],
                )
            return results

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        default_accuracy, default_fp = results[0.6]
        best_accuracy = max(acc for acc, _ in results.values())
        # The default threshold sits close to the best accuracy of the sweep
        # while keeping false positives low; the paper picks 0.6 on the same
        # grounds (the exact optimum depends on the failure mix).
        assert default_accuracy >= best_accuracy - 0.1
        assert default_fp <= 0.1
