"""Wall-clock gates for the streaming serve mode (ISSUE 6).

Relative gate: coalesced (batched) probe scheduling must beat the per-event
baseline by a wide margin on the streaming plane.  Absolute gate: a modest
floor the small CI instance clears comfortably -- the hard >= 2M events/s
Fattree(16) gate lives in ``bench_engine.py --min-rate 2000000``, which the
CI benchmark job runs on the full instance.
"""

from __future__ import annotations

import pytest

from repro.engine import DynamicFaultModel, EngineConfig, FlappingLink, TelemetryEngine
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import ChurnSchedule, SeededStreams
from repro.topology import build_fattree


def _run(topology, batched: bool, duration: float = 120.0) -> "tuple":
    streams = SeededStreams(2017)
    system = DetectorSystem(
        topology, streams.generator("probing"), ControllerConfig(alpha=2, beta=1)
    )
    system.run_controller_cycle()
    links = [link.link_id for link in topology.switch_links]
    picker = streams.generator("fault-placement")
    flapped = [int(links[i]) for i in picker.choice(len(links), size=3, replace=False)]
    config = EngineConfig(
        window_seconds=30.0,
        cycle_seconds=60.0,
        probes_per_second=100.0,
        batched_scheduling=batched,
        aggregator_shards=8 if batched else 1,
    )
    schedule = ChurnSchedule.generate(
        topology,
        streams.generator("churn"),
        num_cycles=int(duration // config.cycle_seconds) + 1,
        mean_events_per_cycle=1.5,
        switch_probability=0.0,
        server_probability=0.0,
        max_failed_links=3,
    )
    model = DynamicFaultModel(
        topology,
        episodes=[
            FlappingLink(link_id=link, start_time=30.0, half_life_up_seconds=60.0,
                         half_life_down_seconds=30.0)
            for link in flapped
        ],
        rng=streams.generator("fault-dynamics"),
        churn_schedule=schedule,
    )
    engine = TelemetryEngine(system, model, config, rng=streams.generator("probe-jitter"))
    result = engine.run(duration)
    return result


@pytest.mark.wallclock
class TestStreamingThroughput:
    def test_batched_beats_per_event_streaming_plane(self):
        """Coalescing must deliver a real streaming-plane speedup, not parity.

        The gate is deliberately lenient (2.5x vs the ~4-7x typically
        measured) so machine noise cannot flake it; the deterministic
        byte-identity of the two modes is covered in tier-1.
        """
        topology = build_fattree(8)
        batched = _run(topology, batched=True)
        per_event = _run(topology, batched=False)
        assert batched.probes_sent == per_event.probes_sent  # same work simulated
        rate_batched = batched.probe_events_per_second
        rate_per_event = per_event.probe_events_per_second
        assert rate_batched > 2.5 * rate_per_event, (
            f"batched {rate_batched:,.0f}/s vs per-event {rate_per_event:,.0f}/s"
        )

    def test_absolute_floor_on_small_instance(self):
        """Fattree(8) must clear 1M probe events/s on the streaming plane
        (the full Fattree(16) >= 2M gate runs in bench_engine.py)."""
        result = _run(build_fattree(8), batched=True)
        assert result.probe_events_per_second > 1_000_000, (
            f"{result.probe_events_per_second:,.0f} events/s"
        )
