"""Figure 5 -- deTector vs Pingmesh(+Netbouncer) vs NetNORAD(+fbtracert), single failure.

The reproduced claims:

* at its 10 pps operating point deTector's accuracy is at least as high as the
  best accuracy either baseline reaches anywhere in the sweep,
* deTector needs fewer probes than the baselines need to reach (or approach)
  that accuracy -- the paper quotes 3.9x vs Pingmesh and 1.9x vs NetNORAD,
* deTector localizes ~30 seconds earlier (no post-alarm probing round).
"""

from __future__ import annotations

import pytest

from repro.experiments import figure5


@pytest.fixture(scope="module")
def figure5_result():
    return figure5.run(
        radix=4,
        trials=8,
        detector_frequencies=(2, 10),
        baseline_probes_per_pair=(5, 20, 40),
        seed=55,
    )


def _rows_for(table, system):
    return [row for row in table.rows if row["system"] == system]


class TestFigure5Harness:
    def test_benchmark_small_run(self, benchmark):
        table = benchmark.pedantic(
            figure5.run,
            kwargs=dict(
                radix=4, trials=3, detector_frequencies=(5,), baseline_probes_per_pair=(10,)
            ),
            rounds=1,
            iterations=1,
        )
        assert len(table.rows) == 3

    def test_detector_wins_on_accuracy(self, benchmark, figure5_result):
        rows = benchmark(lambda: figure5_result.rows)
        detector_best = max(r["accuracy_pct"] for r in _rows_for(figure5_result, "deTector"))
        pingmesh_best = max(
            r["accuracy_pct"] for r in _rows_for(figure5_result, "Pingmesh+Netbouncer")
        )
        netnorad_best = max(
            r["accuracy_pct"] for r in _rows_for(figure5_result, "NetNORAD+fbtracert")
        )
        assert detector_best >= 90.0
        assert detector_best >= pingmesh_best - 2.0
        assert detector_best >= netnorad_best - 2.0

    def test_detector_needs_fewer_probes_for_its_accuracy(self, benchmark, figure5_result):
        rows = benchmark(lambda: figure5_result.rows)
        detector = max(
            _rows_for(figure5_result, "deTector"), key=lambda r: r["accuracy_pct"]
        )
        for system in ("Pingmesh+Netbouncer", "NetNORAD+fbtracert"):
            competitive = [
                r
                for r in _rows_for(figure5_result, system)
                if r["accuracy_pct"] >= detector["accuracy_pct"] - 2.0
            ]
            if competitive:
                cheapest = min(r["probes_per_minute"] for r in competitive)
                assert cheapest >= detector["probes_per_minute"] * 0.9

    def test_detector_localizes_earlier(self, benchmark, figure5_result):
        rows = benchmark(lambda: figure5_result.rows)
        detector_delay = max(
            r["time_to_localization_s"] for r in _rows_for(figure5_result, "deTector")
        )
        for system in ("Pingmesh+Netbouncer", "NetNORAD+fbtracert"):
            baseline_delay = max(
                r["time_to_localization_s"] for r in _rows_for(figure5_result, system)
            )
            assert baseline_delay >= detector_delay + 25.0
