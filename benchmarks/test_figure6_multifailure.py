"""Figure 6 -- multiple concurrent failures at a fixed probing budget.

The reproduced claims: with every system constrained to the same detection
budget, deTector's accuracy stays clearly above both baselines across the
whole failure-count sweep, and its false positives stay no worse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figure6


@pytest.fixture(scope="module")
def figure6_result():
    return figure6.run(
        radix=4, probe_budget_per_minute=5850, failure_counts=(1, 3, 5), trials=8, seed=66
    )


def _mean(table, system, column):
    values = [row[column] for row in table.rows if row["system"] == system]
    return float(np.mean(values))


class TestFigure6Harness:
    def test_benchmark_small_run(self, benchmark):
        table = benchmark.pedantic(
            figure6.run,
            kwargs=dict(radix=4, probe_budget_per_minute=4000, failure_counts=(2,), trials=3),
            rounds=1,
            iterations=1,
        )
        assert len(table.rows) == 3

    def test_detector_dominates_at_fixed_budget(self, benchmark, figure6_result):
        rows = benchmark(lambda: figure6_result.rows)
        detector_acc = _mean(figure6_result, "deTector", "accuracy_pct")
        pingmesh_acc = _mean(figure6_result, "Pingmesh+Netbouncer", "accuracy_pct")
        netnorad_acc = _mean(figure6_result, "NetNORAD+fbtracert", "accuracy_pct")
        # deTector clearly beats Pingmesh and is at least comparable to
        # NetNORAD at this 4-ary testbed scale (the full NetNORAD gap of the
        # paper needs the ECMP dilution of larger fabrics -- see EXPERIMENTS.md),
        # while localizing a whole window earlier.
        assert detector_acc >= pingmesh_acc + 5.0
        assert detector_acc >= netnorad_acc - 6.0
        assert detector_acc >= 75.0

    def test_detector_false_positives_not_worse(self, benchmark, figure6_result):
        rows = benchmark(lambda: figure6_result.rows)
        detector_fp = _mean(figure6_result, "deTector", "false_positive_pct")
        pingmesh_fp = _mean(figure6_result, "Pingmesh+Netbouncer", "false_positive_pct")
        assert detector_fp <= pingmesh_fp + 5.0
        assert detector_fp <= 15.0

    def test_accuracy_degrades_gracefully_with_failures(self, benchmark, figure6_result):
        rows = benchmark(
            lambda: sorted(
                (r for r in figure6_result.rows if r["system"] == "deTector"),
                key=lambda r: r["failed_links"],
            )
        )
        # No cliff: even at the largest concurrent-failure count deTector keeps
        # localizing the majority of the failures at the fixed budget.
        assert rows[-1]["accuracy_pct"] >= 60.0
        assert rows[-1]["accuracy_pct"] >= rows[0]["accuracy_pct"] - 35.0
