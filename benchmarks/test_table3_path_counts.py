"""Table 3 -- number of selected probe paths for different (alpha, beta).

The reproduced claims:

* PMC selects a tiny fraction of the candidate paths,
* the path count grows with both alpha and beta,
* for a k-ary Fattree the (1,1) selection stays within a small constant factor
  of the k^3/5 lower bound (the paper: 61,440 selected vs 52,428.8 bound for
  k=64, a factor of ~1.17).
"""

from __future__ import annotations

import pytest

from repro.experiments import table3


class TestTable3Harness:
    def test_path_count_shape(self, benchmark):
        table = benchmark.pedantic(
            table3.run,
            kwargs={"alpha_beta": ((1, 0), (1, 1), (3, 2))},
            rounds=1,
            iterations=1,
        )
        assert len(table.rows) >= 3
        for row in table.rows:
            selected_10 = row["paths(1,0)"]
            selected_11 = row["paths(1,1)"]
            selected_32 = row["paths(3,2)"]
            # Growth with the targets, as in every row of the paper's table.
            assert selected_10 <= selected_11 <= selected_32
            # A small fraction of the candidate set.
            assert selected_32 <= row["candidate_paths"]
            assert selected_10 <= 0.5 * row["candidate_paths"]

    def test_fattree_lower_bound_proximity(self, benchmark):
        instances = [i for i in table3.default_instances() if i.fattree_k is not None]
        table = benchmark.pedantic(
            table3.run,
            kwargs={"instances": instances, "alpha_beta": ((1, 1),)},
            rounds=1,
            iterations=1,
        )
        for row in table.rows:
            bound = row["fattree_lower_bound"]
            selected = row["paths(1,1)"]
            assert selected >= bound * 0.8  # the bound really is a lower bound (allowing rounding)
            assert selected <= bound * 2.5  # and PMC stays close to it
