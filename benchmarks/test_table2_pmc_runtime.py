"""Table 2 -- PMC running time per optimisation level.

The paper's claim: each added optimisation (problem decomposition, lazy score
updates, symmetry reduction) cuts the construction time, by orders of
magnitude at scale.  These benchmarks time each variant on a Fattree(6)
routing matrix (1,377 candidate paths) and the full sweep harness on the
"small" instance set, and assert the ordering strawman >= lazy variants.
"""

from __future__ import annotations

import pytest

from repro.core import PMCOptions, check_coverage, check_identifiability, construct_probe_matrix
from repro.experiments import table2
from repro.topology import PathOrbits

ALPHA, BETA = 2, 1


def _options(**flags):
    return PMCOptions(alpha=ALPHA, beta=BETA, **flags)


class TestPMCVariants:
    def test_strawman(self, benchmark, fattree6_routing):
        options = _options(use_decomposition=False, use_lazy_update=False, use_symmetry=False)
        result = benchmark.pedantic(
            construct_probe_matrix, args=(fattree6_routing, options), rounds=2, iterations=1
        )
        assert check_coverage(result.probe_matrix, ALPHA)
        assert check_identifiability(result.probe_matrix, BETA)

    def test_decomposition(self, benchmark, fattree6_routing):
        options = _options(use_decomposition=True, use_lazy_update=False, use_symmetry=False)
        result = benchmark.pedantic(
            construct_probe_matrix, args=(fattree6_routing, options), rounds=2, iterations=1
        )
        assert check_coverage(result.probe_matrix, ALPHA)

    def test_lazy_update(self, benchmark, fattree6_routing):
        options = _options(use_decomposition=True, use_lazy_update=True, use_symmetry=False)
        result = benchmark.pedantic(
            construct_probe_matrix, args=(fattree6_routing, options), rounds=3, iterations=1
        )
        assert check_coverage(result.probe_matrix, ALPHA)

    def test_symmetry(self, benchmark, fattree6, fattree6_routing):
        orbits = PathOrbits.from_walks(fattree6, [p.nodes for p in fattree6_routing.paths])
        options = _options(use_decomposition=True, use_lazy_update=True, use_symmetry=True)
        result = benchmark.pedantic(
            construct_probe_matrix,
            args=(fattree6_routing, options),
            kwargs={"orbits": orbits},
            rounds=3,
            iterations=1,
        )
        assert check_coverage(result.probe_matrix, ALPHA)
        assert check_identifiability(result.probe_matrix, BETA)


class TestTable2Harness:
    def test_full_sweep_shape(self, benchmark):
        table = benchmark.pedantic(table2.run, rounds=1, iterations=1)
        assert len(table.rows) >= 3
        for row in table.rows:
            timings = [
                row[column]
                for column in ("strawman", "decomposition", "lazy_update", "symmetry")
                if row[column] is not None
            ]
            assert timings, f"no optimisation level ran for {row['dcn']}"
            # The paper's headline ordering: the fully optimised variant never
            # loses to the strawman (decomposition alone may add overhead on
            # VL2/BCube, exactly as Table 2 reports).
            if row["strawman"] is not None:
                assert row["symmetry"] <= row["strawman"] * 1.2
                assert row["lazy_update"] <= row["strawman"] * 1.2
            assert row["selected_paths"] is not None and row["selected_paths"] > 0
