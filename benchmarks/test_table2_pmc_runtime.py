"""Table 2 -- PMC work per optimisation level (counter-gated).

The paper's claim: each added optimisation (problem decomposition, lazy score
updates, symmetry reduction) cuts the construction *work*, by orders of
magnitude at scale.  The gate asserts that claim on the deterministic
greedy-evaluation counters (byte-identical across backends and machines, so
the test cannot flake on a loaded CI box); wall-clock timings stay in the
table as informational columns and in the ``wallclock``-marked micro
benchmarks, which the tier-1 gate job excludes.
"""

from __future__ import annotations

import pytest

from repro.core import PMCOptions, check_coverage, check_identifiability, construct_probe_matrix
from repro.experiments import table2
from repro.topology import PathOrbits

ALPHA, BETA = 2, 1

EVAL_COLUMNS = ("strawman_evals", "decomposition_evals", "lazy_update_evals", "symmetry_evals")


def _options(**flags):
    return PMCOptions(alpha=ALPHA, beta=BETA, **flags)


@pytest.mark.wallclock
class TestPMCVariants:
    """Wall-clock micro benchmarks of the four variants (informational only)."""

    def test_strawman(self, benchmark, fattree6_routing):
        options = _options(use_decomposition=False, use_lazy_update=False, use_symmetry=False)
        result = benchmark.pedantic(
            construct_probe_matrix, args=(fattree6_routing, options), rounds=2, iterations=1
        )
        assert check_coverage(result.probe_matrix, ALPHA)
        assert check_identifiability(result.probe_matrix, BETA)

    def test_decomposition(self, benchmark, fattree6_routing):
        options = _options(use_decomposition=True, use_lazy_update=False, use_symmetry=False)
        result = benchmark.pedantic(
            construct_probe_matrix, args=(fattree6_routing, options), rounds=2, iterations=1
        )
        assert check_coverage(result.probe_matrix, ALPHA)

    def test_lazy_update(self, benchmark, fattree6_routing):
        options = _options(use_decomposition=True, use_lazy_update=True, use_symmetry=False)
        result = benchmark.pedantic(
            construct_probe_matrix, args=(fattree6_routing, options), rounds=3, iterations=1
        )
        assert check_coverage(result.probe_matrix, ALPHA)

    def test_symmetry(self, benchmark, fattree6, fattree6_routing):
        orbits = PathOrbits.from_walks(fattree6, [p.nodes for p in fattree6_routing.paths])
        options = _options(use_decomposition=True, use_lazy_update=True, use_symmetry=True)
        result = benchmark.pedantic(
            construct_probe_matrix,
            args=(fattree6_routing, options),
            kwargs={"orbits": orbits},
            rounds=3,
            iterations=1,
        )
        assert check_coverage(result.probe_matrix, ALPHA)
        assert check_identifiability(result.probe_matrix, BETA)


class TestTable2Harness:
    def test_full_sweep_shape(self, benchmark):
        table = benchmark.pedantic(table2.run, rounds=1, iterations=1)
        assert len(table.rows) >= 3
        for row in table.rows:
            evals = [row[column] for column in EVAL_COLUMNS if row[column] is not None]
            assert evals, f"no optimisation level ran for {row['dcn']}"
            # The paper's headline ordering, gated on *work* rather than
            # wall clock: the optimised variants never evaluate more
            # candidates than the strawman's full-rescore greedy.
            # (Decomposition alone may add wall-clock overhead on VL2/BCube,
            # exactly as Table 2 reports -- but never extra evaluations.)
            if row["strawman_evals"] is not None:
                assert row["symmetry_evals"] <= row["strawman_evals"]
                assert row["lazy_update_evals"] <= row["strawman_evals"]
                assert row["decomposition_evals"] <= row["strawman_evals"]
                # Lazy (CELF) updates only ever skip rescores.
                assert row["lazy_update_evals"] <= row["decomposition_evals"]
            # The informational wall-clock cells ride along for every level
            # whose counter cell is populated (never asserted on).
            for column in EVAL_COLUMNS:
                level = column[: -len("_evals")]
                assert (row[level] is None) == (row[column] is None)
                if row[level] is not None:
                    assert row[level] >= 0.0
            assert row["selected_paths"] is not None and row["selected_paths"] > 0

    def test_sweep_counters_are_deterministic(self):
        """Two back-to-back sweeps agree byte-for-byte on the counter view."""
        instances = table2.default_instances("tiny")
        first = table2.run(instances=instances)
        second = table2.run(instances=instances)
        assert first.deterministic_rows() == second.deterministic_rows()
        assert set(first.metadata["informational_columns"]) == {
            "strawman",
            "decomposition",
            "lazy_update",
            "symmetry",
        }
