"""Parallel experiment-runner benchmark: writes ``BENCH_runner.json``.

Runs the same experiment sweep twice -- serially and through the process-pool
executor (``run_all(..., jobs=N)``) -- and

* **hard-gates determinism**: the two sweeps must produce byte-identical
  tables on their deterministic view (``ExperimentTable.deterministic_rows``;
  wall-clock cells are informational by design), and
* **records the wall-clock speedup** (informational: it depends on the CI
  box's cores and load, so it is reported, never asserted).

Used by the CI benchmark-smoke job in quick mode; run locally with::

    PYTHONPATH=src python benchmarks/bench_runner.py [--quick] [--jobs N] [--out BENCH_runner.json]
"""

from __future__ import annotations

import argparse
import os
import time

from repro.contracts import informational_wall
from repro.experiments import ExperimentSuite, run_all
from repro.obs import counters_block, write_bench_report


def build_suite(quick: bool) -> ExperimentSuite:
    suite = ExperimentSuite(name="bench-runner-quick" if quick else "bench-runner")
    if quick:
        suite.add_spec("table2", "table2", scale="tiny")
        suite.add_spec("table3", "table3")
        suite.add_spec("figure6", "figure6", radix=4, trials=4, failure_counts=(1, 3))
        suite.add_spec("table4", "table4", radix=4, trials=4, probes_per_path=80,
                       alpha_beta=((1, 0), (1, 1)), failure_counts=(1, 2))
    else:
        suite.add_spec("table2", "table2")
        suite.add_spec("table3", "table3")
        suite.add_spec("table4", "table4", radix=4, trials=5, probes_per_path=80,
                       alpha_beta=((1, 0), (2, 0), (1, 1)), failure_counts=(1, 2))
        suite.add_spec("table5", "table5", radix=6, beta=2, trials=4,
                       failure_counts=(1, 5), probes_per_path=100)
        suite.add_spec("figure6", "figure6", radix=4, trials=6, failure_counts=(1, 3, 5))
        suite.add_spec("pll_comparison", "pll_comparison", radix=6, trials=10)
    return suite


@informational_wall("Benchmark wall timings are informational by definition")
def sweep(suite: ExperimentSuite, jobs: int, seed: int):
    start = time.perf_counter()
    runs = run_all(suite, verbose=False, jobs=jobs, seed=seed)
    return runs, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small experiments only")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the parallel sweep (default: min(4, cores))")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--out", default="BENCH_runner.json")
    args = parser.parse_args()

    import scipy.sparse.csgraph  # noqa: F401  (warm up lazy imports)

    jobs = args.jobs or min(4, os.cpu_count() or 1)
    suite = build_suite(args.quick)

    serial_runs, serial_seconds = sweep(suite, jobs=1, seed=args.seed)
    parallel_runs, parallel_seconds = sweep(suite, jobs=jobs, seed=args.seed)

    # Determinism is the gate; the speedup is informational.
    mismatches = [
        a.name
        for a, b in zip(serial_runs, parallel_runs)
        if a.table.deterministic_rows() != b.table.deterministic_rows()
        or a.table.notes != b.table.notes
        or a.table.metadata != b.table.metadata
    ]
    if mismatches:
        raise SystemExit(f"serial and --jobs {jobs} sweeps diverge on: {mismatches}")

    rows = [
        {
            "experiment": run.name,
            "serial_seconds": round(run.elapsed_seconds, 3),  # informational
            **counters_block({"deterministic_rows": len(run.table.deterministic_rows())}),
        }
        for run in serial_runs
    ]
    report = write_bench_report(
        args.out,
        "parallel_experiment_runner",
        config={
            "suite": suite.name,
            "experiments": suite.names(),
            "jobs": jobs,
            "seed": args.seed,
        },
        rows=rows,
        cpu_count=os.cpu_count(),
        serial_seconds=round(serial_seconds, 3),
        parallel_seconds=round(parallel_seconds, 3),
        speedup=round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        tables_identical=True,
        per_experiment_serial_seconds={
            run.name: round(run.elapsed_seconds, 3) for run in serial_runs
        },
    )
    print(
        f"{suite.name}: serial {serial_seconds:.2f}s -> jobs={jobs} {parallel_seconds:.2f}s "
        f"(x{report['speedup']}), tables identical"
    )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
