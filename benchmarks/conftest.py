"""Shared fixtures for the benchmark suite (pytest-benchmark).

Benchmarks regenerate the paper's tables and figures on scaled-down instances
and assert the *qualitative* shape (who wins, orderings, trends), not absolute
numbers.  Run them with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_fattree
from repro.routing import RoutingMatrix, enumerate_candidate_paths


@pytest.fixture(scope="session")
def fattree4():
    return build_fattree(4)


@pytest.fixture(scope="session")
def fattree6():
    return build_fattree(6)


@pytest.fixture(scope="session")
def fattree6_routing(fattree6):
    paths = enumerate_candidate_paths(fattree6, ordered=False)
    return RoutingMatrix(fattree6, paths)


@pytest.fixture
def rng():
    return np.random.default_rng(777)
