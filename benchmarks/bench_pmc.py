"""PMC smoke benchmark: writes counter-annotated ``BENCH_pmc.json``.

Runs probe-matrix construction (the Table 2 configuration: alpha=2, beta=1,
decomposition + lazy updates) on a few Fattree sizes, once per incidence
backend, and asserts that both backends agree byte-for-byte on the selected
path sets *and* on the deterministic cost counters
(:meth:`~repro.core.PMCStats.cost_counters`).  The counters are the gateable
signal; the recorded wall-clock seconds are informational.  Used by the CI
benchmark-smoke job; run locally with::

    PYTHONPATH=src python benchmarks/bench_pmc.py [--quick] [--out BENCH_pmc.json]
"""

from __future__ import annotations

import argparse
import time

from repro.contracts import informational_wall
from repro.core import PMCOptions, construct_probe_matrix
from repro.core.incidence import Backend
from repro.obs import counters_block, write_bench_report
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.topology import build_fattree


@informational_wall("Benchmark wall timings are informational by definition")
def bench(radix: int) -> dict:
    topology = build_fattree(radix)
    paths = enumerate_candidate_paths(topology, ordered=False)
    row = {"topology": f"fattree{radix}", "candidate_paths": len(paths)}
    selections = {}
    counters = {}
    for backend in (Backend.NUMPY, Backend.PYTHON):
        t0 = time.perf_counter()
        routing = RoutingMatrix(topology, paths, backend=backend)
        t1 = time.perf_counter()
        result = construct_probe_matrix(routing, PMCOptions(alpha=2, beta=1))
        t2 = time.perf_counter()
        selections[backend] = result.selected_indices
        counters[backend] = result.stats.cost_counters()
        row[f"{backend.value}_build_seconds"] = round(t1 - t0, 4)
        row[f"{backend.value}_pmc_seconds"] = round(t2 - t1, 4)
        row["selected_paths"] = result.num_paths
    if selections[Backend.NUMPY] != selections[Backend.PYTHON]:
        raise SystemExit(f"backend selections diverge on fattree{radix}")
    if counters[Backend.NUMPY] != counters[Backend.PYTHON]:
        raise SystemExit(f"backend cost counters diverge on fattree{radix}")
    row["backends_identical"] = True
    row["counters_identical"] = True
    row.update(counters_block(counters[Backend.NUMPY]))
    row["speedup_python_over_numpy"] = round(
        row["python_pmc_seconds"] / max(row["numpy_pmc_seconds"], 1e-9), 2
    )
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small instances only")
    parser.add_argument("--out", default="BENCH_pmc.json")
    args = parser.parse_args()

    # Warm up lazy imports so the first timed run is not charged for one-time
    # module loading (csgraph only loads above the decomposition size gate).
    import scipy.sparse.csgraph  # noqa: F401

    bench(4)

    radices = (4, 6) if args.quick else (4, 6, 8, 10)
    report = write_bench_report(
        args.out,
        "pmc_construction",
        config={"alpha": 2, "beta": 1, "decomposition": True, "lazy_update": True},
        rows=[bench(radix) for radix in radices],
    )
    for row in report["rows"]:
        print(
            f"{row['topology']:>10}: numpy={row['numpy_pmc_seconds']:.3f}s "
            f"python={row['python_pmc_seconds']:.3f}s "
            f"(x{row['speedup_python_over_numpy']}) sel={row['selected_paths']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
