"""Figure 4 -- probing-frequency sensitivity (accuracy, overhead, RTT, jitter).

The reproduced claims on the Fattree(4) testbed topology:

* (a) accuracy is already high at ~10 probes/second and does not degrade with
  more probing; false positives stay low,
* (b) pinger bandwidth/CPU grow linearly with the frequency, with ~100-200
  Kbps and well under 2% CPU at the paper's 10-15 pps operating point,
* (c)/(d) workload RTT and jitter barely move across the whole sweep.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure4


@pytest.fixture(scope="module")
def figure4_result():
    return figure4.run(radix=4, frequencies=(2, 10, 30), trials_per_frequency=8, seed=44)


class TestFigure4Harness:
    def test_benchmark_small_run(self, benchmark):
        table = benchmark.pedantic(
            figure4.run,
            kwargs=dict(radix=4, frequencies=(5, 20), trials_per_frequency=4),
            rounds=1,
            iterations=1,
        )
        assert len(table.rows) == 2

    def test_accuracy_panel(self, benchmark, figure4_result):
        rows = benchmark(lambda: {row["probes_per_second"]: row for row in figure4_result.rows})
        assert rows[10]["accuracy_pct"] >= 85.0
        assert rows[30]["accuracy_pct"] >= rows[2]["accuracy_pct"] - 5.0
        assert all(row["false_positive_pct"] <= 10.0 for row in rows.values())

    def test_overhead_panel(self, benchmark, figure4_result):
        rows = benchmark(lambda: sorted(figure4_result.rows, key=lambda r: r["probes_per_second"]))
        bandwidths = [row["bandwidth_kbps"] for row in rows]
        cpus = [row["cpu_pct"] for row in rows]
        assert bandwidths == sorted(bandwidths)
        assert cpus == sorted(cpus)
        ten_pps = next(row for row in rows if row["probes_per_second"] == 10)
        assert 50.0 <= ten_pps["bandwidth_kbps"] <= 300.0
        assert ten_pps["cpu_pct"] <= 2.0
        assert 5.0 <= ten_pps["memory_mb"] <= 30.0

    def test_latency_panels_stay_flat(self, benchmark, figure4_result):
        rows = benchmark(lambda: sorted(figure4_result.rows, key=lambda r: r["probes_per_second"]))
        rtts = [row["workload_rtt_us"] for row in rows]
        jitters = [row["workload_jitter_us"] for row in rows]
        # Probing is a drop in the bucket: the largest sweep point changes the
        # workload RTT and jitter by well under 50%.
        assert max(rtts) <= 1.5 * min(rtts)
        assert max(jitters) <= 2.0 * max(min(jitters), 1.0)
