"""Pod-sharded control-plane benchmark: writes ``BENCH_podshard.json``.

Two gates, both on **exact deterministic counters** (wall-clock numbers are
recorded but informational only, as PR 4 established for Table 2):

* **Jobs invariance** -- the pod-sharded solve at ``jobs > 1`` must be
  byte-identical to ``jobs=1``: same selections, same
  ``PMCStats.cost_counters()``, same per-shard digests and per-shard kernel
  counters.  A divergence is a hard failure, so the benchmark doubles as a
  large-instance differential test.
* **Churn isolation** -- on a warmed sharded controller, failing one
  pod-owned link must re-solve exactly that pod's shard plus the residual
  shard; every other shard must replay from its warm bucket with a zero
  kernel delta.
* **Dispatch-plane scaling** -- with the shared-memory incidence plane and
  persistent pools warm, a zero-churn cycle ships zero task payload and a
  one-pod churn cycle ships payload proportional to the churned shards (far
  below one pickled routing matrix), with zero pool spawns in either case.

Used by the CI benchmark-smoke job in quick mode; run the full configuration
locally with::

    PYTHONPATH=src python benchmarks/bench_podshard.py [--quick] [--out BENCH_podshard.json]
"""

from __future__ import annotations

import argparse
import pickle
import time

from repro.contracts import informational_wall
from repro.core import (
    PMCOptions,
    RESIDUAL_POD,
    construct_probe_matrix,
    link_pod_map,
)
from repro.core.incidence import shm_telemetry
from repro.monitor import Controller, ControllerConfig
from repro.obs import counters_block, write_bench_report
from repro.parallel import pool_telemetry, shutdown_pools
from repro.routing import RoutingMatrix, enumerate_candidate_paths
from repro.topology import build_bcube, build_fattree, build_vl2


@informational_wall("Benchmark wall timings are informational by definition")
def bench_jobs_invariance(name: str, topology, paths, jobs: int) -> dict:
    matrix = RoutingMatrix(topology, paths)

    t0 = time.perf_counter()
    serial = construct_probe_matrix(
        matrix, PMCOptions(alpha=2, beta=1, shard_by_pods=True, jobs=1)
    )
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = construct_probe_matrix(
        matrix, PMCOptions(alpha=2, beta=1, shard_by_pods=True, jobs=jobs)
    )
    parallel_seconds = time.perf_counter() - t0

    # The gate: counters, not clocks.
    if parallel.selected_indices != serial.selected_indices:
        raise SystemExit(f"{name}: parallel selections diverged from serial")
    if parallel.stats.cost_counters() != serial.stats.cost_counters():
        raise SystemExit(f"{name}: parallel cost counters diverged from serial")
    if parallel.shard_digests() != serial.shard_digests():
        raise SystemExit(f"{name}: shard digests diverged")
    if [s.kernel_cost for s in parallel.shards] != [s.kernel_cost for s in serial.shards]:
        raise SystemExit(f"{name}: per-shard kernel counters diverged")

    return {
        "topology": name,
        "candidate_paths": len(paths),
        "selected_paths": len(serial.selected_indices),
        "shards": [
            {
                "pod": shard.pod,
                "paths": shard.num_paths,
                "links": shard.num_links,
                "selected": shard.num_selected,
            }
            for shard in serial.shards
        ],
        "jobs": jobs,
        **counters_block(serial.stats.cost_counters()),
        "byte_identical_across_jobs": True,
        # Informational only -- small instances are dominated by pool spawn.
        "serial_wall_seconds": round(serial_seconds, 4),
        "parallel_wall_seconds": round(parallel_seconds, 4),
    }


@informational_wall("Benchmark wall timings are informational by definition")
def bench_churn_isolation(name: str, topology) -> dict:
    config = ControllerConfig(alpha=2, beta=1, shard_by_pods=True, intrapod_paths=True)
    controller = Controller(topology, config)
    controller.run_incremental_cycle()  # bootstrap full rebuild
    controller.run_incremental_cycle()  # seed the per-pod warm buckets

    pods = link_pod_map(topology)
    target_pod = 0
    bad = next(l.link_id for l in topology.switch_links if pods[l.link_id] == target_pod)

    t0 = time.perf_counter()
    controller.watchdog.report_failed_link(bad)
    cycle = controller.run_incremental_cycle()
    churn_seconds = time.perf_counter() - t0

    expected = (target_pod, RESIDUAL_POD)
    if cycle.touched_shards != expected:
        raise SystemExit(
            f"{name}: pod-{target_pod} churn touched shards {cycle.touched_shards}, "
            f"expected {expected}"
        )
    for shard in cycle.pmc_result.shards:
        if shard.pod in expected:
            continue
        if not shard.reused or shard.kernel_cost != {}:
            raise SystemExit(
                f"{name}: untouched shard {shard.pod} did kernel work {shard.kernel_cost}"
            )

    total = len(cycle.pmc_result.shards)
    return {
        "topology": name,
        "num_shards": total,
        "touched_shards": list(cycle.touched_shards),
        "replayed_shards": total - len(cycle.touched_shards),
        "isolation_holds": True,
        "churn_cycle_wall_seconds": round(churn_seconds, 4),  # informational
    }


def bench_dispatch_plane(name: str, topology, jobs: int) -> dict:
    """Gate the zero-copy dispatch plane: payload scales with churn, not topology.

    A warmed sharded controller at ``jobs > 1`` runs one zero-churn cycle and
    one single-pod churn cycle.  Hard gates on the process-wide dispatch
    telemetry deltas:

    * zero-churn: every shard replays from its warm bucket, so **zero** task
      payload crosses the pool boundary and no pool is spawned;
    * churn: only the churned + residual shards ship (small subproblem + its
      coverage slice), so the payload stays far below one pickled routing
      matrix -- the quantity the pre-shm plane shipped per dispatch -- and the
      warm persistent pool is reused, never respawned.
    """
    shutdown_pools()  # isolate the telemetry deltas from earlier benches
    config = ControllerConfig(
        alpha=2, beta=1, shard_by_pods=True, intrapod_paths=True, jobs=jobs
    )
    controller = Controller(topology, config)
    controller.run_incremental_cycle()  # bootstrap full rebuild (spawns the pool)
    controller.run_incremental_cycle()  # seed warm buckets
    warm_pool = pool_telemetry()
    warm_shm = shm_telemetry()

    controller.run_incremental_cycle()  # steady state: no churn at all
    steady_pool = pool_telemetry()
    steady_payload = (
        steady_pool["dispatch_payload_bytes"] - warm_pool["dispatch_payload_bytes"]
    )
    steady_spawns = steady_pool["pool_spawns"] - warm_pool["pool_spawns"]

    pods = link_pod_map(topology)
    bad = next(l.link_id for l in topology.switch_links if pods[l.link_id] == 0)
    controller.watchdog.report_failed_link(bad)
    controller.run_incremental_cycle()
    churn_pool = pool_telemetry()
    churn_payload = (
        churn_pool["dispatch_payload_bytes"] - steady_pool["dispatch_payload_bytes"]
    )
    churn_spawns = churn_pool["pool_spawns"] - steady_pool["pool_spawns"]

    matrix_bytes = len(
        pickle.dumps(
            controller._full_routing_matrix(), protocol=pickle.HIGHEST_PROTOCOL
        )
    )
    controller.close()

    if steady_payload != 0:
        raise SystemExit(
            f"{name}: zero-churn cycle shipped {steady_payload} payload bytes"
        )
    if steady_spawns != 0 or churn_spawns != 0:
        raise SystemExit(
            f"{name}: warm cycles spawned pools (steady={steady_spawns}, "
            f"churn={churn_spawns}); the persistent pool was not reused"
        )
    if churn_payload >= matrix_bytes:
        raise SystemExit(
            f"{name}: churn payload {churn_payload} B is not below one pickled "
            f"routing matrix ({matrix_bytes} B); dispatch is O(topology) again"
        )

    return {
        "topology": name,
        "jobs": jobs,
        "warmup_pool_spawns": warm_pool["pool_spawns"],
        "steady_cycle_payload_bytes": steady_payload,
        "steady_cycle_pool_spawns": steady_spawns,
        "churn_cycle_payload_bytes": churn_payload,
        "churn_cycle_pool_spawns": churn_spawns,
        "routing_matrix_pickle_bytes": matrix_bytes,
        "dispatch_context_bytes": warm_pool["dispatch_context_bytes"],
        "shm_bytes_exported": warm_shm["shm_bytes_exported"],
        "shm_segments_created": warm_shm["shm_segments_created"],
        "payload_scales_with_churn": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small instances only")
    parser.add_argument("--jobs", type=int, default=4, help="parallel worker count to gate")
    parser.add_argument("--out", default="BENCH_podshard.json")
    args = parser.parse_args()

    if args.quick:
        fattree = ("fattree8", build_fattree(8))
        instances = [
            ("fattree8", build_fattree(8), dict(include_intrapod_agg=True)),
            ("vl2_442", build_vl2(4, 4, 2), {}),
            ("bcube41", build_bcube(4, 1), {}),
        ]
    else:
        fattree = ("fattree16", build_fattree(16))
        instances = [
            ("fattree16", build_fattree(16), dict(include_intrapod_agg=True)),
            ("vl2_884", build_vl2(8, 8, 4), {}),
            ("bcube42", build_bcube(4, 2), {}),
        ]

    rows = []
    for name, topology, kwargs in instances:
        paths = enumerate_candidate_paths(topology, ordered=False, **kwargs)
        rows.append(bench_jobs_invariance(name, topology, paths, args.jobs))

    report = write_bench_report(
        args.out,
        "podshard_control_plane",
        config={"alpha": 2, "beta": 1, "jobs_gated": args.jobs},
        rows=rows,
        churn_isolation=bench_churn_isolation(*fattree),
        dispatch_plane=bench_dispatch_plane(*fattree, jobs=args.jobs),
    )
    for row in rows:
        print(
            f"{row['topology']:>10}: {len(row['shards'])} shards, "
            f"sel={row['selected_paths']} identical@jobs={row['jobs']} "
            f"serial={row['serial_wall_seconds']:.3f}s "
            f"parallel={row['parallel_wall_seconds']:.3f}s"
        )
    isolation = report["churn_isolation"]
    print(
        f"{isolation['topology']:>10}: churn touched {isolation['touched_shards']} "
        f"of {isolation['num_shards']} shards "
        f"({isolation['replayed_shards']} replayed)"
    )
    plane = report["dispatch_plane"]
    print(
        f"{plane['topology']:>10}: dispatch steady={plane['steady_cycle_payload_bytes']} B "
        f"churn={plane['churn_cycle_payload_bytes']} B "
        f"(matrix pickle={plane['routing_matrix_pickle_bytes']} B), "
        f"{plane['steady_cycle_pool_spawns'] + plane['churn_cycle_pool_spawns']} "
        f"pool spawns after warmup"
    )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
