"""Incremental-cycle wall-clock benchmark: writes ``BENCH_incremental.json``.

Drives two controllers over the *same* churn schedule (small link deltas, the
paper's "handful of devices per 10-minute cycle" regime):

* the **full-rebuild** controller runs ``Controller.run_cycle`` every cycle
  (the paper's behaviour: re-filter candidates, rebuild the routing matrix,
  re-run PMC, regenerate pinglists), and
* the **incremental** controller runs ``Controller.run_incremental_cycle``
  (delta -> incidence link masks -> warm-started PMC over surviving rows).

Every cycle the two probe matrices are asserted byte-identical, so the
benchmark doubles as an end-to-end differential check.  Used by the CI
benchmark-smoke job in quick mode; run the full configuration locally with::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--quick] [--out BENCH_incremental.json]
"""

from __future__ import annotations

import argparse
import statistics
import time

import numpy as np

from repro.contracts import informational_wall
from repro.monitor import Controller, ControllerConfig, Watchdog
from repro.obs import counters_block, write_bench_report
from repro.simulation import ChurnSchedule
from repro.topology import build_bcube, build_fattree


@informational_wall("Benchmark wall timings are informational by definition")
def bench(name: str, topology, cycles: int, seed: int = 2017) -> dict:
    config = ControllerConfig(alpha=2, beta=1, churn_rebuild_threshold=8)

    full_watchdog = Watchdog(topology)
    incr_watchdog = Watchdog(topology)
    full_ctrl = Controller(topology, config, watchdog=full_watchdog)
    incr_ctrl = Controller(topology, config, watchdog=incr_watchdog)

    # Steady-state link churn: <= 3 concurrently failed links, no switch or
    # server events, so every delta stays well under the rebuild threshold.
    schedule = ChurnSchedule.generate(
        topology,
        np.random.default_rng(seed),
        num_cycles=cycles,
        mean_events_per_cycle=1.5,
        switch_probability=0.0,
        server_probability=0.0,
        max_failed_links=3,
    )

    # Cold bootstrap cycle (pays candidate enumeration + index construction).
    t0 = time.perf_counter()
    full_ctrl.run_cycle()
    cold_seconds = time.perf_counter() - t0
    incr_ctrl.run_incremental_cycle()  # bootstrap (full) + cache warm-up
    incr_ctrl.run_incremental_cycle()  # seeds the CELF warm cache

    full_times, incr_times, reused = [], [], 0
    subproblems = 0
    incr_cycle = None
    for delta in schedule:
        full_watchdog.apply_delta(delta)
        incr_watchdog.apply_delta(delta)

        t0 = time.perf_counter()
        full_cycle = full_ctrl.run_cycle()
        full_times.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        incr_cycle = incr_ctrl.run_incremental_cycle()
        incr_times.append(time.perf_counter() - t0)

        if full_cycle.probe_matrix.to_json() != incr_cycle.probe_matrix.to_json():
            raise SystemExit(f"incremental result diverged from full rebuild on {name}")
        stats = incr_cycle.pmc_result.stats
        reused += stats.reused_subproblems
        subproblems += stats.subproblems

    full_mean = statistics.fmean(full_times)
    incr_mean = statistics.fmean(incr_times)
    row = {
        "topology": name,
        "cycles": cycles,
        "total_churn": schedule.total_churn,
        "max_delta_churn": schedule.max_churn,
        "candidate_paths": len(full_ctrl.candidate_paths()),
        "selected_paths": incr_cycle.probe_matrix.num_paths,
        "cold_bootstrap_seconds": round(cold_seconds, 4),
        "full_rebuild_mean_seconds": round(full_mean, 4),
        "full_rebuild_median_seconds": round(statistics.median(full_times), 4),
        "incremental_mean_seconds": round(incr_mean, 4),
        "incremental_median_seconds": round(statistics.median(incr_times), 4),
        "speedup_full_over_incremental": round(full_mean / max(incr_mean, 1e-9), 2),
        "warm_cache_reuse_fraction": round(reused / max(subproblems, 1), 3),
        "results_identical": True,
        # Deterministic control-plane work counters of the final incremental
        # cycle (candidates scored, lazy re-evaluations, reuse events).
        **counters_block(incr_cycle.pmc_result.stats.cost_counters()),
    }
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small instances only")
    parser.add_argument("--cycles", type=int, default=None, help="churn cycles per topology")
    parser.add_argument("--out", default="BENCH_incremental.json")
    args = parser.parse_args()

    # Warm up lazy imports so the first timed cycle is not charged for them.
    import scipy.sparse.csgraph  # noqa: F401

    if args.quick:
        instances = [
            ("fattree8", build_fattree(8)),
            ("bcube41", build_bcube(4, 1)),
        ]
        cycles = args.cycles or 4
    else:
        instances = [
            ("fattree16", build_fattree(16)),
            ("bcube42", build_bcube(4, 2)),
        ]
        cycles = args.cycles or 6

    report = write_bench_report(
        args.out,
        "incremental_cycle_latency",
        config={
            "alpha": 2,
            "beta": 1,
            "churn": "mean 1.5 link events/cycle, <= 3 concurrent failures",
        },
        rows=[bench(name, topology, cycles) for name, topology in instances],
    )
    for row in report["rows"]:
        print(
            f"{row['topology']:>10}: full={row['full_rebuild_mean_seconds']:.3f}s "
            f"incremental={row['incremental_mean_seconds']:.3f}s "
            f"(x{row['speedup_full_over_incremental']}) "
            f"reuse={row['warm_cache_reuse_fraction']:.0%} sel={row['selected_paths']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
