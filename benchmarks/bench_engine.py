"""Telemetry-engine throughput benchmark: writes ``BENCH_engine.json``.

Drives the discrete-event engine over a flapping-link scenario and measures

* **probe events/sec** -- probes simulated per *streaming-plane* wall-clock
  second (total wall minus the controller cycles' wall) while the full
  monitoring loop (coalesced probe streams, fault dynamics, sharded
  sliding-window aggregation, per-window PLL diagnosis) is running, and
* **steady-state cycle latency** -- wall seconds per controller-cycle event
  (churn replay + incremental re-plan + scheduler/aggregator re-arm),
  reported separately so a slow re-plan cannot mask probe-path speed.

The default configuration runs Fattree(16), the fabric of Table 5's scale
discussion; the acceptance bar there is >= 2M probe events/sec with batched
(coalesced) scheduling -- enforced in CI via ``--min-rate 2000000``, which
exits non-zero below the floor.  The CI benchmark-smoke job runs quick mode
(Fattree(8)); run the full gated configuration locally with::

    PYTHONPATH=src python benchmarks/bench_engine.py --min-rate 2000000 [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.contracts import informational_wall
from repro.engine import DynamicFaultModel, EngineConfig, FlappingLink, TelemetryEngine
from repro.monitor import ControllerConfig, DetectorSystem
from repro.obs import Observability, counters_block, write_bench_report, write_snapshot
from repro.simulation import ChurnSchedule, SeededStreams
from repro.topology import build_fattree


@informational_wall("Benchmark wall timings are informational by definition")
def bench(
    name: str, topology, duration: float, seed: int = 2017, batched: bool = True,
    shards: int = 16, obs: Observability | None = None,
) -> dict:
    streams = SeededStreams(seed)
    system = DetectorSystem(
        topology, streams.generator("probing"), ControllerConfig(alpha=2, beta=1)
    )

    # Cold bootstrap (candidate enumeration + PMC) happens outside the timed
    # region: the engine measures steady-state monitoring, not planning.
    t0 = time.perf_counter()
    system.run_controller_cycle()
    bootstrap_seconds = time.perf_counter() - t0

    # Flap three links; replay light known churn at every controller cycle so
    # cycle events exercise the incremental path under realistic deltas.
    links = [link.link_id for link in topology.switch_links]
    picker = streams.generator("fault-placement")
    flapped = [int(links[i]) for i in picker.choice(len(links), size=3, replace=False)]
    config = EngineConfig(
        window_seconds=30.0,
        cycle_seconds=60.0,
        probes_per_second=100.0,  # stress rate: 10x the paper's 10 pps
        probe_batch_seconds=1.0,
        batched_scheduling=batched,
        aggregator_shards=shards,
    )
    schedule = ChurnSchedule.generate(
        topology,
        streams.generator("churn"),
        num_cycles=int(duration // config.cycle_seconds) + 1,
        mean_events_per_cycle=1.5,
        switch_probability=0.0,
        server_probability=0.0,
        max_failed_links=3,
    )
    model = DynamicFaultModel(
        topology,
        episodes=[
            FlappingLink(link_id=link, start_time=30.0, half_life_up_seconds=60.0,
                         half_life_down_seconds=30.0)
            for link in flapped
        ],
        rng=streams.generator("fault-dynamics"),
        churn_schedule=schedule,
    )
    engine = TelemetryEngine(
        system, model, config, rng=streams.generator("probe-jitter"), obs=obs
    )
    result = engine.run(duration)

    cycle_walls = [c.wall_seconds for c in result.cycles]
    summary = result.summary()
    return {
        "topology": name,
        "sim_seconds": duration,
        "probe_rate_per_pinger": config.probes_per_second,
        "pinger_streams": engine._scheduler.num_streams,
        "selected_paths": system.probe_matrix.num_paths,
        "batched_scheduling": batched,
        "aggregator_shards": shards,
        "bootstrap_seconds": round(bootstrap_seconds, 4),
        "wall_seconds": summary["wall_seconds"],
        "probe_wall_seconds": summary["probe_wall_seconds"],
        "probes_sent": result.probes_sent,
        "loop_events": result.events_processed,
        "probe_events_per_second": summary["probe_events_per_second"],
        "coalesced_drains": engine._scheduler.drains,
        "coalesced_rows_max": engine._scheduler.drain_rows_max,
        "windows": len(result.windows),
        "cycles": len(result.cycles),
        "cycle_modes": [c.mode for c in result.cycles],
        "steady_state_cycle_latency_seconds": (
            round(statistics.fmean(cycle_walls), 4) if cycle_walls else None
        ),
        "faults_localized": summary["faults_localized"],
        "mean_localization_latency_seconds": summary["mean_localization_latency"],
        # Deterministic work counters (aggregation folds, window closes,
        # probe batches): reproducible for a fixed seed on any machine,
        # unlike the wall-clock fields above.
        **counters_block(result.counters),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small instance only")
    parser.add_argument("--duration", type=float, default=None, help="simulated seconds")
    parser.add_argument(
        "--min-rate", type=float, default=None, metavar="EVENTS_PER_SECOND",
        help="hard gate: exit non-zero unless every instance reaches this "
        "streaming-plane probe throughput",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="per-event scheduling baseline (no coalescing)",
    )
    parser.add_argument("--shards", type=int, default=16, help="aggregator shards")
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="run the benchmark with sim-time tracing enabled and write the "
        "span tree as JSONL (the --min-rate gate then measures traced speed)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final metrics-registry snapshot as JSON",
    )
    args = parser.parse_args()

    import scipy.sparse.csgraph  # noqa: F401  (warm up lazy imports)

    if args.quick:
        instances = [("fattree8", build_fattree(8))]
        duration = args.duration or 120.0
    else:
        instances = [("fattree16", build_fattree(16))]
        duration = args.duration or 180.0

    obs = Observability.create(tracing=True if args.trace else None)
    report = write_bench_report(
        args.out,
        "telemetry_engine_throughput",
        config={
            "alpha": 2,
            "beta": 1,
            "scenario": "3 flapping links + mean 1.5 known-churn events/cycle",
            "window_seconds": 30.0,
            "cycle_seconds": 60.0,
            "probes_per_second": 100.0,
            "batched_scheduling": not args.no_batch,
            "aggregator_shards": args.shards,
            "min_rate_gate": args.min_rate,
            "tracing": obs.tracer is not None,
        },
        rows=[
            bench(name, topology, duration, batched=not args.no_batch,
                  shards=args.shards, obs=obs)
            for name, topology in instances
        ],
    )
    if args.trace and obs.tracer is not None:
        with open(args.trace, "w") as handle:
            handle.write(obs.tracer.export_jsonl())
        print(f"wrote {args.trace}")
    if args.metrics_out:
        write_snapshot(args.metrics_out, obs.registry)
        print(f"wrote {args.metrics_out}")
    failed = []
    for row in report["rows"]:
        print(
            f"{row['topology']:>10}: {row['probe_events_per_second']:>12,.0f} probe events/s "
            f"({row['probes_sent']:,} probes / {row['probe_wall_seconds']:.2f}s streaming wall "
            f"of {row['wall_seconds']:.2f}s total), "
            f"cycle latency {row['steady_state_cycle_latency_seconds']}s "
            f"over {row['cycles']} cycles {row['cycle_modes']}"
        )
        if args.min_rate is not None and row["probe_events_per_second"] < args.min_rate:
            failed.append(row["topology"])
    print(f"wrote {args.out}")
    if failed:
        print(
            f"FAIL: {', '.join(failed)} below the --min-rate gate of "
            f"{args.min_rate:,.0f} probe events/s"
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
