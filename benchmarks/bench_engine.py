"""Telemetry-engine throughput benchmark: writes ``BENCH_engine.json``.

Drives the discrete-event engine over a flapping-link scenario and measures

* **probe events/sec** -- probes simulated per wall-clock second while the
  full monitoring loop (probe streams, fault dynamics, sliding-window
  aggregation, per-window PLL diagnosis) is running, and
* **steady-state cycle latency** -- wall seconds per controller-cycle event
  (churn replay + incremental re-plan + scheduler/aggregator re-arm).

The default configuration runs Fattree(16), the fabric of Table 5's scale
discussion; the acceptance bar is >= 100k probe events/sec there.  Used by
the CI benchmark-smoke job in quick mode (Fattree(8)); run the full
configuration locally with::

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick] [--out BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time

from repro.engine import DynamicFaultModel, EngineConfig, FlappingLink, TelemetryEngine
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import ChurnSchedule, SeededStreams
from repro.topology import build_fattree


def bench(name: str, topology, duration: float, seed: int = 2017) -> dict:
    streams = SeededStreams(seed)
    system = DetectorSystem(
        topology, streams.generator("probing"), ControllerConfig(alpha=2, beta=1)
    )

    # Cold bootstrap (candidate enumeration + PMC) happens outside the timed
    # region: the engine measures steady-state monitoring, not planning.
    t0 = time.perf_counter()
    system.run_controller_cycle()
    bootstrap_seconds = time.perf_counter() - t0

    # Flap three links; replay light known churn at every controller cycle so
    # cycle events exercise the incremental path under realistic deltas.
    links = [link.link_id for link in topology.switch_links]
    picker = streams.generator("fault-placement")
    flapped = [int(links[i]) for i in picker.choice(len(links), size=3, replace=False)]
    config = EngineConfig(
        window_seconds=30.0,
        cycle_seconds=60.0,
        probes_per_second=100.0,  # stress rate: 10x the paper's 10 pps
        probe_batch_seconds=1.0,
    )
    schedule = ChurnSchedule.generate(
        topology,
        streams.generator("churn"),
        num_cycles=int(duration // config.cycle_seconds) + 1,
        mean_events_per_cycle=1.5,
        switch_probability=0.0,
        server_probability=0.0,
        max_failed_links=3,
    )
    model = DynamicFaultModel(
        topology,
        episodes=[
            FlappingLink(link_id=link, start_time=30.0, half_life_up_seconds=60.0,
                         half_life_down_seconds=30.0)
            for link in flapped
        ],
        rng=streams.generator("fault-dynamics"),
        churn_schedule=schedule,
    )
    engine = TelemetryEngine(system, model, config, rng=streams.generator("probe-jitter"))
    result = engine.run(duration)

    cycle_walls = [c.wall_seconds for c in result.cycles]
    summary = result.summary()
    return {
        "topology": name,
        "sim_seconds": duration,
        "probe_rate_per_pinger": config.probes_per_second,
        "pinger_streams": engine._scheduler.num_streams,
        "selected_paths": system.probe_matrix.num_paths,
        "bootstrap_seconds": round(bootstrap_seconds, 4),
        "wall_seconds": summary["wall_seconds"],
        "probes_sent": result.probes_sent,
        "loop_events": result.events_processed,
        "probe_events_per_second": summary["probe_events_per_second"],
        "windows": len(result.windows),
        "cycles": len(result.cycles),
        "cycle_modes": [c.mode for c in result.cycles],
        "steady_state_cycle_latency_seconds": (
            round(statistics.fmean(cycle_walls), 4) if cycle_walls else None
        ),
        "faults_localized": summary["faults_localized"],
        "mean_localization_latency_seconds": summary["mean_localization_latency"],
        # Deterministic work counters (aggregation folds, window closes,
        # probe batches): reproducible for a fixed seed on any machine,
        # unlike the wall-clock fields above.
        "cost_counters": result.counters,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small instance only")
    parser.add_argument("--duration", type=float, default=None, help="simulated seconds")
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args()

    import scipy.sparse.csgraph  # noqa: F401  (warm up lazy imports)

    if args.quick:
        instances = [("fattree8", build_fattree(8))]
        duration = args.duration or 120.0
    else:
        instances = [("fattree16", build_fattree(16))]
        duration = args.duration or 180.0

    report = {
        "benchmark": "telemetry_engine_throughput",
        "config": {
            "alpha": 2,
            "beta": 1,
            "scenario": "3 flapping links + mean 1.5 known-churn events/cycle",
            "window_seconds": 30.0,
            "cycle_seconds": 60.0,
            "probes_per_second": 100.0,
        },
        "python_version": platform.python_version(),
        "rows": [bench(name, topology, duration) for name, topology in instances],
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["rows"]:
        print(
            f"{row['topology']:>10}: {row['probe_events_per_second']:>12,.0f} probe events/s "
            f"({row['probes_sent']:,} probes / {row['wall_seconds']:.2f}s wall), "
            f"cycle latency {row['steady_state_cycle_latency_seconds']}s "
            f"over {row['cycles']} cycles {row['cycle_modes']}"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
