"""Netbouncer: the post-alarm localization tool used with Pingmesh (§6.2).

When Pingmesh reports a suspected server pair, Netbouncer replays the problem
by probing *every* parallel path between the pair with explicit path control,
then infers which links are faulty from the per-path loss pattern.  The
inference here follows the published idea (solve for per-link health from
path-pinned measurements) with the same greedy machinery as Tomo: links whose
pinned paths are all healthy are exonerated, remaining lossy paths are
explained by the fewest links possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..routing import Path
from ..simulation import ProbeConfig, ProbeSimulator

__all__ = ["NetbouncerResult", "Netbouncer"]


@dataclass
class NetbouncerResult:
    """Links blamed by Netbouncer plus the probing cost of the extra round."""

    suspected_links: List[int]
    probes_sent: int
    probed_paths: int


class Netbouncer:
    """Path-pinned replay localization for suspected pairs."""

    def __init__(
        self,
        simulator: ProbeSimulator,
        probes_per_path: int = 20,
        hit_ratio_threshold: float = 0.99,
        max_probes: Optional[int] = None,
    ):
        self._simulator = simulator
        self._probes_per_path = probes_per_path
        self._hit_ratio_threshold = hit_ratio_threshold
        self._max_probes = max_probes

    def localize(
        self, candidate_paths_by_pair: Dict[Tuple[str, str], Sequence[Path]]
    ) -> NetbouncerResult:
        """Probe all candidate paths of every suspected pair and blame links.

        Parameters
        ----------
        candidate_paths_by_pair:
            For every suspected (src, dst) pair, the parallel paths between
            them (the paths Pingmesh's probes may have taken).  When a probe
            budget was configured, probing stops as soon as it is exhausted --
            remaining paths simply go untested.
        """
        probes_sent = 0
        probed_paths = 0
        lossy_paths: List[Path] = []
        loss_count: Dict[int, int] = {}
        healthy_links: Set[int] = set()
        config = ProbeConfig(probes_per_path=self._probes_per_path)

        for paths in candidate_paths_by_pair.values():
            for path in paths:
                if self._max_probes is not None and probes_sent >= self._max_probes:
                    break
                probed_paths += 1
                lost = 0
                for sequence in range(self._probes_per_path):
                    packet = config.packet_for(path, sequence)
                    if not self._simulator.round_trip(path, packet):
                        lost += 1
                probes_sent += self._probes_per_path
                if lost:
                    lossy_paths.append(path)
                    loss_count[id(path)] = lost
                else:
                    healthy_links.update(path.link_ids)

        # Greedy explanation of the lossy paths, ignoring links that carried a
        # completely clean pinned path (full-loss reasoning, as Netbouncer's
        # link-health solving would conclude for them).
        suspected: List[int] = []
        unexplained = list(lossy_paths)
        while unexplained:
            coverage: Dict[int, int] = {}
            for path in unexplained:
                for link in path.link_ids:
                    if link in healthy_links:
                        continue
                    coverage[link] = coverage.get(link, 0) + 1
            if not coverage:
                break
            best_link = max(sorted(coverage), key=lambda l: coverage[l])
            suspected.append(best_link)
            unexplained = [p for p in unexplained if best_link not in p.link_ids]

        return NetbouncerResult(
            suspected_links=suspected,
            probes_sent=probes_sent,
            probed_paths=probed_paths,
        )
