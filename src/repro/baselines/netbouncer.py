"""Netbouncer: the post-alarm localization tool used with Pingmesh (§6.2).

When Pingmesh reports a suspected server pair, Netbouncer replays the problem
by probing *every* parallel path between the pair with explicit path control,
then infers which links are faulty from the per-path loss pattern.  The
inference here follows the published idea (solve for per-link health from
path-pinned measurements) with the same greedy machinery as Tomo: links whose
pinned paths are all healthy are exonerated, remaining lossy paths are
explained by the fewest links possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.incidence import IncidenceIndex
from ..routing import Path
from ..simulation import ProbeConfig, ProbeSimulator

__all__ = ["NetbouncerResult", "Netbouncer"]


@dataclass
class NetbouncerResult:
    """Links blamed by Netbouncer plus the probing cost of the extra round."""

    suspected_links: List[int]
    probes_sent: int
    probed_paths: int


class Netbouncer:
    """Path-pinned replay localization for suspected pairs."""

    def __init__(
        self,
        simulator: ProbeSimulator,
        probes_per_path: int = 20,
        hit_ratio_threshold: float = 0.99,
        max_probes: Optional[int] = None,
    ):
        self._simulator = simulator
        self._probes_per_path = probes_per_path
        self._hit_ratio_threshold = hit_ratio_threshold
        self._max_probes = max_probes

    def localize(
        self, candidate_paths_by_pair: Dict[Tuple[str, str], Sequence[Path]]
    ) -> NetbouncerResult:
        """Probe all candidate paths of every suspected pair and blame links.

        Parameters
        ----------
        candidate_paths_by_pair:
            For every suspected (src, dst) pair, the parallel paths between
            them (the paths Pingmesh's probes may have taken).  When a probe
            budget was configured, probing stops as soon as it is exhausted --
            remaining paths simply go untested.
        """
        probes_sent = 0
        probed_paths = 0
        lossy_paths: List[Path] = []
        healthy_links: Set[int] = set()
        config = ProbeConfig(probes_per_path=self._probes_per_path)

        for paths in candidate_paths_by_pair.values():
            for path in paths:
                if self._max_probes is not None and probes_sent >= self._max_probes:
                    break
                probed_paths += 1
                lost = 0
                for sequence in range(self._probes_per_path):
                    packet = config.packet_for(path, sequence)
                    if not self._simulator.round_trip(path, packet):
                        lost += 1
                probes_sent += self._probes_per_path
                if lost:
                    lossy_paths.append(path)
                else:
                    healthy_links.update(path.link_ids)

        return NetbouncerResult(
            suspected_links=self._explain(lossy_paths, healthy_links),
            probes_sent=probes_sent,
            probed_paths=probed_paths,
        )

    @staticmethod
    def _explain(lossy_paths: Sequence[Path], healthy_links: Set[int]) -> List[int]:
        """Greedy explanation of the lossy paths over a CSR incidence index.

        Links that carried a completely clean pinned path are excluded from
        the universe (full-loss reasoning, as Netbouncer's link-health solving
        would conclude for them); the remaining lossy-path x link incidence is
        the same set-cover structure PMC and PLL run on, so the per-link
        coverage counters come from the shared vectorized kernel.
        """
        if not lossy_paths:
            return []
        universe = sorted(
            {link for path in lossy_paths for link in path.link_ids} - healthy_links
        )
        index = IncidenceIndex([path.link_ids for path in lossy_paths], universe)
        kernels = index.kernels
        unexplained = kernels.bool_zeros(index.num_paths)
        kernels.set_true(unexplained, kernels.int_array(range(index.num_paths)))
        remaining = index.num_paths

        suspected: List[int] = []
        while remaining:
            counts = index.masked_col_counts(unexplained)
            # First-maximum over the ascending universe keeps the seed
            # tie-break: the smallest link id among maximal coverers wins.
            best_col, best_count = kernels.first_max(counts)
            if best_count <= 0:
                break
            suspected.append(index.link_ids[best_col])
            covered = kernels.take_true(index.col_rows(best_col), unexplained)
            kernels.set_false(unexplained, covered)
            remaining -= len(covered)
        return suspected
