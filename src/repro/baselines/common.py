"""Shared pieces of the baseline monitoring systems (Pingmesh, NetNORAD).

Both competitors follow the same two-phase workflow deTector's motivation
section criticises (§2):

1. **Detection** -- end-to-end probes between server pairs with no path
   pinning (ECMP decides the route), flagging pairs whose loss rate exceeds a
   threshold;
2. **Localization** -- a *post-alarm* tool (Netbouncer for Pingmesh, fbtracert
   for NetNORAD) sends an additional round of probes between the suspected
   pairs to find the faulty links.

This module holds the data structures and the probe accounting shared by the
two systems so the comparison experiments (Figs. 5-6) can treat all three
monitoring systems uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SuspectedPair", "MonitoringOutcome", "BaselineConfig"]


@dataclass(frozen=True)
class SuspectedPair:
    """A source/destination pair whose end-to-end loss rate tripped the detector."""

    src: str
    dst: str
    sent: int
    lost: int

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0


@dataclass
class MonitoringOutcome:
    """What a monitoring system produced during one evaluation window."""

    system: str
    suspected_links: List[int]
    suspected_pairs: List[SuspectedPair]
    detection_probes: int
    localization_probes: int
    detection_seconds: float
    localization_seconds: float

    @property
    def total_probes(self) -> int:
        return self.detection_probes + self.localization_probes

    @property
    def time_to_localization_seconds(self) -> float:
        """End-to-end latency from failure onset to localized links.

        deTector localizes from the detection data itself; the baselines pay
        for an extra localization round, which is the "30 seconds in advance"
        advantage quoted in §6.3.
        """
        return self.detection_seconds + self.localization_seconds


@dataclass(frozen=True)
class BaselineConfig:
    """Probing budget and thresholds shared by the baseline systems.

    Attributes
    ----------
    probes_per_pair:
        Detection probes sent between each monitored pair per window.
    detection_loss_threshold:
        Minimum per-pair loss ratio for the pair to be reported (1e-3 as in
        Pingmesh's data pre-processing, which the paper reuses for all three
        systems to keep the comparison fair, §6.2).
    detection_min_losses:
        Alternative absolute trigger for short windows.
    localization_probes_per_path:
        Probes the post-alarm tool sends on every candidate path between a
        suspected pair.
    probe_budget_per_window:
        Optional hard cap on the *total* probes (detection plus localization)
        the system may send in one window.  Used by the fixed-budget
        comparison (Fig. 6): once the cap is reached the post-alarm tool stops
        probing further paths, which is the price of separating detection
        from localization.
    window_seconds:
        Length of the detection window (30 s, the same aggregation interval
        as deTector).
    localization_round_seconds:
        Extra time the post-alarm tool needs for its own probing round.
    """

    probes_per_pair: int = 20
    detection_loss_threshold: float = 1e-3
    detection_min_losses: int = 1
    localization_probes_per_path: int = 20
    probe_budget_per_window: Optional[int] = None
    window_seconds: float = 30.0
    localization_round_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.probes_per_pair < 1:
            raise ValueError("probes_per_pair must be >= 1")
        if self.localization_probes_per_path < 1:
            raise ValueError("localization_probes_per_path must be >= 1")
        if not 0.0 <= self.detection_loss_threshold <= 1.0:
            raise ValueError("detection_loss_threshold must lie in [0, 1]")
        if self.probe_budget_per_window is not None and self.probe_budget_per_window < 1:
            raise ValueError("probe_budget_per_window must be >= 1 when given")

    def localization_budget(self, detection_probes: int) -> Optional[int]:
        """Probes the post-alarm tool may still send, or ``None`` when unlimited."""
        if self.probe_budget_per_window is None:
            return None
        return max(0, self.probe_budget_per_window - detection_probes)

    def pair_is_suspect(self, sent: int, lost: int) -> bool:
        if lost == 0:
            return False
        if lost >= self.detection_min_losses and sent and lost / sent >= self.detection_loss_threshold:
            return True
        return False
