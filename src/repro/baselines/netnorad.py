"""NetNORAD: Facebook's UDP probing system (§2).

NetNORAD differs from Pingmesh in pinger placement: instead of every server,
pingers live in a few pods and target responders everywhere.  Detection is
still end-to-end with ECMP choosing the path, and localization is delegated to
fbtracert, which traces the suspected pairs hop by hop with an extra round of
probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..routing import ECMPRouter, Path, enumerate_candidate_paths
from ..simulation import FailureScenario, ProbeSimulator
from ..topology import Topology
from .common import BaselineConfig, MonitoringOutcome, SuspectedPair
from .fbtracert import Fbtracert

__all__ = ["NetNORADSystem"]


class NetNORADSystem:
    """NetNORAD detection plus fbtracert localization over the simulator."""

    name = "NetNORAD"

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        config: Optional[BaselineConfig] = None,
        num_pinger_pods: int = 2,
        candidate_paths: Optional[Sequence[Path]] = None,
    ):
        if num_pinger_pods < 1:
            raise ValueError("num_pinger_pods must be >= 1")
        self.topology = topology
        self.config = config or BaselineConfig()
        self._rng = rng
        if candidate_paths is None:
            candidate_paths = enumerate_candidate_paths(topology, ordered=True)
        self._paths = list(candidate_paths)
        self._router = ECMPRouter(self._paths, seed=int(rng.integers(0, 2**31 - 1)))
        self._paths_by_pair: Dict[Tuple[str, str], List[Path]] = {}
        for path in self._paths:
            self._paths_by_pair.setdefault((path.src, path.dst), []).append(path)

        tors = topology.tor_switches
        pods = sorted({n.pod for n in tors if n.pod is not None})
        if pods:
            pinger_pods = set(pods[:num_pinger_pods])
            self._pinger_tors = [n.name for n in tors if n.pod in pinger_pods]
        else:
            self._pinger_tors = [n.name for n in tors[: max(1, len(tors) // 2)]]
        self._target_tors = [n.name for n in tors]

    # ------------------------------------------------------------------ pairs
    def monitored_pairs(self) -> List[Tuple[str, str]]:
        """Pinger ToRs probe every other ToR in the fabric."""
        pairs = []
        for src in self._pinger_tors:
            for dst in self._target_tors:
                if src != dst and (src, dst) in self._paths_by_pair:
                    pairs.append((src, dst))
        return pairs

    # ----------------------------------------------------------------- window
    def run_window(
        self,
        scenario: FailureScenario,
        probes_per_pair: Optional[int] = None,
    ) -> MonitoringOutcome:
        """Run detection and (if anything trips) fbtracert localization."""
        config = self.config
        probes_per_pair = probes_per_pair or config.probes_per_pair
        simulator = ProbeSimulator(self.topology, scenario, self._rng)

        detection_probes = 0
        suspects: List[SuspectedPair] = []
        for src, dst in self.monitored_pairs():
            outcome = simulator.probe_pair_ecmp(self._router, src, dst, probes_per_pair)
            detection_probes += outcome.sent
            if config.pair_is_suspect(outcome.sent, outcome.lost):
                suspects.append(
                    SuspectedPair(src=src, dst=dst, sent=outcome.sent, lost=outcome.lost)
                )

        suspected_links: List[int] = []
        localization_probes = 0
        localization_seconds = 0.0
        if suspects:
            pairs_to_trace: Dict[Tuple[str, str], Sequence[Path]] = {}
            for suspect in suspects:
                key = (suspect.src, suspect.dst)
                pairs_to_trace[key] = self._paths_by_pair.get(key, [])
            tracer = Fbtracert(
                self.topology,
                simulator,
                probes_per_hop=max(1, config.localization_probes_per_path // 2),
                max_probes=config.localization_budget(detection_probes),
            )
            result = tracer.localize(pairs_to_trace)
            suspected_links = result.suspected_links
            localization_probes = result.probes_sent
            localization_seconds = config.localization_round_seconds

        return MonitoringOutcome(
            system=self.name,
            suspected_links=suspected_links,
            suspected_pairs=suspects,
            detection_probes=detection_probes,
            localization_probes=localization_probes,
            detection_seconds=config.window_seconds,
            localization_seconds=localization_seconds,
        )
