"""Competitor monitoring systems: Pingmesh (+Netbouncer) and NetNORAD (+fbtracert)."""

from .common import BaselineConfig, MonitoringOutcome, SuspectedPair
from .fbtracert import Fbtracert, FbtracertResult
from .netbouncer import Netbouncer, NetbouncerResult
from .netnorad import NetNORADSystem
from .pingmesh import PingmeshSystem

__all__ = [
    "BaselineConfig",
    "MonitoringOutcome",
    "SuspectedPair",
    "PingmeshSystem",
    "NetNORADSystem",
    "Netbouncer",
    "NetbouncerResult",
    "Fbtracert",
    "FbtracertResult",
]
