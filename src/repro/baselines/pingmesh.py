"""Pingmesh: the all-pairs probing baseline (Guo et al., SIGCOMM 2015).

Pingmesh builds two complete probing graphs: one among the servers under each
ToR and one spanning all ToR switches (§2).  Probes are ordinary flows, so
ECMP -- not the monitoring system -- decides which of the parallel paths each
probe takes; only the per-pair loss rate is observable.  Localization is
delegated to Netbouncer, which needs an extra round of path-pinned probes
between the suspected pairs.

The reproduction models the inter-ToR complete graph (the intra-rack graph
only exercises server uplinks, which are outside the probe-matrix link
universe the comparison is evaluated on) and accounts separately for
detection and localization probes so Figs. 5-6 can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..routing import ECMPRouter, Path, enumerate_candidate_paths
from ..simulation import FailureScenario, ProbeSimulator
from ..topology import Topology
from .common import BaselineConfig, MonitoringOutcome, SuspectedPair
from .netbouncer import Netbouncer

__all__ = ["PingmeshSystem"]


class PingmeshSystem:
    """Pingmesh detection plus Netbouncer localization over the simulator."""

    name = "Pingmesh"

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        config: Optional[BaselineConfig] = None,
        candidate_paths: Optional[Sequence[Path]] = None,
    ):
        self.topology = topology
        self.config = config or BaselineConfig()
        self._rng = rng
        if candidate_paths is None:
            candidate_paths = enumerate_candidate_paths(topology, ordered=True)
        self._paths = list(candidate_paths)
        self._router = ECMPRouter(self._paths, seed=int(rng.integers(0, 2**31 - 1)))
        self._paths_by_pair: Dict[Tuple[str, str], List[Path]] = {}
        for path in self._paths:
            self._paths_by_pair.setdefault((path.src, path.dst), []).append(path)
        self._tor_names = [n.name for n in topology.tor_switches]

    # ------------------------------------------------------------------ pairs
    def monitored_pairs(self) -> List[Tuple[str, str]]:
        """The inter-ToR complete graph (ordered pairs, as each side pings)."""
        pairs = []
        for src in self._tor_names:
            for dst in self._tor_names:
                if src != dst and (src, dst) in self._paths_by_pair:
                    pairs.append((src, dst))
        return pairs

    # ----------------------------------------------------------------- window
    def run_window(
        self,
        scenario: FailureScenario,
        probes_per_pair: Optional[int] = None,
    ) -> MonitoringOutcome:
        """Run detection and (if anything trips) Netbouncer localization."""
        config = self.config
        probes_per_pair = probes_per_pair or config.probes_per_pair
        simulator = ProbeSimulator(self.topology, scenario, self._rng)

        detection_probes = 0
        suspects: List[SuspectedPair] = []
        for src, dst in self.monitored_pairs():
            outcome = simulator.probe_pair_ecmp(self._router, src, dst, probes_per_pair)
            detection_probes += outcome.sent
            if config.pair_is_suspect(outcome.sent, outcome.lost):
                suspects.append(
                    SuspectedPair(src=src, dst=dst, sent=outcome.sent, lost=outcome.lost)
                )

        suspected_links: List[int] = []
        localization_probes = 0
        localization_seconds = 0.0
        if suspects:
            unique_pairs: Dict[Tuple[str, str], Sequence[Path]] = {}
            for suspect in suspects:
                key = tuple(sorted((suspect.src, suspect.dst)))
                if key in unique_pairs:
                    continue
                unique_pairs[key] = self._paths_by_pair.get(
                    (key[0], key[1]), self._paths_by_pair.get((key[1], key[0]), [])
                )
            netbouncer = Netbouncer(
                simulator,
                probes_per_path=config.localization_probes_per_path,
                max_probes=config.localization_budget(detection_probes),
            )
            result = netbouncer.localize(unique_pairs)
            suspected_links = result.suspected_links
            localization_probes = result.probes_sent
            localization_seconds = config.localization_round_seconds

        return MonitoringOutcome(
            system=self.name,
            suspected_links=suspected_links,
            suspected_pairs=suspects,
            detection_probes=detection_probes,
            localization_probes=localization_probes,
            detection_seconds=config.window_seconds,
            localization_seconds=localization_seconds,
        )
