"""fbtracert: the traceroute-style post-alarm tool used with NetNORAD (§2, §6.2).

fbtracert explores the ECMP fan-out between a suspected pair by varying flow
labels and limiting the TTL: probes with TTL ``t`` only traverse the first
``t`` hops, and the hop at which end-to-end loss starts pins the faulty link.
The simulator reproduces exactly that: for every candidate path (discovered by
varying source ports) probes are sent hop-prefix by hop-prefix; the first hop
prefix whose loss rate jumps above the detection threshold is blamed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..routing import Path, walk_link_sequence
from ..simulation import ProbeConfig, ProbeSimulator
from ..topology import Topology

__all__ = ["FbtracertResult", "Fbtracert"]


@dataclass
class FbtracertResult:
    """Links blamed by fbtracert plus the probing cost of the extra round."""

    suspected_links: List[int]
    probes_sent: int
    traced_paths: int


class Fbtracert:
    """Hop-by-hop loss-onset localization for suspected pairs."""

    def __init__(
        self,
        topology: Topology,
        simulator: ProbeSimulator,
        probes_per_hop: int = 10,
        loss_threshold: float = 0.05,
        max_probes: Optional[int] = None,
    ):
        self._topology = topology
        self._simulator = simulator
        self._probes_per_hop = probes_per_hop
        self._loss_threshold = loss_threshold
        self._max_probes = max_probes

    def trace_path(self, path: Path) -> Tuple[Optional[int], int]:
        """Trace one candidate path; return (blamed link or None, probes used).

        Probes are sent with increasing TTL.  The prefix loss rates are
        monotone in expectation, so the first hop whose prefix loss rate
        exceeds the threshold (while the previous prefix stayed below it)
        carries the blame.
        """
        link_sequence = walk_link_sequence(self._topology, path.nodes)
        probes_used = 0
        previous_lossy = False
        config = ProbeConfig(probes_per_path=self._probes_per_hop)
        for hop, link_id in enumerate(link_sequence, start=1):
            prefix = link_sequence[:hop]
            lost = 0
            for sequence in range(self._probes_per_hop):
                packet = config.packet_for(path, sequence)
                if not self._simulator.transmit(prefix, packet.flow_key()):
                    lost += 1
            probes_used += self._probes_per_hop
            lossy = (lost / self._probes_per_hop) >= self._loss_threshold
            if lossy and not previous_lossy:
                return link_id, probes_used
            previous_lossy = lossy
        return None, probes_used

    def localize(
        self, candidate_paths_by_pair: Dict[Tuple[str, str], Sequence[Path]]
    ) -> FbtracertResult:
        """Trace every candidate path of every suspected pair.

        When a probe budget was configured, tracing stops as soon as it is
        exhausted -- remaining paths go untraced (the Fig. 6 fixed-budget
        setting).
        """
        suspected: Set[int] = set()
        probes_sent = 0
        traced = 0
        for paths in candidate_paths_by_pair.values():
            for path in paths:
                if self._max_probes is not None and probes_sent >= self._max_probes:
                    break
                traced += 1
                blamed, used = self.trace_path(path)
                probes_sent += used
                if blamed is not None:
                    suspected.add(blamed)
        return FbtracertResult(
            suspected_links=sorted(suspected),
            probes_sent=probes_sent,
            traced_paths=traced,
        )
