"""The repo's written invariants, as declarable source-level markers.

The reproduction's headline guarantee -- selections, counters, snapshots and
traces byte-identical across ``REPRO_BACKEND`` x ``REPRO_JOBS`` -- rests on a
handful of conventions:

* all randomness flows through :class:`repro.simulation.rng.SeededStreams`,
* wall-clock reads are confined to *informational* outputs (never gates),
* only picklable, slotted, plain-data types cross the
  :func:`repro.parallel.pool_map` boundary,
* worker processes never trace (spans are parent-side only), and
* ``REPRO_*`` environment reads happen only in the designated resolvers.

This module is where those conventions become *declarations* the static
analyzer (``repro lint``, :mod:`repro.analysis`) can check instead of prose it
cannot.  It is a **leaf**: it imports nothing from ``repro``, so every layer
-- including :mod:`repro.core`, which must not depend on the observability
plane -- may import it (rule REP007).

Markers
-------
``@informational_wall(reason)``
    Declares that a function reads the wall clock *only* to produce
    informational output (an ``elapsed_seconds`` field, a benchmark's
    recorded wall time).  Wall-clock calls outside such functions are
    REP002 findings.

``@informational_fields(*names)``
    Declares dataclass/record fields that carry wall-clock-flavoured data,
    mirroring how :class:`repro.obs.registry.MetricsRegistry` excludes
    ``informational=True`` series from deterministic snapshots.  Tests
    assert these fields never appear in deterministic exports.

``@pool_payload``
    Declares a class that is shipped across the process-pool boundary.
    REP003 requires such classes to be slotted (``__slots__`` or
    ``@dataclass(slots=True)``) so their pickled form stays plain data.

Tracer seam
-----------
:func:`trace_span` / :func:`trace_record` are the *dependency-free* face of
the sim-time tracer: :mod:`repro.obs.tracing` installs the active tracer here
(via :func:`install_tracer`) and lower layers emit spans through this seam
without importing ``repro.obs``.  When no tracer is installed both calls cost
one global load and an ``is None`` test.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Optional, Tuple, TypeVar

__all__ = [
    "informational_wall",
    "informational_fields",
    "pool_payload",
    "is_pool_payload",
    "wall_clock_reason",
    "declared_informational_fields",
    "install_tracer",
    "active_tracer",
    "trace_span",
    "trace_record",
]

T = TypeVar("T")

#: Attribute set by :func:`informational_wall` (the linter checks the
#: *decorator name* statically; the attribute is the runtime counterpart).
WALL_ATTR = "__repro_informational_wall__"
FIELDS_ATTR = "__repro_informational_fields__"
PAYLOAD_ATTR = "__repro_pool_payload__"


# ---------------------------------------------------------------------------
# invariant markers
# ---------------------------------------------------------------------------

def informational_wall(reason: str) -> Callable[[T], T]:
    """Mark a function whose wall-clock reads feed informational output only.

    The *reason* is mandatory and should say where the measurement surfaces
    (e.g. ``"PMCStats.elapsed_seconds is informational; gates use
    cost_counters()"``).  The decorator returns the function unchanged --
    decorated module-level functions stay picklable for the process pool.
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ValueError("informational_wall requires a non-empty reason")

    def mark(obj: T) -> T:
        setattr(obj, WALL_ATTR, reason)
        return obj

    return mark


def informational_fields(*names: str) -> Callable[[type], type]:
    """Declare record fields as informational (excluded from deterministic views).

    Composable: applying it twice extends the tuple.  The declaration lives
    on the class as ``__repro_informational_fields__``.
    """
    if not names or any(not isinstance(n, str) or not n for n in names):
        raise ValueError("informational_fields requires at least one field name")

    def mark(cls: type) -> type:
        existing = tuple(cls.__dict__.get(FIELDS_ATTR, ()))
        setattr(cls, FIELDS_ATTR, existing + tuple(names))
        return cls

    return mark


def declared_informational_fields(cls: type) -> Tuple[str, ...]:
    """Every informational field declared on *cls* or its bases."""
    fields: Tuple[str, ...] = ()
    for base in reversed(cls.__mro__):
        fields += tuple(base.__dict__.get(FIELDS_ATTR, ()))
    return fields


def pool_payload(cls: type) -> type:
    """Declare a class as crossing the :func:`repro.parallel.pool_map` boundary.

    REP003 statically requires the class body to declare ``__slots__`` (or
    use ``@dataclass(slots=True)``); the runtime pickle round-trip pins live
    in the pod-shard test suite.
    """
    setattr(cls, PAYLOAD_ATTR, True)
    return cls


def is_pool_payload(cls: type) -> bool:
    return bool(getattr(cls, PAYLOAD_ATTR, False))


def wall_clock_reason(obj: Any) -> Optional[str]:
    """The :func:`informational_wall` reason attached to *obj*, if any."""
    return getattr(obj, WALL_ATTR, None)


# ---------------------------------------------------------------------------
# tracer seam (installed by repro.obs.tracing; consumed by lower layers)
# ---------------------------------------------------------------------------

_ACTIVE_TRACER: Optional[Any] = None


def install_tracer(tracer: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with ``None``) the process-global active tracer.

    Returns the previously installed tracer so callers can restore it --
    :func:`repro.obs.tracing.activated` is the only intended caller.
    """
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return previous


def active_tracer() -> Optional[Any]:
    return _ACTIVE_TRACER


def trace_span(
    name: str,
    start: Optional[float] = None,
    informational: bool = False,
    **labels,
):
    """Context manager: a sim-time span on the active tracer, or a no-op.

    The dependency-free twin of :func:`repro.obs.tracing.span`; layers below
    the observability plane (e.g. :mod:`repro.core.pmc`) emit their spans
    through this seam so the layer DAG stays acyclic (REP007).
    ``informational=True`` is for spans whose existence depends on the
    machine or ``REPRO_JOBS`` (pool spawns, shm exports): the tracer keeps
    them out of the deterministic export and id sequence.
    """
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return nullcontext()
    return tracer.span(name, start=start, informational=informational, **labels)


def trace_record(
    name: str,
    start: Optional[float] = None,
    end: Optional[float] = None,
    wall_seconds: float = 0.0,
    informational: bool = False,
    **labels,
):
    """An instant/finished span on the active tracer, or ``None`` without one."""
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return None
    return tracer.record(
        name,
        start=start,
        end=end,
        wall_seconds=wall_seconds,
        informational=informational,
        **labels,
    )
