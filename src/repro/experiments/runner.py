"""Run every experiment harness in one go and collect the outputs.

Used by ``python -m repro experiment all`` and by release checklists: it runs
each table/figure harness at a chosen scale, writes the plain-text and CSV
renderings to an output directory and returns the tables for programmatic
inspection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from . import figure4, figure5, figure6, pll_comparison, table2, table3, table4, table5
from .common import ExperimentTable

__all__ = ["ExperimentRun", "ExperimentSuite", "default_suite", "run_all"]


@dataclass(frozen=True)
class ExperimentRun:
    """One completed experiment: its table plus how long it took."""

    name: str
    table: ExperimentTable
    elapsed_seconds: float


@dataclass
class ExperimentSuite:
    """A named set of experiment callables, each producing an ExperimentTable."""

    name: str
    experiments: Dict[str, Callable[[], ExperimentTable]] = field(default_factory=dict)

    def add(self, name: str, runner: Callable[[], ExperimentTable]) -> None:
        self.experiments[name] = runner

    def names(self) -> List[str]:
        return list(self.experiments)


def default_suite(scale: str = "quick") -> ExperimentSuite:
    """The standard suite covering every table and figure.

    ``scale="quick"`` finishes in a few minutes on a laptop; ``scale="full"``
    uses larger scaled-down instances and more trials (tens of minutes) for
    numbers closer to the ones recorded in EXPERIMENTS.md.
    """
    if scale == "quick":
        suite = ExperimentSuite(name="quick")
        suite.add("table2", lambda: table2.run())
        suite.add("table3", lambda: table3.run())
        suite.add("table4", lambda: table4.run(radix=4, trials=5, probes_per_path=80,
                                               alpha_beta=((1, 0), (2, 0), (1, 1)),
                                               failure_counts=(1, 2)))
        suite.add("table5", lambda: table5.run(radix=6, beta=2, trials=4,
                                               failure_counts=(1, 5), probes_per_path=100))
        suite.add("figure4", lambda: figure4.run(radix=4, frequencies=(2, 10, 30),
                                                 trials_per_frequency=6))
        suite.add("figure5", lambda: figure5.run(radix=4, trials=6,
                                                 detector_frequencies=(2, 10),
                                                 baseline_probes_per_pair=(5, 20)))
        suite.add("figure6", lambda: figure6.run(radix=4, trials=6, failure_counts=(1, 3, 5)))
        suite.add("pll_comparison", lambda: pll_comparison.run(radix=6, trials=10))
        return suite
    if scale == "full":
        suite = ExperimentSuite(name="full")
        suite.add("table2", lambda: table2.run(instances=table2.default_instances("medium")))
        suite.add("table3", lambda: table3.run(instances=table3.default_instances("medium")))
        suite.add("table4", lambda: table4.run(radix=6, trials=10, probes_per_path=120))
        suite.add("table5", lambda: table5.run(radix=6, beta=2, trials=10, probes_per_path=150))
        suite.add("figure4", lambda: figure4.run(radix=4, trials_per_frequency=12))
        suite.add("figure5", lambda: figure5.run(radix=4, trials=12))
        suite.add("figure6", lambda: figure6.run(radix=4, trials=12))
        suite.add("pll_comparison", lambda: pll_comparison.run(radix=6, trials=25))
        return suite
    raise ValueError(f"unknown scale {scale!r}; use 'quick' or 'full'")


def run_all(
    suite: Optional[ExperimentSuite] = None,
    output_dir: Optional[str] = None,
    only: Optional[Sequence[str]] = None,
    verbose: bool = True,
) -> List[ExperimentRun]:
    """Run (a subset of) a suite, optionally writing text/CSV outputs.

    Parameters
    ----------
    suite:
        The experiment suite; defaults to :func:`default_suite` at "quick" scale.
    output_dir:
        When given, ``<name>.txt`` (pretty table) and ``<name>.csv`` files are
        written there.
    only:
        Restrict to the named experiments.
    verbose:
        Print progress and the rendered tables as they complete.
    """
    suite = suite or default_suite()
    selected = list(suite.experiments.items())
    if only is not None:
        wanted = set(only)
        unknown = wanted - set(suite.experiments)
        if unknown:
            raise ValueError(f"unknown experiments requested: {sorted(unknown)}")
        selected = [(name, runner) for name, runner in selected if name in wanted]

    output_path = Path(output_dir) if output_dir is not None else None
    if output_path is not None:
        output_path.mkdir(parents=True, exist_ok=True)

    runs: List[ExperimentRun] = []
    for name, runner in selected:
        start = time.perf_counter()
        table = runner()
        elapsed = time.perf_counter() - start
        runs.append(ExperimentRun(name=name, table=table, elapsed_seconds=elapsed))
        if verbose:
            print(f"[{suite.name}] {name} finished in {elapsed:.1f} s")
            print(table.render())
            print()
        if output_path is not None:
            (output_path / f"{name}.txt").write_text(table.render() + "\n", encoding="utf-8")
            table.write_csv(output_path / f"{name}.csv")
    return runs
