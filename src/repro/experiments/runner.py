"""Run every experiment harness in one go and collect the outputs.

Used by ``python -m repro experiment all`` and by release checklists: it runs
each table/figure harness at a chosen scale, writes the plain-text and CSV
renderings to an output directory and returns the tables for programmatic
inspection.

Sweeps are embarrassingly parallel -- each harness is a pure function of its
keyword arguments -- so :func:`run_all` accepts ``jobs=N`` and fans the
declarative :class:`ExperimentSpec` entries out over a process pool, one
worker process per experiment.  Parallel runs produce *identical* tables to
serial ones: a spec carries every input (including its seed, derived from the
sweep's root seed through a named
:class:`~repro.simulation.SeededStreams` stream in the parent before any
worker starts), and the workers only compute, never share state.  Suites can
still hold plain callables (:meth:`ExperimentSuite.add`); those are not
picklable and always run serially in the parent process.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..contracts import informational_fields, informational_wall, pool_payload
from . import figure4, figure5, figure6, pll_comparison, table2, table3, table4, table5
from .common import ExperimentTable

__all__ = [
    "ExperimentRun",
    "ExperimentSpec",
    "ExperimentSuite",
    "default_suite",
    "execute_spec",
    "run_all",
]


@informational_fields("elapsed_seconds")
@dataclass(frozen=True)
class ExperimentRun:
    """One completed experiment: its table plus how long it took."""

    name: str
    table: ExperimentTable
    elapsed_seconds: float


@pool_payload
@dataclass(slots=True)
class ExperimentSpec:
    """A picklable experiment description: registry key + keyword arguments.

    ``experiment`` names an entry of the runner registry (``"table2"``,
    ``"figure5"``, ...); ``kwargs`` are passed to that harness's ``run``
    verbatim.  Because the spec is plain data it can cross a process
    boundary, which is what lets :func:`run_all` parallelise sweeps.
    """

    experiment: str
    kwargs: Dict[str, object] = field(default_factory=dict)


def _run_table2(scale: str = "small", **kwargs) -> ExperimentTable:
    return table2.run(instances=table2.default_instances(scale), **kwargs)


def _run_table3(scale: str = "small", **kwargs) -> ExperimentTable:
    return table3.run(instances=table3.default_instances(scale), **kwargs)


#: Registry key -> module-level harness callable (picklable by reference).
_REGISTRY: Dict[str, Callable[..., ExperimentTable]] = {
    "table2": _run_table2,
    "table3": _run_table3,
    "table4": table4.run,
    "table5": table5.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "pll_comparison": pll_comparison.run,
}


def execute_spec(spec: ExperimentSpec) -> ExperimentTable:
    """Run one spec (also the entry point worker processes import)."""
    runner = _REGISTRY.get(spec.experiment)
    if runner is None:
        raise ValueError(
            f"unknown experiment {spec.experiment!r}; registry has {sorted(_REGISTRY)}"
        )
    return runner(**spec.kwargs)


@informational_wall("ExperimentRun.elapsed_seconds is informational; tables gate on counters")
def _execute_spec_timed(spec: ExperimentSpec) -> Tuple[ExperimentTable, float]:
    start = time.perf_counter()
    table = execute_spec(spec)
    return table, time.perf_counter() - start


Entry = Union[ExperimentSpec, Callable[[], ExperimentTable]]


@dataclass
class ExperimentSuite:
    """A named set of experiments, each producing an ExperimentTable.

    Entries are either :class:`ExperimentSpec` (declarative, picklable,
    parallelisable -- use :meth:`add_spec`) or bare callables (legacy
    :meth:`add`; always run in the parent process).
    """

    name: str
    experiments: Dict[str, Entry] = field(default_factory=dict)

    def add(self, name: str, runner: Callable[[], ExperimentTable]) -> None:
        self.experiments[name] = runner

    def add_spec(self, name: str, experiment: str, **kwargs: object) -> None:
        self.experiments[name] = ExperimentSpec(experiment=experiment, kwargs=kwargs)

    def names(self) -> List[str]:
        return list(self.experiments)


def default_suite(scale: str = "quick") -> ExperimentSuite:
    """The standard suite covering every table and figure.

    ``scale="quick"`` finishes in a few minutes on a laptop; ``scale="full"``
    uses larger scaled-down instances and more trials (tens of minutes) for
    numbers closer to the ones recorded in EXPERIMENTS.md.  Every entry is a
    spec, so both suites parallelise under ``run_all(..., jobs=N)``.
    """
    if scale == "quick":
        suite = ExperimentSuite(name="quick")
        suite.add_spec("table2", "table2")
        suite.add_spec("table3", "table3")
        suite.add_spec("table4", "table4", radix=4, trials=5, probes_per_path=80,
                       alpha_beta=((1, 0), (2, 0), (1, 1)), failure_counts=(1, 2))
        suite.add_spec("table5", "table5", radix=6, beta=2, trials=4,
                       failure_counts=(1, 5), probes_per_path=100)
        suite.add_spec("figure4", "figure4", radix=4, frequencies=(2, 10, 30),
                       trials_per_frequency=6)
        suite.add_spec("figure5", "figure5", radix=4, trials=6,
                       detector_frequencies=(2, 10),
                       baseline_probes_per_pair=(5, 20))
        suite.add_spec("figure6", "figure6", radix=4, trials=6, failure_counts=(1, 3, 5))
        suite.add_spec("pll_comparison", "pll_comparison", radix=6, trials=10)
        return suite
    if scale == "full":
        suite = ExperimentSuite(name="full")
        suite.add_spec("table2", "table2", scale="medium")
        suite.add_spec("table3", "table3", scale="medium")
        suite.add_spec("table4", "table4", radix=6, trials=10, probes_per_path=120)
        suite.add_spec("table5", "table5", radix=6, beta=2, trials=10, probes_per_path=150)
        suite.add_spec("figure4", "figure4", radix=4, trials_per_frequency=12)
        suite.add_spec("figure5", "figure5", radix=4, trials=12)
        suite.add_spec("figure6", "figure6", radix=4, trials=12)
        suite.add_spec("pll_comparison", "pll_comparison", radix=6, trials=25)
        return suite
    raise ValueError(f"unknown scale {scale!r}; use 'quick' or 'full'")


def _derive_seeds(selected: Sequence[Tuple[str, Entry]], seed: Optional[int]) -> List[Tuple[str, Entry]]:
    """Pin a per-experiment seed on every spec that accepts one.

    Seeds come from named streams of one root ``SeededStreams``, so they
    depend only on (root seed, experiment name) -- not on suite order or on
    which worker runs the spec.  Specs that already pin ``seed`` and
    harnesses without a ``seed`` parameter are left untouched.
    """
    if seed is None:
        return list(selected)
    from ..simulation.rng import SeededStreams

    streams = SeededStreams(seed)
    derived: List[Tuple[str, Entry]] = []
    for name, entry in selected:
        if isinstance(entry, ExperimentSpec) and "seed" not in entry.kwargs:
            runner = _REGISTRY.get(entry.experiment)
            accepts_seed = (
                runner is not None and "seed" in inspect.signature(runner).parameters
            )
            if accepts_seed:
                entry = ExperimentSpec(
                    experiment=entry.experiment,
                    kwargs={**entry.kwargs, "seed": streams.spawn_seed(name)},
                )
        derived.append((name, entry))
    return derived


@informational_wall("ExperimentRun.elapsed_seconds is informational; tables gate on counters")
def run_all(
    suite: Optional[ExperimentSuite] = None,
    output_dir: Optional[str] = None,
    only: Optional[Sequence[str]] = None,
    verbose: bool = True,
    jobs: int = 1,
    seed: Optional[int] = None,
) -> List[ExperimentRun]:
    """Run (a subset of) a suite, optionally writing text/CSV outputs.

    Parameters
    ----------
    suite:
        The experiment suite; defaults to :func:`default_suite` at "quick" scale.
    output_dir:
        When given, ``<name>.txt`` (pretty table) and ``<name>.csv`` files are
        written there.
    only:
        Restrict to the named experiments.
    verbose:
        Print progress and the rendered tables as they complete.
    jobs:
        Worker processes for spec entries; ``1`` (the default) runs everything
        serially in this process.  Dispatch rides the shared
        :func:`repro.parallel.pool_map` (the same plumbing the pod-sharded
        control plane uses), so results are identical either way -- the pool
        only changes wall-clock time.
    seed:
        Optional root seed: every spec whose harness accepts ``seed`` gets a
        per-experiment seed derived from it (see :meth:`SeededStreams.spawn_seed`),
        the same value at any ``jobs`` setting.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    suite = suite or default_suite()
    selected = list(suite.experiments.items())
    if only is not None:
        wanted = set(only)
        unknown = wanted - set(suite.experiments)
        if unknown:
            raise ValueError(f"unknown experiments requested: {sorted(unknown)}")
        selected = [(name, runner) for name, runner in selected if name in wanted]
    selected = _derive_seeds(selected, seed)

    output_path = Path(output_dir) if output_dir is not None else None
    if output_path is not None:
        output_path.mkdir(parents=True, exist_ok=True)

    results: Dict[str, Tuple[ExperimentTable, float]] = {}
    if jobs > 1:
        spec_entries = [
            (name, entry) for name, entry in selected if isinstance(entry, ExperimentSpec)
        ]
        if spec_entries:
            from ..parallel import pool_map

            # Spec payloads are self-contained plain data, so every run_all
            # shares one persistent pool context: ``experiment all`` pays a
            # single pool spawn however many suites it sweeps.
            outputs = pool_map(
                _execute_spec_timed,
                [entry for _, entry in spec_entries],
                jobs=jobs,
                context_key="experiments.run_all",
            )
            results = {name: output for (name, _), output in zip(spec_entries, outputs)}

    runs: List[ExperimentRun] = []
    for name, entry in selected:
        if name in results:
            table, elapsed = results[name]
        elif isinstance(entry, ExperimentSpec):
            table, elapsed = _execute_spec_timed(entry)
        else:
            start = time.perf_counter()
            table = entry()
            elapsed = time.perf_counter() - start
        runs.append(ExperimentRun(name=name, table=table, elapsed_seconds=elapsed))
        if verbose:
            print(f"[{suite.name}] {name} finished in {elapsed:.1f} s")
            print(table.render())
            print()
        if output_path is not None:
            (output_path / f"{name}.txt").write_text(table.render() + "\n", encoding="utf-8")
            table.write_csv(output_path / f"{name}.csv")
    return runs
