"""Experiment harnesses: one module per table/figure of the paper's evaluation.

Every module exposes ``run(...) -> ExperimentTable`` (measured, scaled-down by
default) and ``main()`` which prints the paper's reference numbers next to the
measured rows.  Run them as scripts, e.g.::

    python -m repro.experiments.table2
    python -m repro.experiments.figure5
"""

from . import figure4, figure5, figure6, pll_comparison, table2, table3, table4, table5
from .common import ExperimentTable
from .runner import (
    ExperimentRun,
    ExperimentSpec,
    ExperimentSuite,
    default_suite,
    execute_spec,
    run_all,
)

__all__ = [
    "ExperimentTable",
    "ExperimentRun",
    "ExperimentSpec",
    "ExperimentSuite",
    "execute_spec",
    "default_suite",
    "run_all",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "pll_comparison",
]
