"""Figure 5 -- accuracy and false positives vs. probing budget, three systems.

One random failure per window on the Fattree(4) testbed; deTector, Pingmesh
(+Netbouncer) and NetNORAD (+fbtracert) are swept over their probing budget
and the per-minute probe count is recorded next to accuracy and false-positive
ratio.  The reproduced claims:

* deTector reaches high accuracy with several times fewer probes (the paper
  quotes 7,200 vs 20,700 vs 35,100 probes/minute for 98% accuracy),
* at an equal probe budget deTector's accuracy is higher and its false
  positives no worse, and
* deTector localizes ~30 seconds earlier because it needs no post-alarm
  probing round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BaselineConfig, NetNORADSystem, PingmeshSystem
from ..localization import aggregate_metrics, evaluate_localization
from ..monitor import ControllerConfig, DetectorSystem
from ..simulation import FailureGenerator, SeededStreams
from ..topology import build_fattree
from .common import ExperimentTable

__all__ = ["run", "paper_reference", "main"]

DEFAULT_DETECTOR_FREQUENCIES: Tuple[float, ...] = (1, 2, 5, 10, 20)
DEFAULT_BASELINE_PROBES_PER_PAIR: Tuple[int, ...] = (2, 5, 10, 20, 40)


def run(
    radix: int = 4,
    trials: int = 12,
    detector_frequencies: Sequence[float] = DEFAULT_DETECTOR_FREQUENCIES,
    baseline_probes_per_pair: Sequence[int] = DEFAULT_BASELINE_PROBES_PER_PAIR,
    seed: int = 55,
) -> ExperimentTable:
    """Sweep each system's probing budget with a single random failure per window."""
    topology = build_fattree(radix)
    link_ids = [link.link_id for link in topology.switch_links]
    table = ExperimentTable(
        title=f"Figure 5 (measured, Fattree({radix})) -- single failure, probes vs accuracy",
        columns=[
            "system",
            "budget_parameter",
            "probes_per_minute",
            "accuracy_pct",
            "false_positive_pct",
            "time_to_localization_s",
        ],
    )

    # One --seed, independent named streams (no ad-hoc seed reuse): each
    # budget level restarts its stream so every configuration replays
    # identical probing and failure draws.
    streams = SeededStreams(seed)

    # ----------------------------------------------------------- deTector
    for frequency in detector_frequencies:
        rng = streams.generator("detector")
        system = DetectorSystem(
            topology, rng, ControllerConfig(alpha=3, beta=1, probes_per_second=frequency)
        )
        system.run_controller_cycle()
        generator = FailureGenerator(topology, rng)
        metrics = []
        probes = []
        for _ in range(trials):
            outcome = system.run_window(generator.generate_single())
            metrics.append(outcome.metrics)
            probes.append(outcome.probes_sent)
        aggregated = aggregate_metrics(metrics)
        table.add_row(
            system="deTector",
            budget_parameter=f"{frequency} pps/pinger",
            probes_per_minute=float(np.mean(probes)) * 2.0,
            accuracy_pct=100.0 * aggregated["accuracy"],
            false_positive_pct=100.0 * aggregated["false_positive_ratio"],
            time_to_localization_s=30.0,
        )

    # ----------------------------------------------------------- baselines
    for name, factory in (
        ("Pingmesh+Netbouncer", PingmeshSystem),
        ("NetNORAD+fbtracert", NetNORADSystem),
    ):
        for probes_per_pair in baseline_probes_per_pair:
            rng = streams.generator("baseline")
            baseline = factory(topology, rng, BaselineConfig(probes_per_pair=probes_per_pair))
            generator = FailureGenerator(topology, rng)
            metrics = []
            probes = []
            delays = []
            for _ in range(trials):
                scenario = generator.generate_single()
                outcome = baseline.run_window(scenario)
                metrics.append(
                    evaluate_localization(
                        scenario.bad_link_ids, outcome.suspected_links, link_ids
                    )
                )
                probes.append(outcome.total_probes)
                delays.append(outcome.time_to_localization_seconds)
            aggregated = aggregate_metrics(metrics)
            table.add_row(
                system=name,
                budget_parameter=f"{probes_per_pair} probes/pair",
                probes_per_minute=float(np.mean(probes)) * 2.0,
                accuracy_pct=100.0 * aggregated["accuracy"],
                false_positive_pct=100.0 * aggregated["false_positive_ratio"],
                time_to_localization_s=float(np.mean(delays)),
            )

    table.add_note(
        "probes_per_minute counts detection plus localization probes, doubling the 30-second window "
        "totals, matching the paper's accounting."
    )
    table.add_note(
        "reproduced shape: deTector reaches its accuracy plateau with several times fewer probes and "
        "~30 s earlier than the two baselines."
    )
    return table


def paper_reference() -> ExperimentTable:
    """The quantitative anchors the paper quotes for Fig. 5."""
    table = ExperimentTable(
        title="Figure 5 (paper) -- probes/minute needed for 98% accuracy and ~1% false positives",
        columns=["system", "probes_per_minute", "time_advantage"],
    )
    table.add_row(system="deTector", probes_per_minute=7200, time_advantage="localizes ~30 s earlier")
    table.add_row(system="NetNORAD+fbtracert", probes_per_minute=20700, time_advantage="-")
    table.add_row(system="Pingmesh+Netbouncer", probes_per_minute=35100, time_advantage="-")
    table.add_note("i.e. deTector needs ~1.9x fewer probes than NetNORAD and ~3.9x fewer than Pingmesh.")
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    paper_reference().print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
