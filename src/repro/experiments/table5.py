"""Table 5 -- accuracy / false positives / false negatives with a 2-identifiable matrix.

The paper builds a 2-identifiable probe matrix for a 48-ary Fattree and shows
that accuracy stays ~99% while the false-positive ratio stays below 1% even
with up to 50 concurrent link failures; false negatives (~1%) are dominated by
failures with extremely low loss rates.

The harness runs the same protocol on a scaled-down Fattree (radix 6 by
default; radix 8 gives numbers closer to the paper at a few minutes of
runtime).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PMCOptions, construct_probe_matrix
from ..localization import (
    PLLLocalizer,
    aggregate_metrics,
    evaluate_localization,
    preprocess_observations,
)
from ..routing import RoutingMatrix, enumerate_candidate_paths
from ..simulation import FailureGenerator, ProbeConfig, ProbeSimulator, SeededStreams
from ..topology import build_fattree
from .common import ExperimentTable

__all__ = ["run", "paper_reference", "main", "DEFAULT_FAILURE_COUNTS"]

DEFAULT_FAILURE_COUNTS: Tuple[int, ...] = (1, 5, 10, 20)


def run(
    radix: int = 6,
    beta: int = 2,
    alpha: int = 1,
    failure_counts: Sequence[int] = DEFAULT_FAILURE_COUNTS,
    trials: int = 8,
    probes_per_path: int = 150,
    seed: int = 48,
) -> ExperimentTable:
    """Accuracy / FP / FN of PLL with a beta-identifiable matrix under many failures."""
    topology = build_fattree(radix)
    paths = enumerate_candidate_paths(topology, ordered=False)
    routing_matrix = RoutingMatrix(topology, paths)
    result = construct_probe_matrix(routing_matrix, PMCOptions(alpha=alpha, beta=beta))
    probe_matrix = result.probe_matrix

    table = ExperimentTable(
        title=(
            f"Table 5 (measured, Fattree({radix})) -- fault localization with a "
            f"{beta}-identifiability probe matrix ({result.num_paths} paths)"
        ),
        columns=["failed_links", "accuracy_pct", "false_positive_pct", "false_negative_pct"],
    )
    # Deterministic work profile of the shared construction step: the
    # benchmark harness gates on these counters, never on wall clock.
    table.metadata["pmc_cost_counters"] = result.stats.cost_counters()
    table.metadata["pmc_selected_paths"] = result.num_paths
    table.metadata["pmc_candidate_paths"] = routing_matrix.num_paths

    streams = SeededStreams(seed)
    rng = streams.generator("scenarios")
    generator = FailureGenerator(topology, rng)
    localizer = PLLLocalizer()
    for count in failure_counts:
        if count > routing_matrix.num_links:
            continue
        metrics = []
        for _ in range(trials):
            scenario = generator.generate(count)
            simulator = ProbeSimulator(topology, scenario, rng)
            observations = simulator.observe_probe_matrix(
                probe_matrix, ProbeConfig(probes_per_path=probes_per_path)
            )
            cleaned = preprocess_observations(probe_matrix, observations)
            verdict = localizer.localize(probe_matrix, cleaned.observations)
            metrics.append(
                evaluate_localization(
                    scenario.bad_link_ids, verdict.suspected_links, probe_matrix.link_ids
                )
            )
        aggregated = aggregate_metrics(metrics)
        table.add_row(
            failed_links=count,
            accuracy_pct=100.0 * aggregated["accuracy"],
            false_positive_pct=100.0 * aggregated["false_positive_ratio"],
            false_negative_pct=100.0 * aggregated["false_negative_ratio"],
        )

    table.add_note(
        f"scaled from the paper's 48-ary Fattree to Fattree({radix}); the reproduced claims are "
        "accuracy staying high and the false-positive ratio staying ~1% as the failure count grows."
    )
    table.add_note(
        "false negatives are dominated by random-partial failures with loss rates below what the "
        "per-window probe count can expose, matching the paper's explanation."
    )
    return table


def paper_reference() -> ExperimentTable:
    """Table 5 as printed in the paper (48-ary Fattree, 2-identifiable matrix)."""
    table = ExperimentTable(
        title="Table 5 (paper, Fattree(48)) -- localization with a 2-identifiability probe matrix",
        columns=["failed_links", "accuracy_pct", "false_positive_pct", "false_negative_pct"],
    )
    rows = [
        (1, 98.95, 0.01, 1.05),
        (5, 98.99, 0.02, 1.01),
        (10, 98.98, 0.02, 1.02),
        (20, 98.93, 0.02, 1.07),
        (50, 98.87, 0.02, 1.13),
    ]
    for failed, accuracy, fp, fn in rows:
        table.add_row(
            failed_links=failed,
            accuracy_pct=accuracy,
            false_positive_pct=fp,
            false_negative_pct=fn,
        )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    paper_reference().print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
