"""Table 3 -- number of probe paths selected for different (alpha, beta).

The paper reports, for Fattree(32/64), VL2(72,48,40)/(128,96,80) and
BCube(8,2)/(8,4), how many paths PMC selects for (alpha, beta) in
{(1,0), (1,1), (3,2)} next to the astronomically larger number of original
candidate paths -- plus the analytic lower bound of ``k**3/5`` paths for a
(1-coverage, 1-identifiability) matrix in a k-ary Fattree (§4.4 and Appendix B
of the technical report).

The measured harness runs the same sweep on scaled-down instances and also
reports the selected/links ratio, which is the quantity that transfers across
scales (the paper's Fattree(64) selects 61,440 paths for 131,072 inter-switch
links, a ratio of ~0.47 for (1,1)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import PMCOptions, construct_probe_matrix
from ..routing import RoutingMatrix, enumerate_candidate_paths
from ..topology import Topology, build_bcube, build_fattree, build_vl2, fattree_counts
from .common import ExperimentTable

__all__ = ["Table3Instance", "default_instances", "run", "paper_reference", "main"]

DEFAULT_ALPHA_BETA: Tuple[Tuple[int, int], ...] = ((1, 0), (1, 1), (3, 2))


@dataclass(frozen=True)
class Table3Instance:
    """One topology row of the path-count sweep."""

    label: str
    build: Callable[[], Topology]
    fattree_k: Optional[int] = None  # enables the k^3/5 lower-bound column


def default_instances(scale: str = "small") -> List[Table3Instance]:
    if scale == "small":
        return [
            Table3Instance("Fattree(4)", lambda: build_fattree(4), fattree_k=4),
            Table3Instance("Fattree(6)", lambda: build_fattree(6), fattree_k=6),
            Table3Instance("VL2(8,6,2)", lambda: build_vl2(8, 6, 2)),
            Table3Instance("BCube(4,1)", lambda: build_bcube(4, 1)),
        ]
    if scale == "medium":
        return [
            Table3Instance("Fattree(6)", lambda: build_fattree(6), fattree_k=6),
            Table3Instance("Fattree(8)", lambda: build_fattree(8), fattree_k=8),
            Table3Instance("VL2(12,8,2)", lambda: build_vl2(12, 8, 2)),
            Table3Instance("BCube(4,2)", lambda: build_bcube(4, 2)),
        ]
    raise ValueError(f"unknown scale {scale!r}; use 'small' or 'medium'")


def run(
    instances: Optional[Sequence[Table3Instance]] = None,
    alpha_beta: Sequence[Tuple[int, int]] = DEFAULT_ALPHA_BETA,
    max_beta: int = 2,
) -> ExperimentTable:
    """Count selected paths per (alpha, beta) on each instance.

    ``beta`` values above ``max_beta`` are clamped (the paper itself reports
    that beta >= 3 is impractical to construct and unnecessary in practice,
    §4.4); the clamping is recorded in the notes.
    """
    instances = list(instances) if instances is not None else default_instances()
    columns = ["dcn", "switch_links", "candidate_paths"]
    for alpha, beta in alpha_beta:
        columns.append(f"paths({alpha},{beta})")
    columns.append("fattree_lower_bound")
    table = ExperimentTable(
        title="Table 3 (measured, scaled) -- number of selected probe paths per (alpha, beta)",
        columns=columns,
    )
    clamped = False
    for instance in instances:
        topology = instance.build()
        paths = enumerate_candidate_paths(topology, ordered=False)
        routing_matrix = RoutingMatrix(topology, paths)
        row: Dict[str, object] = {
            "dcn": instance.label,
            "switch_links": routing_matrix.num_links,
            "candidate_paths": routing_matrix.num_paths,
        }
        for alpha, beta in alpha_beta:
            effective_beta = min(beta, max_beta)
            if effective_beta != beta:
                clamped = True
            options = PMCOptions(alpha=alpha, beta=effective_beta)
            result = construct_probe_matrix(routing_matrix, options)
            row[f"paths({alpha},{beta})"] = result.num_paths
        if instance.fattree_k is not None:
            row["fattree_lower_bound"] = fattree_counts(instance.fattree_k)[
                "min_paths_1cov_1ident"
            ]
        table.rows.append(row)
    table.add_note(
        "the paper's instances (Fattree(32/64), VL2(72/128,...), BCube(8,2)/(8,4)) are scaled down; "
        "the selected/candidate ratio and the proximity to the k^3/5 bound are the reproduced quantities."
    )
    if clamped:
        table.add_note(
            f"beta values above {max_beta} were clamped: the virtual-link expansion grows as C(n, beta) "
            "and the paper likewise reports beta >= 3 as impractical (§4.4)."
        )
    return table


def paper_reference() -> ExperimentTable:
    """Table 3 as printed in the paper."""
    table = ExperimentTable(
        title="Table 3 (paper) -- number of selected paths with different (alpha, beta)",
        columns=["dcn", "original_paths", "paths(1,0)", "paths(1,1)", "paths(3,2)"],
    )
    rows = [
        ("Fattree(32)", 66977792, 4096, 7680, 12288),
        ("Fattree(64)", 4292870144, 32768, 61440, 98304),
        ("VL2(72,48,40)", 107371008, 864, 1440, 2640),
        ("VL2(128,96,80)", 2415132672, 3072, 5760, 9216),
        ("BCube(8,2)", 784896, 1712, 2016, 2832),
        ("BCube(8,4)", 5368545280, 49152, 70572, 119556),
    ]
    for dcn, original, p10, p11, p32 in rows:
        table.add_row(
            dcn=dcn,
            original_paths=original,
            **{"paths(1,0)": p10, "paths(1,1)": p11, "paths(3,2)": p32},
        )
    table.add_note(
        "the paper also proves a k^3/5 lower bound for (1,1) in a k-ary Fattree: 52,428.8 for k=64, "
        "against 61,440 selected."
    )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    paper_reference().print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
