"""Shared infrastructure for the experiment harnesses.

Every table and figure of the paper's evaluation has a module in this package
exposing

* ``run(...)`` -- compute the result rows (scaled-down instances by default so
  a laptop finishes in seconds-to-minutes), and
* ``main()``   -- print the measured rows next to the corresponding numbers
  reported in the paper, so the qualitative comparison (who wins, rough
  factors, trends) is visible at a glance.

:class:`ExperimentTable` is the small container/formatter those modules share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["ExperimentTable", "format_value"]

Value = Union[int, float, str, bool, None]


def format_value(value: Value) -> str:
    """Compact human formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


@dataclass
class ExperimentTable:
    """A list of result rows with aligned pretty-printing.

    Attributes
    ----------
    title:
        Shown above the table, e.g. ``"Table 2 -- PMC running time (seconds)"``.
    columns:
        Column keys in display order.
    rows:
        One dict per row; missing keys render as ``-``.
    notes:
        Free-form caveats (scaling factors, substitutions) printed under the
        table.
    metadata:
        Machine-readable side data that is not part of the row grid -- e.g.
        the deterministic cost counters of a shared setup step (probe-matrix
        construction).  Not rendered; carried through pickling/the parallel
        runner so harness gates can assert on it.
    """

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Value]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: Value) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_values(self, column: str) -> List[Value]:
        return [row.get(column) for row in self.rows]

    def deterministic_rows(self) -> List[Dict[str, Value]]:
        """Rows minus the columns declared informational in the metadata.

        Harnesses that time things list those wall-clock columns under
        ``metadata["informational_columns"]``; everything else is a pure
        function of the inputs, so two runs of the same experiment (serial or
        parallel, any backend) must agree on this view byte for byte.
        """
        drop = set(self.metadata.get("informational_columns", ()))
        if not drop:
            return [dict(row) for row in self.rows]
        return [
            {key: value for key, value in row.items() if key not in drop}
            for row in self.rows
        ]

    # -------------------------------------------------------------- rendering
    def render(self) -> str:
        headers = list(self.columns)
        body = [[format_value(row.get(column)) for column in headers] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title, ""]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in body:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"note: {note}")
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering (for reports and EXPERIMENTS.md)."""
        headers = list(self.columns)
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join(["---"] * len(headers)) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(format_value(row.get(column)) for column in headers) + " |"
            )
        for note in self.notes:
            lines.append("")
            lines.append(f"*note: {note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering with the raw (unformatted) cell values."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns), extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row.get(column, "") for column in self.columns})
        return buffer.getvalue()

    def write_csv(self, path) -> None:
        """Write :meth:`to_csv` output to a file path."""
        from pathlib import Path

        Path(path).write_text(self.to_csv(), encoding="utf-8")

    def print(self) -> None:  # pragma: no cover - thin convenience wrapper
        print(self.render())
        print()
