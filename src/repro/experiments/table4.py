"""Table 4 -- localization accuracy vs. probe-matrix coverage/identifiability.

The paper simulates an 18-radix Fattree, constructs probe matrices for
(alpha, beta) in {(1,0), (2,0), (3,0), (1,1), (1,2), (1,3)} and measures PLL's
accuracy when 1, 5, 10, 20 or 50 links fail concurrently.  The take-aways to
reproduce:

* identifiability buys far more accuracy per selected path than coverage
  ((1,1) beats (3,0) with fewer paths),
* 1-identifiability already yields > 90% accuracy, and
* raising beta beyond 1 gives diminishing returns.

The harness defaults to a Fattree(6) (the full 18-radix run is available by
passing ``radix=18`` and patience); failure counts above the scaled fabric's
link count are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PMCOptions, construct_probe_matrix
from ..localization import (
    PLLLocalizer,
    aggregate_metrics,
    evaluate_localization,
    preprocess_observations,
)
from ..routing import RoutingMatrix, enumerate_candidate_paths
from ..simulation import FailureGenerator, ProbeConfig, ProbeSimulator, SeededStreams
from ..topology import build_fattree
from .common import ExperimentTable

__all__ = ["run", "paper_reference", "main", "DEFAULT_ALPHA_BETA", "DEFAULT_FAILURE_COUNTS"]

DEFAULT_ALPHA_BETA: Tuple[Tuple[int, int], ...] = ((1, 0), (2, 0), (3, 0), (1, 1), (1, 2))
DEFAULT_FAILURE_COUNTS: Tuple[int, ...] = (1, 5, 10, 20)


def run(
    radix: int = 6,
    alpha_beta: Sequence[Tuple[int, int]] = DEFAULT_ALPHA_BETA,
    failure_counts: Sequence[int] = DEFAULT_FAILURE_COUNTS,
    trials: int = 8,
    probes_per_path: int = 100,
    seed: int = 2017,
) -> ExperimentTable:
    """Accuracy of PLL per (alpha, beta) probe matrix and per concurrent-failure count."""
    topology = build_fattree(radix)
    paths = enumerate_candidate_paths(topology, ordered=False)
    routing_matrix = RoutingMatrix(topology, paths)

    columns = ["alpha_beta", "paths"] + [f"acc_{count}_failures" for count in failure_counts]
    table = ExperimentTable(
        title=(
            f"Table 4 (measured, Fattree({radix})) -- PLL accuracy (%) per probe matrix "
            "and number of concurrently failed links"
        ),
        columns=columns,
    )

    num_links = routing_matrix.num_links
    # One --seed, independent named streams; every (alpha, beta) setting
    # restarts the scenario stream so all matrices face identical failures.
    streams = SeededStreams(seed)
    localizer = PLLLocalizer()
    for alpha, beta in alpha_beta:
        result = construct_probe_matrix(routing_matrix, PMCOptions(alpha=alpha, beta=beta))
        probe_matrix = result.probe_matrix
        row: Dict[str, object] = {
            "alpha_beta": f"({alpha},{beta})",
            "paths": result.num_paths,
        }
        rng = streams.generator("scenarios")
        generator = FailureGenerator(topology, rng)
        for count in failure_counts:
            if count > num_links:
                row[f"acc_{count}_failures"] = None
                continue
            metrics = []
            for _ in range(trials):
                scenario = generator.generate(count)
                simulator = ProbeSimulator(topology, scenario, rng)
                observations = simulator.observe_probe_matrix(
                    probe_matrix, ProbeConfig(probes_per_path=probes_per_path)
                )
                cleaned = preprocess_observations(probe_matrix, observations)
                verdict = localizer.localize(probe_matrix, cleaned.observations)
                metrics.append(
                    evaluate_localization(
                        scenario.bad_link_ids, verdict.suspected_links, probe_matrix.link_ids
                    )
                )
            row[f"acc_{count}_failures"] = 100.0 * aggregate_metrics(metrics)["accuracy"]
        table.rows.append(row)

    table.add_note(
        f"scaled from the paper's 18-radix Fattree to Fattree({radix}); {trials} random failure "
        f"scenarios per cell, {probes_per_path} probes per path per window."
    )
    table.add_note(
        "expected trends: accuracy((1,1)) >> accuracy((3,0)) despite fewer paths, and beta > 1 adds little."
    )
    return table


def paper_reference() -> ExperimentTable:
    """Table 4 as printed in the paper (18-radix Fattree)."""
    table = ExperimentTable(
        title="Table 4 (paper, Fattree(18)) -- accuracy (%) per probe matrix and failed-link count",
        columns=["alpha_beta", "paths", "acc_1", "acc_5", "acc_10", "acc_20", "acc_50"],
    )
    rows = [
        ("(1,0)", 729, 30.56, 30.87, 30.30, 30.26, 29.19),
        ("(2,0)", 1485, 58.43, 57.43, 57.08, 56.81, 57.11),
        ("(3,0)", 2187, 68.22, 70.61, 69.89, 70.40, 70.14),
        ("(1,1)", 1269, 94.74, 93.37, 94.21, 93.43, 90.29),
        ("(1,2)", 1512, 99.26, 99.06, 99.02, 98.77, 95.92),
        ("(1,3)", 2349, 99.63, 99.63, 99.67, 99.62, 98.07),
    ]
    for alpha_beta, paths, a1, a5, a10, a20, a50 in rows:
        table.add_row(
            alpha_beta=alpha_beta,
            paths=paths,
            acc_1=a1,
            acc_5=a5,
            acc_10=a10,
            acc_20=a20,
            acc_50=a50,
        )
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    paper_reference().print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
