"""§5.3 claim -- PLL vs. Tomo, SCORE and OMP on the same probe matrix.

The paper reports (details in its technical report) that, given the same probe
matrix, PLL achieves ~2% higher accuracy, ~2% lower false positives and runs
an order of magnitude faster than the other localization algorithms.  This
harness reproduces the comparison on a scaled-down Fattree with the simulated
failure mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import PMCOptions, construct_probe_matrix
from ..localization import (
    OMPLocalizer,
    PLLLocalizer,
    ScoreLocalizer,
    TomoLocalizer,
    aggregate_metrics,
    evaluate_localization,
    preprocess_observations,
)
from ..routing import RoutingMatrix, enumerate_candidate_paths
from ..simulation import FailureGenerator, ProbeConfig, ProbeSimulator, SeededStreams
from ..topology import build_fattree
from .common import ExperimentTable

__all__ = ["run", "paper_reference_notes", "main"]


def run(
    radix: int = 6,
    alpha: int = 3,
    beta: int = 1,
    trials: int = 20,
    failures_per_trial: int = 2,
    probes_per_path: int = 120,
    seed: int = 553,
) -> ExperimentTable:
    """Run all four localizers on identical observations and compare them."""
    topology = build_fattree(radix)
    paths = enumerate_candidate_paths(topology, ordered=False)
    routing_matrix = RoutingMatrix(topology, paths)
    probe_matrix = construct_probe_matrix(
        routing_matrix, PMCOptions(alpha=alpha, beta=beta)
    ).probe_matrix

    localizers = [PLLLocalizer(), TomoLocalizer(), ScoreLocalizer(), OMPLocalizer()]
    metrics: Dict[str, List] = {loc.name: [] for loc in localizers}
    runtimes: Dict[str, List[float]] = {loc.name: [] for loc in localizers}

    streams = SeededStreams(seed)
    rng = streams.generator("scenarios")
    generator = FailureGenerator(topology, rng)
    for _ in range(trials):
        scenario = generator.generate(failures_per_trial)
        simulator = ProbeSimulator(topology, scenario, rng)
        observations = simulator.observe_probe_matrix(
            probe_matrix, ProbeConfig(probes_per_path=probes_per_path)
        )
        cleaned = preprocess_observations(probe_matrix, observations)
        for localizer in localizers:
            verdict = localizer.localize(probe_matrix, cleaned.observations)
            metrics[localizer.name].append(
                evaluate_localization(
                    scenario.bad_link_ids, verdict.suspected_links, probe_matrix.link_ids
                )
            )
            runtimes[localizer.name].append(verdict.elapsed_seconds)

    table = ExperimentTable(
        title=(
            f"PLL vs baselines (measured, Fattree({radix}), alpha={alpha}, beta={beta}, "
            f"{failures_per_trial} failures/trial)"
        ),
        columns=["algorithm", "accuracy_pct", "false_positive_pct", "mean_runtime_ms"],
    )
    # Wall-clock column: excluded from the deterministic view so sweeps stay
    # byte-comparable across machines and jobs counts.
    table.metadata["informational_columns"] = ["mean_runtime_ms"]
    for localizer in localizers:
        aggregated = aggregate_metrics(metrics[localizer.name])
        table.add_row(
            algorithm=localizer.name,
            accuracy_pct=100.0 * aggregated["accuracy"],
            false_positive_pct=100.0 * aggregated["false_positive_ratio"],
            mean_runtime_ms=1000.0 * float(np.mean(runtimes[localizer.name])),
        )
    table.add_note(
        "paper claim: same probe matrix -> PLL ~2% more accurate, ~2% fewer false positives, and an "
        "order of magnitude faster (sub-second on an 82,944-link DCN)."
    )
    return table


def paper_reference_notes() -> List[str]:
    return [
        "Given the same probe matrix, PLL achieves ~2% higher accuracy and ~2% lower false positives "
        "than Tomo / SCORE / OMP, and is about an order of magnitude faster.",
    ]


def main() -> None:  # pragma: no cover - CLI entry point
    for note in paper_reference_notes():
        print(f"paper: {note}")
    print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
