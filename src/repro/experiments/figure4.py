"""Figure 4 -- sensitivity to the probe sending frequency.

Four panels on the Fattree(4) testbed:

* (a) PLL accuracy and false-positive ratio vs. probes/second per pinger,
* (b) per-pinger CPU, memory and bandwidth overhead vs. probes/second,
* (c) mean RTT experienced by background workload traffic vs. probes/second,
* (d) RTT jitter of the workload vs. probes/second.

The reproduced claims: 10-15 probes/second already gives > 95% accuracy with a
< 3% false-positive ratio at ~100 Kbps / ~0.4% CPU / ~13 MB per pinger, and
probing leaves workload RTT and jitter essentially untouched until the
frequency gets very large.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..localization import aggregate_metrics
from ..monitor import ControllerConfig, DetectorSystem
from ..routing import enumerate_candidate_paths
from ..simulation import (
    FailureGenerator,
    LatencyModel,
    PingerResourceModel,
    SeededStreams,
    WorkloadConfig,
    WorkloadModel,
)
from ..topology import build_fattree
from .common import ExperimentTable

__all__ = ["run", "paper_reference_notes", "main", "DEFAULT_FREQUENCIES"]

DEFAULT_FREQUENCIES: Tuple[float, ...] = (1, 2, 5, 10, 15, 20, 30, 50)


def run(
    radix: int = 4,
    frequencies: Sequence[float] = DEFAULT_FREQUENCIES,
    trials_per_frequency: int = 12,
    seed: int = 44,
    alpha: int = 3,
    beta: int = 1,
) -> ExperimentTable:
    """Sweep the probing frequency and measure all four panels of Fig. 4."""
    topology = build_fattree(radix)
    table = ExperimentTable(
        title=f"Figure 4 (measured, Fattree({radix})) -- probing-frequency sensitivity",
        columns=[
            "probes_per_second",
            "accuracy_pct",
            "false_positive_pct",
            "cpu_pct",
            "memory_mb",
            "bandwidth_kbps",
            "workload_rtt_us",
            "workload_jitter_us",
        ],
    )

    resource_model = PingerResourceModel()
    latency_model = LatencyModel()
    # One --seed, independent named streams (no ad-hoc seed+k derivations):
    # every frequency replays identical probing/failure draws because
    # ``generator(name)`` always restarts the named stream at its origin.
    streams = SeededStreams(seed)
    workload_rng = streams.generator("workload")
    workload_paths = enumerate_candidate_paths(topology, ordered=False)
    workload = WorkloadModel(topology, workload_paths, workload_rng, WorkloadConfig())
    base_utilization = workload.link_utilization()

    for frequency in frequencies:
        rng = streams.generator("probing")
        system = DetectorSystem(
            topology,
            rng,
            ControllerConfig(alpha=alpha, beta=beta, probes_per_second=frequency),
        )
        cycle = system.run_controller_cycle()
        generator = FailureGenerator(topology, rng)
        metrics = []
        for _ in range(trials_per_frequency):
            outcome = system.run_window(generator.generate_single())
            metrics.append(outcome.metrics)
        aggregated = aggregate_metrics(metrics)

        # Panel (b): per-pinger overhead at this frequency.
        paths_per_pinger = int(
            np.mean([pl.num_paths for pl in cycle.pinglists.values()]) if cycle.pinglists else 0
        )
        usage = resource_model.usage(frequency, num_paths=paths_per_pinger)

        # Panels (c)/(d): workload RTT and jitter with probing load added.
        probe_matrix = cycle.probe_matrix
        num_pingers = max(cycle.num_pingers, 1)
        per_path_rate = (
            frequency * num_pingers / probe_matrix.num_paths if probe_matrix.num_paths else 0.0
        )
        utilization = latency_model.add_probe_load(
            base_utilization, probe_matrix.paths, per_path_rate
        )
        sample_paths = workload_paths[:: max(1, len(workload_paths) // 50)]
        rtt = latency_model.workload_rtt(
            sample_paths, utilization, streams.generator("workload-rtt")
        )

        table.add_row(
            probes_per_second=frequency,
            accuracy_pct=100.0 * aggregated["accuracy"],
            false_positive_pct=100.0 * aggregated["false_positive_ratio"],
            cpu_pct=usage.cpu_percent,
            memory_mb=usage.memory_mb,
            bandwidth_kbps=usage.bandwidth_kbps,
            workload_rtt_us=rtt.mean_rtt_us,
            workload_jitter_us=rtt.jitter_us,
        )

    table.add_note(
        "paper operating point: 10-15 probes/s -> >95% accuracy, <3% false positives, ~100 Kbps, "
        "~0.4% CPU, ~13 MB per pinger, with no visible RTT/jitter impact on the workload."
    )
    table.add_note(
        "CPU/memory columns come from the calibrated per-pinger resource model "
        "(repro.simulation.resources); bandwidth is exact arithmetic."
    )
    return table


def paper_reference_notes() -> List[str]:
    """The quantitative anchors the paper gives for Fig. 4 (it is a plot, not a table)."""
    return [
        "Fig. 4(a): accuracy rises and false positives fall with frequency; >95% accuracy and <3% FP at 10-15 pps.",
        "Fig. 4(b): ~100 Kbps bandwidth, ~0.4% CPU, ~13 MB memory per pinger at 10 pps, growing linearly.",
        "Fig. 4(c)/(d): workload RTT and jitter stay flat as probing frequency grows (only slight fluctuation).",
    ]


def main() -> None:  # pragma: no cover - CLI entry point
    for note in paper_reference_notes():
        print(f"paper: {note}")
    print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
