"""Table 2 -- PMC running time under the three speed-up optimisations.

The paper measures the construction time of a (2-coverage, 1-identifiability)
probe matrix on Fattree(12/24/72), VL2(20,12,20)/(40,24,40)/(140,120,100) and
BCube(4,2)/(8,2)/(8,4), comparing the strawman greedy against the greedy with
problem decomposition, lazy score updates and symmetry reduction added
cumulatively.

Paper-scale instances have up to 8.7e9 candidate paths, so the harness runs
the same sweep on scaled-down instances (the ratios between optimisation
levels are the reproduced quantity, not the absolute seconds) and prints the
paper's own rows next to the measured ones.  The strawman column is skipped
(reported as ``None``, the analogue of the paper's "> 24h") when the candidate
path count exceeds ``strawman_path_limit``.
"""

from __future__ import annotations

import time
from ..contracts import informational_wall
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import PMCOptions, construct_probe_matrix
from ..routing import RoutingMatrix, enumerate_candidate_paths
from ..topology import PathOrbits, Topology, build_bcube, build_fattree, build_vl2
from .common import ExperimentTable

__all__ = ["Table2Instance", "default_instances", "run", "paper_reference", "main"]


@dataclass(frozen=True)
class Table2Instance:
    """One topology row of the runtime sweep."""

    label: str
    build: Callable[[], Topology]


def default_instances(scale: str = "small") -> List[Table2Instance]:
    """Scaled-down stand-ins for the paper's giant fabrics.

    ``scale="tiny"`` finishes in well under a second (runner/parallelism
    tests); ``scale="small"`` finishes in a few seconds (unit-test friendly);
    ``scale="medium"`` takes a couple of minutes and shows the optimisation
    ratios more clearly.
    """
    if scale == "tiny":
        return [
            Table2Instance("Fattree(4)", lambda: build_fattree(4)),
            Table2Instance("BCube(4,1)", lambda: build_bcube(4, 1)),
        ]
    if scale == "small":
        return [
            Table2Instance("Fattree(4)", lambda: build_fattree(4)),
            Table2Instance("Fattree(6)", lambda: build_fattree(6)),
            Table2Instance("VL2(8,6,2)", lambda: build_vl2(8, 6, 2)),
            Table2Instance("BCube(4,1)", lambda: build_bcube(4, 1)),
        ]
    if scale == "medium":
        return [
            Table2Instance("Fattree(6)", lambda: build_fattree(6)),
            Table2Instance("Fattree(8)", lambda: build_fattree(8)),
            Table2Instance("VL2(12,8,2)", lambda: build_vl2(12, 8, 2)),
            Table2Instance("VL2(16,12,2)", lambda: build_vl2(16, 12, 2)),
            Table2Instance("BCube(4,2)", lambda: build_bcube(4, 2)),
            Table2Instance("BCube(6,1)", lambda: build_bcube(6, 1)),
        ]
    raise ValueError(f"unknown scale {scale!r}; use 'tiny', 'small' or 'medium'")


_OPTIMIZATION_LEVELS: Sequence[Tuple[str, Dict[str, bool]]] = (
    ("strawman", dict(use_decomposition=False, use_lazy_update=False, use_symmetry=False)),
    ("decomposition", dict(use_decomposition=True, use_lazy_update=False, use_symmetry=False)),
    ("lazy_update", dict(use_decomposition=True, use_lazy_update=True, use_symmetry=False)),
    ("symmetry", dict(use_decomposition=True, use_lazy_update=True, use_symmetry=True)),
)


@informational_wall("Table 2 runtime columns are informational; gates use counter columns")
def run(
    instances: Optional[Sequence[Table2Instance]] = None,
    alpha: int = 2,
    beta: int = 1,
    strawman_path_limit: int = 4000,
    eager_path_limit: int = 20000,
) -> ExperimentTable:
    """Measure PMC work and runtime per optimisation level on each instance.

    Per level the row carries two cells: ``<level>`` (wall-clock seconds,
    *informational* -- micro-run timings measure the CI box, not the
    algorithm) and ``<level>_evals`` (the deterministic greedy-evaluation
    counter from :meth:`~repro.core.PMCStats.cost_counters`, byte-identical
    across backends/machines).  The benchmark harness gates on the counters
    only.
    """
    instances = list(instances) if instances is not None else default_instances()
    table = ExperimentTable(
        title=(
            f"Table 2 (measured, scaled) -- PMC greedy evaluations "
            f"(+ informational seconds), alpha={alpha}, beta={beta}"
        ),
        columns=[
            "dcn",
            "nodes",
            "links",
            "candidate_paths",
            "strawman",
            "decomposition",
            "lazy_update",
            "symmetry",
            "strawman_evals",
            "decomposition_evals",
            "lazy_update_evals",
            "symmetry_evals",
            "selected_paths",
        ],
    )
    # The seconds cells are scheduler noise by design; everything else in a
    # row is deterministic (see ExperimentTable.deterministic_rows).
    table.metadata["informational_columns"] = [name for name, _ in _OPTIMIZATION_LEVELS]
    for instance in instances:
        topology = instance.build()
        paths = enumerate_candidate_paths(topology, ordered=False)
        routing_matrix = RoutingMatrix(topology, paths)
        orbits = PathOrbits.from_walks(topology, [p.nodes for p in paths])
        row: Dict[str, object] = {
            "dcn": instance.label,
            "nodes": len(topology.nodes),
            "links": len(topology.links),
            "candidate_paths": routing_matrix.num_paths,
        }
        selected_paths = None
        for level_name, flags in _OPTIMIZATION_LEVELS:
            needs_eager = not flags["use_lazy_update"]
            if level_name == "strawman" and routing_matrix.num_paths > strawman_path_limit:
                row[level_name] = None
                row[f"{level_name}_evals"] = None
                continue
            if needs_eager and routing_matrix.num_paths > eager_path_limit:
                row[level_name] = None
                row[f"{level_name}_evals"] = None
                continue
            options = PMCOptions(alpha=alpha, beta=beta, **flags)
            start = time.perf_counter()
            result = construct_probe_matrix(
                routing_matrix, options, orbits=orbits if flags["use_symmetry"] else None
            )
            row[level_name] = time.perf_counter() - start
            row[f"{level_name}_evals"] = result.stats.greedy_evaluations
            selected_paths = result.num_paths
        row["selected_paths"] = selected_paths
        table.rows.append(row)
    table.add_note(
        "instances are scaled down from the paper's (Fattree(12..72), VL2(20..140), BCube(4..8,4)); "
        "the reproduced quantity is the work ordering strawman > decomposition > lazy/symmetry, "
        "measured in greedy evaluations (the *_evals columns)."
    )
    table.add_note(
        "the per-level seconds columns are informational only (micro-run wall clock is scheduler "
        "noise); gates assert on the deterministic *_evals counters, which are byte-identical "
        "across REPRO_BACKEND backends and machines."
    )
    table.add_note(
        "cells reported as '-' correspond to the paper's '> 24h' entries: the configuration was "
        "skipped because the candidate path count exceeds the limit for the un-optimised greedy."
    )
    return table


def paper_reference() -> ExperimentTable:
    """The rows of Table 2 as printed in the paper (for side-by-side comparison)."""
    table = ExperimentTable(
        title="Table 2 (paper) -- PMC running time in seconds, alpha=2, beta=1",
        columns=[
            "dcn",
            "nodes",
            "links",
            "original_paths",
            "strawman",
            "decomposition",
            "lazy_update",
            "symmetry",
        ],
    )
    rows = [
        ("Fattree(12)", 612, 1296, 184032, 231.458, 5.216, 0.506, 0.126),
        ("Fattree(24)", 4176, 10368, 11902464, None, 1381.226, 23.254, 0.280),
        ("Fattree(72)", 99792, 279936, 8703770112, None, None, None, 17.054),
        ("VL2(20,12,20)", 1282, 1440, 70800, 22.030, 23.126, 0.77, 0.253),
        ("VL2(40,24,40)", 9884, 10560, 4588800, 7387.412, 7470.476, 39.028, 1.404),
        ("VL2(140,120,100)", 424390, 436800, 4938024000, None, None, None, 85.567),
        ("BCube(4,2)", 112, 192, 12096, 4.871, 4.936, 0.227, 0.117),
        ("BCube(8,2)", 704, 1536, 784896, 4050.776, 4390.168, 9.854, 0.220),
        ("BCube(8,4)", 53248, 163840, 5368545280, None, None, None, 69.778),
    ]
    for dcn, nodes, links, original, strawman, decomp, lazy, symmetry in rows:
        table.add_row(
            dcn=dcn,
            nodes=nodes,
            links=links,
            original_paths=original,
            strawman=strawman,
            decomposition=decomp,
            lazy_update=lazy,
            symmetry=symmetry,
        )
    table.add_note("'-' cells were reported as '> 24h' in the paper.")
    return table


def main() -> None:  # pragma: no cover - CLI entry point
    paper_reference().print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
