"""Figure 6 -- accuracy and false positives with multiple concurrent failures.

Same three systems as Fig. 5, but the probing budget is fixed (the paper uses
5,850 probes per minute for everyone) and the number of concurrent failures
grows.  The reproduced claim: deTector's accuracy stays high and its false
positives stay low as failures multiply, while both baselines degrade.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import BaselineConfig, NetNORADSystem, PingmeshSystem
from ..localization import aggregate_metrics, evaluate_localization
from ..monitor import ControllerConfig, DetectorSystem
from ..simulation import FailureGenerator, SeededStreams
from ..topology import build_fattree
from .common import ExperimentTable

__all__ = ["run", "paper_reference_notes", "main", "DEFAULT_FAILURE_COUNTS"]

DEFAULT_FAILURE_COUNTS: Tuple[int, ...] = (1, 2, 3, 4, 5)


def run(
    radix: int = 4,
    probe_budget_per_minute: int = 5850,
    failure_counts: Sequence[int] = DEFAULT_FAILURE_COUNTS,
    trials: int = 12,
    seed: int = 66,
) -> ExperimentTable:
    """Fix the probe budget and sweep the number of concurrent failures.

    The budget covers *all* probes a system sends -- detection plus any
    post-alarm localization round -- exactly as the paper accounts them.  The
    baselines' detection rate is therefore calibrated down so that their total
    (detection + Netbouncer/fbtracert) probes stay within the budget, which is
    precisely the disadvantage of separating detection from localization.
    """
    topology = build_fattree(radix)
    link_ids = [link.link_id for link in topology.switch_links]
    table = ExperimentTable(
        title=(
            f"Figure 6 (measured, Fattree({radix})) -- multiple failures at a fixed budget of "
            f"~{probe_budget_per_minute} probes/minute"
        ),
        columns=["system", "failed_links", "accuracy_pct", "false_positive_pct", "probes_per_minute"],
    )
    per_window_budget = probe_budget_per_minute / 2.0  # 30-second windows

    # One --seed, independent named streams.  The same failure scenarios are
    # replayed for every system so the comparison is not confounded by
    # different failure draws.
    streams = SeededStreams(seed)
    scenario_rng = streams.generator("scenarios")
    scenario_generator = FailureGenerator(topology, scenario_rng)
    scenarios: Dict[int, List] = {
        count: [scenario_generator.generate(count) for _ in range(trials)]
        for count in failure_counts
    }

    # deTector: translate the budget into a per-pinger sending frequency.
    probe_rng = streams.generator("sizing")
    sizing_system = DetectorSystem(topology, probe_rng, ControllerConfig(alpha=3, beta=1))
    sizing_cycle = sizing_system.run_controller_cycle()
    num_pingers = max(sizing_cycle.num_pingers, 1)
    window_seconds = sizing_cycle.pinglists[next(iter(sizing_cycle.pinglists))].report_interval_seconds
    detector_frequency = max(1.0, per_window_budget / (num_pingers * window_seconds))

    for count in failure_counts:
        # Placement-independent per-count stream (replaces the old
        # seed + count arithmetic, which collided across experiments).
        rng = streams.generator(f"detector/failures={count}")
        system = DetectorSystem(
            topology,
            rng,
            ControllerConfig(
                alpha=3,
                beta=1,
                probes_per_second=detector_frequency,
                loss_confirmation_probes=0,  # exact budget accounting
            ),
        )
        system.run_controller_cycle()
        metrics = []
        probes = []
        for scenario in scenarios[count]:
            outcome = system.run_window(scenario)
            metrics.append(outcome.metrics)
            probes.append(outcome.probes_sent)
        aggregated = aggregate_metrics(metrics)
        table.add_row(
            system="deTector",
            failed_links=count,
            accuracy_pct=100.0 * aggregated["accuracy"],
            false_positive_pct=100.0 * aggregated["false_positive_ratio"],
            probes_per_minute=float(np.mean(probes)) * 2.0,
        )

    # Baselines: split the same window budget between detection and the
    # post-alarm localization round (detection_share below), and enforce the
    # total with a hard cap -- once it is spent, remaining paths go untraced.
    for name, factory in (
        ("Pingmesh+Netbouncer", PingmeshSystem),
        ("NetNORAD+fbtracert", NetNORADSystem),
    ):
        probes_per_pair = _detection_probes_per_pair(
            factory, topology, per_window_budget, detection_share=0.6,
            rng=streams.generator("sizing"),
        )
        for count in failure_counts:
            rng = streams.generator(f"{name}/failures={count}")
            baseline = factory(
                topology,
                rng,
                BaselineConfig(
                    probes_per_pair=probes_per_pair,
                    probe_budget_per_window=int(per_window_budget),
                ),
            )
            metrics = []
            probes = []
            for scenario in scenarios[count]:
                outcome = baseline.run_window(scenario)
                metrics.append(
                    evaluate_localization(
                        scenario.bad_link_ids, outcome.suspected_links, link_ids
                    )
                )
                probes.append(outcome.total_probes)
            aggregated = aggregate_metrics(metrics)
            table.add_row(
                system=name,
                failed_links=count,
                accuracy_pct=100.0 * aggregated["accuracy"],
                false_positive_pct=100.0 * aggregated["false_positive_ratio"],
                probes_per_minute=float(np.mean(probes)) * 2.0,
            )

    table.add_note(
        "the budget covers detection plus localization probes for every system; the baselines' "
        "detection rate is calibrated down to make room for their post-alarm round, which is how the "
        "paper accounts probe overhead."
    )
    table.add_note("all systems replay identical failure scenarios per failure count.")
    return table


def _detection_probes_per_pair(
    factory,
    topology,
    per_window_budget: float,
    detection_share: float,
    rng: np.random.Generator,
) -> int:
    """Detection probes per pair such that detection uses ``detection_share`` of the budget.

    The remainder of the budget is reserved for the post-alarm localization
    round; the hard ``probe_budget_per_window`` cap then guarantees the system
    never exceeds the overall budget regardless of how many pairs trip.
    """
    sizing_baseline = factory(topology, rng, BaselineConfig())
    num_pairs = max(len(sizing_baseline.monitored_pairs()), 1)
    return max(1, int(per_window_budget * detection_share // num_pairs))


def paper_reference_notes() -> List[str]:
    """The qualitative anchors for Fig. 6 (a plot in the paper)."""
    return [
        "At a fixed 5,850 probes/minute, deTector keeps much higher accuracy and lower false positives "
        "than Pingmesh and NetNORAD as the number of concurrent failures grows.",
        "deTector also detects and localizes ~30 seconds faster because it needs no extra localization round.",
    ]


def main() -> None:  # pragma: no cover - CLI entry point
    for note in paper_reference_notes():
        print(f"paper: {note}")
    print()
    run().print()


if __name__ == "__main__":  # pragma: no cover
    main()
