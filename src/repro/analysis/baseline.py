"""Baseline files: grandfathered findings ``repro lint`` tolerates.

The baseline is a checked-in JSON list of finding fingerprints.  Findings
that match an entry are filtered from the report; entries that match nothing
are *stale* and surface as REP000 findings so a fixed violation cannot leave
a dangling exemption behind.  The acceptance bar for this repo keeps the
baseline empty for REP001/REP004/REP005/REP007.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

from .findings import Finding

__all__ = ["load_baseline", "save_baseline", "apply_baseline"]

_VERSION = 1


def load_baseline(path: Path) -> List[Tuple[str, str, str, str]]:
    """Fingerprints from *path*; an absent file is an empty baseline."""
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    entries = payload.get("findings", [])
    return [
        (str(e["rule"]), str(e["path"]), str(e["context"]), str(e["message"]))
        for e in entries
    ]


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the fingerprints of *findings* as the new baseline (sorted)."""
    entries = sorted(
        {f.fingerprint() for f in findings if f.rule != "REP000"}
    )
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule": rule, "path": fpath, "context": context, "message": message}
            for rule, fpath, context, message in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    findings: List[Finding], baseline: List[Tuple[str, str, str, str]], baseline_path: str
) -> List[Finding]:
    """Filter baselined findings; flag stale baseline entries as REP000."""
    remaining: List[Finding] = []
    unused = {entry: True for entry in baseline}
    for finding in findings:
        fp = finding.fingerprint()
        if fp in unused:
            unused[fp] = False
        else:
            remaining.append(finding)
    for (rule, fpath, context, message), is_unused in unused.items():
        if is_unused:
            remaining.append(
                Finding(
                    rule="REP000",
                    path=baseline_path,
                    line=1,
                    col=1,
                    message=(
                        f"stale baseline entry: no current {rule} finding matches "
                        f"{fpath} [{context}] {message!r} -- remove it"
                    ),
                    context="<baseline>",
                )
            )
    return remaining
