"""The REP rule set: AST visitors encoding the repo's written invariants.

Each rule is small and single-purpose; they share the import-resolution and
scope-tracking machinery at the top of this module.  Rules REP001-REP003 and
REP005-REP007 are per-file; REP004 (trace calls reachable from pool workers)
needs the project-wide call graph collected in :mod:`repro.analysis.engine`.

Rule catalogue (see ``docs/INVARIANTS.md`` for rationale and the runtime-test
counterpart of each):

========  ==================================================================
REP001    RNG discipline: no bare ``random.*`` / ``np.random.default_rng``
          outside ``simulation/rng.py``; no ``seed + k`` arithmetic feeding
          an RNG anywhere.
REP002    Wall-clock discipline: ``time.time``/``perf_counter``/
          ``datetime.now`` only inside ``@informational_wall`` functions.
REP003    Pool-boundary pickle safety: no lambdas/local defs passed to
          ``pool_map``; ``@pool_payload`` classes must be slotted.
REP004    Trace discipline: no tracing span/record reachable from
          worker-executed functions.
REP005    Env-seam discipline: ``REPRO_*`` reads only in the designated
          resolver modules.
REP006    Metrics double-booking: a series key must not be both a
          ``register_source`` provider output and a direct counter.
REP007    Layer DAG: module-level imports must follow the layering
          (``core`` never imports ``engine``/``monitor``/``cli``/``obs``).
REP008    Shared-memory lifecycle: every ``SharedMemory(...)`` /
          ``.share()`` acquisition must be lifecycle-paired -- used as a
          context manager, explicitly ``close()``/``unlink()``ed, or
          returned to a caller that owns it.
========  ==================================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = [
    "ImportMap",
    "ModuleInfo",
    "FunctionInfo",
    "collect_module_info",
    "per_file_findings",
    "LAYER_ALLOWED",
    "RESOLVER_MODULES",
    "RNG_EXEMPT_SUFFIXES",
]

# ---------------------------------------------------------------------------
# rule configuration
# ---------------------------------------------------------------------------

#: Modules allowed to construct raw RNGs (the one blessed wrapper).
RNG_EXEMPT_SUFFIXES: Tuple[str, ...] = ("simulation/rng.py",)

#: Modules allowed to read ``REPRO_*`` environment variables (the seams).
RESOLVER_MODULES: Tuple[str, ...] = (
    "src/repro/parallel.py",
    "src/repro/core/incidence.py",
    "src/repro/obs/__init__.py",
)

_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "random.Random",
}

_WALL_CALLS = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Layer DAG: which repro layers each layer may import at module level.
#: Function-local and ``TYPE_CHECKING``-guarded imports are the sanctioned
#: upward-reference patterns and are not checked.
_EVERYTHING = {
    "contracts", "topology", "obs", "parallel", "core", "routing",
    "localization", "simulation", "baselines", "monitor", "engine",
    "experiments", "analysis", "cli", "repro",
}
LAYER_ALLOWED: Dict[str, Set[str]] = {
    "contracts": set(),
    "topology": set(),
    "obs": {"contracts"},
    "parallel": {"contracts"},
    "analysis": {"contracts"},
    "core": {"contracts", "topology", "parallel"},
    "routing": {"contracts", "topology", "core"},
    "localization": {"contracts", "topology", "core", "routing"},
    "simulation": {"contracts", "topology", "routing", "core", "localization"},
    "baselines": {"contracts", "topology", "core", "routing", "simulation", "localization"},
    "monitor": {
        "contracts", "topology", "core", "routing", "simulation",
        "localization", "obs", "parallel",
    },
    "engine": {
        "contracts", "topology", "core", "routing", "simulation",
        "localization", "obs", "parallel", "monitor",
    },
    "experiments": {
        "contracts", "topology", "core", "routing", "simulation",
        "localization", "obs", "parallel", "monitor", "engine", "baselines",
    },
    "cli": set(_EVERYTHING),
    "repro": set(_EVERYTHING),  # the package root re-exports the public API
}


# ---------------------------------------------------------------------------
# shared machinery: imports, dotted-name resolution, scopes
# ---------------------------------------------------------------------------

@dataclass
class ImportMap:
    """What each local name means, judged from the module's import statements."""

    #: local alias -> dotted module ("np" -> "numpy", "_wall" -> "time")
    aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, original name) for ``from m import n``
    members: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def resolve(self, node: ast.AST) -> Tuple[Optional[str], bool]:
        """(dotted path, import-backed?) for a Name/Attribute chain.

        ``np.random.default_rng`` -> ("numpy.random.default_rng", True);
        an unresolvable head returns the raw dotted text with False.
        """
        raw = _dotted_text(node)
        if raw is None:
            return None, False
        head, _, rest = raw.partition(".")
        if head in self.members:
            mod, orig = self.members[head]
            base = f"{mod}.{orig}"
        elif head in self.aliases:
            base = self.aliases[head]
        else:
            return raw, False
        return (f"{base}.{rest}" if rest else base), True


def _dotted_text(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_text(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _resolve_relative(module: str, is_package: bool, target: Optional[str], level: int) -> str:
    """Absolute module named by ``from <target> import ...`` at *level* dots."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: max(len(parts) - (level - 1), 0)]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def build_import_map(tree: ast.AST, module: str, is_package: bool) -> ImportMap:
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports.aliases[alias.asname] = alias.name
                else:
                    head = alias.name.partition(".")[0]
                    imports.aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            source = _resolve_relative(module, is_package, node.module, node.level)
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports.members[alias.asname or alias.name] = (source, alias.name)
    return imports


def _decorator_is(node: ast.AST, suffix: str) -> bool:
    """Does decorator *node* (possibly a Call) name ``...<suffix>``?"""
    target = node.func if isinstance(node, ast.Call) else node
    text = _dotted_text(target)
    return text is not None and (text == suffix or text.endswith("." + suffix))


class _ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing def/class stack."""

    def __init__(self) -> None:
        self.scope: List[ast.AST] = []

    def qualname(self) -> str:
        names = [getattr(node, "name", "<lambda>") for node in self.scope]
        return ".".join(names) if names else "<module>"

    def _enter(self, node: ast.AST) -> None:
        self.scope.append(node)
        self.generic_visit(node)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node)

    def enclosing_informational_wall(self) -> bool:
        for node in self.scope:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(_decorator_is(d, "informational_wall") for d in node.decorator_list):
                    return True
        return False


def _contains_seed_name(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and "seed" in sub.id.lower()
        for sub in ast.walk(node)
    )


# ---------------------------------------------------------------------------
# per-file module info (pass 1: feeds REP004's project call graph)
# ---------------------------------------------------------------------------

@dataclass
class FunctionInfo:
    """A module-level function: whom it calls, where it traces."""

    module: str
    name: str
    path: str
    calls: Set[Tuple[str, str]] = field(default_factory=set)
    trace_sites: List[Tuple[int, int, str]] = field(default_factory=list)


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one parsed file."""

    path: str  # repo-relative posix
    module: str  # dotted module name ("repro.core.pmc", "tests.test_obs")
    is_package: bool
    tree: ast.Module
    source: str
    imports: ImportMap
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: resolved (module, name) targets handed to pool_map as fn/initializer
    pool_roots: List[Tuple[str, str, int]] = field(default_factory=list)


def _is_trace_call(resolved: Optional[str], raw: Optional[str]) -> Optional[str]:
    """The trace entry point named by a call, if any."""
    for text in (resolved, raw):
        if not text:
            continue
        last = text.rsplit(".", 1)[-1]
        if text.endswith("tracing.span") or text.endswith("tracing.record"):
            return text
        if last in ("trace_span", "trace_record"):
            return text
    return None


def _call_target(
    func: ast.AST, info: "ModuleInfo"
) -> Optional[Tuple[str, str]]:
    """Resolve a call/reference to a (module, function) vertex if possible."""
    if isinstance(func, ast.Name):
        name = func.id
        if name in info.functions:
            return (info.module, name)
        if name in info.imports.members:
            mod, orig = info.imports.members[name]
            return (mod, orig)
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        head = func.value.id
        if head in info.imports.aliases:
            return (info.imports.aliases[head], func.attr)
        if head in info.imports.members:
            mod, orig = info.imports.members[head]
            return (f"{mod}.{orig}", func.attr)
    return None


def collect_module_info(path: str, module: str, is_package: bool, source: str) -> ModuleInfo:
    """Parse *source* and build the pass-1 view (raises SyntaxError upward)."""
    tree = ast.parse(source, filename=path)
    imports = build_import_map(tree, module, is_package)
    info = ModuleInfo(
        path=path, module=module, is_package=is_package,
        tree=tree, source=source, imports=imports,
    )
    # Register module-level function names first so intra-module Name calls
    # resolve regardless of definition order.
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                module=module, name=node.name, path=path
            )
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        entry = info.functions[node.name]
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            resolved, _ = imports.resolve(sub.func)
            trace = _is_trace_call(resolved, _dotted_text(sub.func))
            if trace is not None:
                entry.trace_sites.append((sub.lineno, sub.col_offset + 1, trace))
            target = _call_target(sub.func, info)
            if target is not None:
                entry.calls.add(target)
    # pool_map roots (fn arg + initializer kwarg), wherever they occur.
    for sub in ast.walk(tree):
        if not isinstance(sub, ast.Call):
            continue
        resolved, _ = imports.resolve(sub.func)
        raw = _dotted_text(sub.func)
        if not any(
            text == "pool_map" or text.endswith(".pool_map")
            for text in (resolved, raw) if text
        ):
            continue
        candidates: List[ast.AST] = []
        if sub.args:
            candidates.append(sub.args[0])
        for keyword in sub.keywords:
            if keyword.arg == "initializer":
                candidates.append(keyword.value)
        for candidate in candidates:
            target = _call_target(candidate, info)
            if target is not None:
                info.pool_roots.append((target[0], target[1], sub.lineno))
    return info


# ---------------------------------------------------------------------------
# REP001 -- RNG discipline
# ---------------------------------------------------------------------------

class _Rep001(_ScopedVisitor):
    def __init__(self, info: ModuleInfo, findings: List[Finding]):
        super().__init__()
        self.info = info
        self.findings = findings
        self.full_check = info.path.startswith("src/") and not info.path.endswith(
            RNG_EXEMPT_SUFFIXES
        )

    def visit_Call(self, node: ast.Call) -> None:
        resolved, backed = self.info.imports.resolve(node.func)
        is_rng = backed and resolved in _RNG_CONSTRUCTORS
        is_random_mod = (
            backed
            and resolved is not None
            and resolved.startswith("random.")
            and resolved.count(".") == 1
        )
        if (is_rng or is_random_mod) and self.full_check:
            self.findings.append(
                Finding(
                    rule="REP001",
                    path=self.info.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"bare RNG construction/use {resolved!r}: route randomness "
                        "through simulation.rng.SeededStreams named streams"
                    ),
                    context=self.qualname(),
                )
            )
        # ``seed + k`` arithmetic feeding an RNG or a stream family is the
        # placement-dependent pattern PR 4 eradicated -- flagged everywhere,
        # including tests and benchmarks.
        raw = _dotted_text(node.func) or ""
        feeds_rng = (
            is_rng
            or raw.endswith("SeededStreams")
            or raw.rsplit(".", 1)[-1] in ("spawn_seed", "child", "generator", "pyrandom")
        )
        if feeds_rng:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.BinOp) and _contains_seed_name(arg):
                    self.findings.append(
                        Finding(
                            rule="REP001",
                            path=self.info.path,
                            line=arg.lineno,
                            col=arg.col_offset + 1,
                            message=(
                                "seed arithmetic feeding an RNG is placement-dependent; "
                                "use SeededStreams named streams / spawn_seed instead"
                            ),
                            context=self.qualname(),
                        )
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP002 -- wall-clock discipline
# ---------------------------------------------------------------------------

class _Rep002(_ScopedVisitor):
    def __init__(self, info: ModuleInfo, findings: List[Finding]):
        super().__init__()
        self.info = info
        self.findings = findings

    def visit_Call(self, node: ast.Call) -> None:
        resolved, backed = self.info.imports.resolve(node.func)
        if backed and resolved in _WALL_CALLS and not self.enclosing_informational_wall():
            self.findings.append(
                Finding(
                    rule="REP002",
                    path=self.info.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"wall-clock read {resolved!r} outside an "
                        "@informational_wall function: wall time must only feed "
                        "informational outputs, never deterministic gates"
                    ),
                    context=self.qualname(),
                )
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP003 -- pool-boundary pickle safety
# ---------------------------------------------------------------------------

class _Rep003(_ScopedVisitor):
    def __init__(self, info: ModuleInfo, findings: List[Finding]):
        super().__init__()
        self.info = info
        self.findings = findings
        self._local_defs: List[Set[str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        nested = {
            sub.name
            for sub in ast.walk(node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node
        }
        self._local_defs.append(nested)
        self._enter(node)
        self._local_defs.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(_decorator_is(d, "pool_payload") for d in node.decorator_list):
            if not self._class_is_slotted(node):
                self.findings.append(
                    Finding(
                        rule="REP003",
                        path=self.info.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            f"@pool_payload class {node.name!r} is not slotted: "
                            "declare __slots__ or @dataclass(slots=True) so its "
                            "pickled form stays plain data"
                        ),
                        context=self.qualname(),
                    )
                )
        self._enter(node)

    @staticmethod
    def _class_is_slotted(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call) and _decorator_is(decorator, "dataclass"):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        for stmt in node.body:
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        resolved, _ = self.info.imports.resolve(node.func)
        raw = _dotted_text(node.func)
        if any(
            text == "pool_map" or text.endswith(".pool_map")
            for text in (resolved, raw) if text
        ):
            candidates: List[Tuple[str, ast.AST]] = []
            if node.args:
                candidates.append(("fn", node.args[0]))
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    candidates.append(("initializer", keyword.value))
            for role, candidate in candidates:
                problem: Optional[str] = None
                if isinstance(candidate, ast.Lambda):
                    problem = "a lambda"
                elif isinstance(candidate, ast.Name) and any(
                    candidate.id in names for names in self._local_defs
                ):
                    problem = f"locally-defined function {candidate.id!r}"
                if problem is not None:
                    self.findings.append(
                        Finding(
                            rule="REP003",
                            path=self.info.path,
                            line=candidate.lineno,
                            col=candidate.col_offset + 1,
                            message=(
                                f"pool_map {role} is {problem}: only module-level "
                                "functions pickle across the pool boundary"
                            ),
                            context=self.qualname(),
                        )
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP005 -- env-seam discipline
# ---------------------------------------------------------------------------

class _Rep005(_ScopedVisitor):
    def __init__(self, info: ModuleInfo, findings: List[Finding]):
        super().__init__()
        self.info = info
        self.findings = findings
        self.exempt = info.path in RESOLVER_MODULES

    def _flag(self, node: ast.AST, key: str) -> None:
        self.findings.append(
            Finding(
                rule="REP005",
                path=self.info.path,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"read of environment variable {key!r} outside the designated "
                    "resolver modules (parallel.py, core/incidence.py, obs/__init__.py)"
                ),
                context=self.qualname(),
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        if not self.exempt:
            resolved, backed = self.info.imports.resolve(node.func)
            if backed and resolved in ("os.getenv", "os.environ.get") and node.args:
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and first.value.startswith("REPRO_")
                ):
                    self._flag(node, first.value)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not self.exempt and isinstance(node.ctx, ast.Load):
            resolved, backed = self.info.imports.resolve(node.value)
            if backed and resolved == "os.environ":
                key = node.slice
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value.startswith("REPRO_")
                ):
                    self._flag(node, key.value)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# REP006 -- metrics double-booking
# ---------------------------------------------------------------------------

class _Rep006(_ScopedVisitor):
    """A series key must not be both a pull-source output and a direct metric.

    Statically visible collisions only: provider dict-literal keys (from a
    lambda or inline dict) vs. ``.counter("k")`` / ``.gauge`` /
    ``.histogram`` literals *within the same enclosing function* -- distinct
    functions typically act on distinct registries, so a wider scope drowns
    the rule in false positives.  The registry *sums* colliding keys at
    snapshot time, which silently double-books work attribution.
    """

    def __init__(self, info: ModuleInfo, findings: List[Finding]):
        super().__init__()
        self.info = info
        self.findings = findings
        #: enclosing qualname -> {series key: register line}
        self.source_keys: Dict[str, Dict[str, int]] = {}
        self.metric_sites: List[Tuple[str, int, int, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "register_source" and len(node.args) >= 2:
                self._collect_provider_keys(node.args[1], node.lineno)
            elif func.attr in ("counter", "gauge", "histogram") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    self.metric_sites.append(
                        (first.value, node.lineno, node.col_offset + 1, self.qualname())
                    )
        self.generic_visit(node)

    def _collect_provider_keys(self, provider: ast.AST, lineno: int) -> None:
        body = provider.body if isinstance(provider, ast.Lambda) else provider
        if isinstance(body, ast.Dict):
            scope = self.source_keys.setdefault(self.qualname(), {})
            for key in body.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    scope.setdefault(key.value, lineno)

    def finish(self) -> None:
        for name, line, col, context in self.metric_sites:
            scope = self.source_keys.get(context, {})
            if name in scope:
                self.findings.append(
                    Finding(
                        rule="REP006",
                        path=self.info.path,
                        line=line,
                        col=col,
                        message=(
                            f"series {name!r} is double-booked: produced by a "
                            f"register_source provider (line {scope[name]}) "
                            "and mutated as a direct metric -- snapshot sums both"
                        ),
                        context=context,
                    )
                )


# ---------------------------------------------------------------------------
# REP007 -- layer DAG
# ---------------------------------------------------------------------------

def _layer_of(module: str) -> Optional[str]:
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "repro"
    head = parts[1]
    return head if head in _EVERYTHING else None


def _rep007(info: ModuleInfo, findings: List[Finding]) -> None:
    layer = _layer_of(info.module)
    if layer is None or not info.path.startswith("src/"):
        return
    allowed = LAYER_ALLOWED.get(layer, set())

    def check_statements(statements: Sequence[ast.stmt]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.If):
                test = _dotted_text(stmt.test) or ""
                if test.endswith("TYPE_CHECKING"):
                    continue  # sanctioned typing-only upward reference
                check_statements(stmt.body)
                check_statements(stmt.orelse)
                continue
            if isinstance(stmt, ast.Try):
                check_statements(stmt.body)
                for handler in stmt.handlers:
                    check_statements(handler.body)
                check_statements(stmt.orelse)
                check_statements(stmt.finalbody)
                continue
            targets: List[str] = []
            if isinstance(stmt, ast.Import):
                targets = [alias.name for alias in stmt.names]
            elif isinstance(stmt, ast.ImportFrom):
                source = _resolve_relative(
                    info.module, info.is_package, stmt.module, stmt.level
                )
                if source == "repro":
                    # ``from . import contracts`` style: each name is a module
                    targets = [f"repro.{alias.name}" for alias in stmt.names]
                else:
                    targets = [source]
            for target in targets:
                target_layer = _layer_of(target)
                if target_layer is None or target_layer == layer:
                    continue
                if target_layer not in allowed:
                    findings.append(
                        Finding(
                            rule="REP007",
                            path=info.path,
                            line=stmt.lineno,
                            col=stmt.col_offset + 1,
                            message=(
                                f"layer {layer!r} must not import layer "
                                f"{target_layer!r} at module level (layer DAG); "
                                "use the contracts seam or a function-local import"
                            ),
                            context="<module>",
                        )
                    )

    check_statements(info.tree.body)


# ---------------------------------------------------------------------------
# REP008 -- shared-memory lifecycle pairing
# ---------------------------------------------------------------------------

_SHM_RELEASE_CALLS = ("close", "unlink")


def _is_shm_acquisition(node: ast.Call, info: ModuleInfo) -> bool:
    """Does this call acquire a shared-memory resource?

    Two acquisition shapes exist in the repo: constructing a
    ``multiprocessing.shared_memory.SharedMemory`` segment, and exporting an
    incidence index with the zero-argument ``.share()`` method.
    """
    resolved, _ = info.imports.resolve(node.func)
    raw = _dotted_text(node.func)
    for text in (resolved, raw):
        if text and (text == "SharedMemory" or text.endswith(".SharedMemory")):
            return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "share"
        and not node.args
        and not node.keywords
    )


def _rep008(info: ModuleInfo, findings: List[Finding]) -> None:
    parents: Dict[ast.AST, ast.AST] = {}
    enclosing: Dict[ast.AST, Optional[ast.AST]] = {}

    def index_tree(node: ast.AST, function: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            child_fn = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else function
            )
            enclosing[child] = child_fn
            index_tree(child, child_fn)

    index_tree(info.tree, None)

    def scope_of(node: ast.AST) -> ast.AST:
        return enclosing.get(node) or info.tree

    def name_is_released(scope: ast.AST, name: str) -> bool:
        """``name.close()``/``name.unlink()`` or ``return name`` in scope?"""
        for sub in ast.walk(scope):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _SHM_RELEASE_CALLS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == name
            ):
                return True
            if (
                isinstance(sub, ast.Return)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == name
            ):
                return True
        return False

    def attribute_is_released(attr: str) -> bool:
        """Does the *module* release ``<anything>.<attr>`` somewhere?

        Attribute-held resources (``self._shm = SharedMemory(...)``) are
        released by a sibling method, so the pairing check widens to the
        whole file.
        """
        for sub in ast.walk(info.tree):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _SHM_RELEASE_CALLS
                and isinstance(sub.func.value, ast.Attribute)
                and sub.func.value.attr == attr
            ):
                return True
        return False

    def qualname_of(node: ast.AST) -> str:
        names: List[str] = []
        cursor: Optional[ast.AST] = node
        while cursor is not None and cursor is not info.tree:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.append(cursor.name)
            cursor = parents.get(cursor)
        return ".".join(reversed(names)) if names else "<module>"

    for node in ast.walk(info.tree):
        if not (isinstance(node, ast.Call) and _is_shm_acquisition(node, info)):
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.withitem):
            continue  # context-managed: lifecycle is structural
        if isinstance(parent, ast.Return):
            continue  # ownership handed to the caller
        paired = False
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
        elif isinstance(parent, ast.AnnAssign):
            target = parent.target
        else:
            target = None
        if isinstance(target, ast.Name):
            paired = name_is_released(scope_of(node), target.id)
        elif isinstance(target, ast.Attribute):
            paired = attribute_is_released(target.attr)
        if not paired:
            findings.append(
                Finding(
                    rule="REP008",
                    path=info.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        "shared-memory acquisition is not lifecycle-paired: "
                        "use a context manager, call close()/unlink() on it, "
                        "or return it to an owner that does"
                    ),
                    context=qualname_of(node),
                )
            )


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def per_file_findings(info: ModuleInfo) -> List[Finding]:
    """Run every per-file rule over one module (REP004 runs project-wide)."""
    findings: List[Finding] = []
    for visitor_cls in (_Rep001, _Rep002, _Rep003, _Rep005):
        visitor = visitor_cls(info, findings)
        visitor.visit(info.tree)
    rep006 = _Rep006(info, findings)
    rep006.visit(info.tree)
    rep006.finish()
    _rep007(info, findings)
    _rep008(info, findings)
    return findings
