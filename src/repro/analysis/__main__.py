"""``python -m repro.analysis`` -- run the static invariant analyzer."""

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main())
