"""Finding records and the suppression grammar of ``repro lint``.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* deliberately omits the line number -- baselines must survive
unrelated edits above a grandfathered violation -- and instead keys on the
enclosing definition's qualified name, which moves with the code.

Inline suppressions use the comment form::

    risky_call()  # repro: allow[REP002] -- measured value is informational

The reason after ``--`` is mandatory: a reasonless ``allow`` is itself a
REP000 finding and suppresses nothing, so "shut the linter up" can never be
silent.  A suppression on its own line covers the following line as well.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = [
    "Finding",
    "SuppressionIndex",
    "parse_suppressions",
    "RULE_IDS",
]

#: Every rule id the analyzer can emit.  REP000 is reserved for analyzer
#: infrastructure diagnostics (parse errors, malformed suppressions, stale
#: baseline entries) and cannot be suppressed or baselined.
RULE_IDS: Tuple[str, ...] = (
    "REP000",
    "REP001",
    "REP002",
    "REP003",
    "REP004",
    "REP005",
    "REP006",
    "REP007",
    "REP008",
)

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>REP\d{3})\]\s*(?:--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str
    context: str = "<module>"  # qualified name of the enclosing def/class

    def fingerprint(self) -> Tuple[str, str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.context, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "context": self.context,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message} [{self.context}]"


@dataclass
class SuppressionIndex:
    """Per-file map of which rules are allowed on which lines."""

    #: line number -> rule ids allowed there
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: malformed / reasonless suppressions, reported as REP000
    malformed: List[Finding] = field(default_factory=list)
    #: (line, rule) pairs that actually matched a finding
    used: Set[Tuple[int, str]] = field(default_factory=set)

    def allows(self, finding: Finding) -> bool:
        if finding.rule == "REP000":
            return False
        for line in (finding.line, finding.line - 1):
            rules = self.by_line.get(line)
            if rules and finding.rule in rules:
                self.used.add((line, finding.rule))
                return True
        return False


def parse_suppressions(path: str, source: str) -> SuppressionIndex:
    """Scan *source* for ``# repro: allow[REPnnn] -- reason`` comments."""
    index = SuppressionIndex()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rule = match.group("rule")
        reason = (match.group("reason") or "").strip()
        if rule not in RULE_IDS or rule == "REP000":
            index.malformed.append(
                Finding(
                    rule="REP000",
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    message=f"suppression names unknown rule {rule!r}",
                )
            )
            continue
        if not reason:
            index.malformed.append(
                Finding(
                    rule="REP000",
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    message=(
                        f"suppression for {rule} is missing its mandatory "
                        "reason ('# repro: allow[REPnnn] -- why')"
                    ),
                )
            )
            continue
        index.by_line.setdefault(lineno, set()).add(rule)
    return index
