"""The ``repro lint`` driver: collect files, run rules, apply suppressions.

Two passes.  Pass 1 parses every file and builds the project view (module
infos, the call graph REP004 needs).  Pass 2 runs the per-file rules plus
the project-wide worker-reachability rule, then filters findings through
inline ``# repro: allow`` suppressions and the checked-in baseline.

Files inside directories named ``lint_fixtures`` are skipped by default --
that is where the test corpus of deliberately-violating files lives.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .baseline import apply_baseline, load_baseline, save_baseline
from .findings import Finding, SuppressionIndex, parse_suppressions
from .rules import FunctionInfo, ModuleInfo, collect_module_info, per_file_findings

__all__ = ["LintReport", "run_lint", "collect_files", "render_report"]

#: Directory names never descended into.
EXCLUDED_DIRS: Tuple[str, ...] = (
    "__pycache__",
    "lint_fixtures",
    ".git",
    ".pytest_cache",
    "node_modules",
)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]  # after suppressions + baseline
    all_findings: List[Finding] = field(default_factory=list)  # pre-baseline
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_json(self) -> str:
        payload = {
            "files_checked": self.files_checked,
            "count": len(self.findings),
            "findings": [f.to_dict() for f in sorted_findings(self.findings)],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def sorted_findings(findings: Iterable[Finding]) -> List[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def collect_files(paths: Sequence[str], root: Path) -> List[Path]:
    """Every ``.py`` file under *paths* (files or directories), sorted."""
    collected: Set[Path] = set()
    for raw in paths:
        target = (root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if target.is_file() and target.suffix == ".py":
            collected.add(target)
            continue
        if not target.is_dir():
            continue
        for candidate in target.rglob("*.py"):
            # Exclusions apply below the scanned directory, so a fixture tree
            # can itself be linted by pointing --root inside it.
            if any(part in EXCLUDED_DIRS for part in candidate.relative_to(target).parts):
                continue
            collected.add(candidate)
    return sorted(collected)


def _module_identity(path: Path, root: Path) -> Tuple[str, str, bool]:
    """(repo-relative posix path, dotted module name, is_package)."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = Path(path.name)
    posix = str(PurePosixPath(relative))
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    is_package = parts[-1] == "__init__" if parts else False
    if is_package:
        parts = parts[:-1]
    return posix, ".".join(parts) if parts else relative.stem, is_package


# ---------------------------------------------------------------------------
# REP004: trace calls reachable from pool-worker functions (project-wide)
# ---------------------------------------------------------------------------

def _rep004_findings(modules: Dict[str, ModuleInfo]) -> List[Finding]:
    graph: Dict[Tuple[str, str], FunctionInfo] = {}
    for info in modules.values():
        for entry in info.functions.values():
            graph[(entry.module, entry.name)] = entry

    findings: List[Finding] = []
    reported: Set[Tuple[str, int, str]] = set()
    for info in modules.values():
        for root_module, root_name, call_line in info.pool_roots:
            root = (root_module, root_name)
            if root not in graph:
                continue
            seen: Set[Tuple[str, str]] = set()
            stack = [root]
            while stack:
                vertex = stack.pop()
                if vertex in seen:
                    continue
                seen.add(vertex)
                entry = graph.get(vertex)
                if entry is None:
                    continue
                for line, col, trace_name in entry.trace_sites:
                    key = (entry.path, line, trace_name)
                    if key in reported:
                        continue
                    reported.add(key)
                    findings.append(
                        Finding(
                            rule="REP004",
                            path=entry.path,
                            line=line,
                            col=col,
                            message=(
                                f"trace call {trace_name!r} is reachable from pool "
                                f"worker {root_name!r} (dispatched at "
                                f"{info.path}:{call_line}); workers must never "
                                "trace -- spans are parent-side only"
                            ),
                            context=f"{entry.module}.{entry.name}",
                        )
                    )
                stack.extend(entry.calls)
    return findings


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_lint(
    paths: Sequence[str],
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    update_baseline: bool = False,
) -> LintReport:
    """Lint *paths* (relative to *root*) and return the filtered report."""
    root = (root or Path.cwd()).resolve()
    files = collect_files(paths, root)

    modules: Dict[str, ModuleInfo] = {}
    suppressions: Dict[str, SuppressionIndex] = {}
    findings: List[Finding] = []

    for file_path in files:
        posix, module, is_package = _module_identity(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        index = parse_suppressions(posix, source)
        suppressions[posix] = index
        findings.extend(index.malformed)
        try:
            info = collect_module_info(posix, module, is_package, source)
        except SyntaxError as error:
            findings.append(
                Finding(
                    rule="REP000",
                    path=posix,
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        modules[posix] = info

    for info in modules.values():
        findings.extend(per_file_findings(info))
    findings.extend(_rep004_findings(modules))

    # Inline suppressions first (they are the reviewed, reasoned exemptions).
    unsuppressed = [
        finding
        for finding in findings
        if not suppressions.get(finding.path, SuppressionIndex()).allows(finding)
    ]

    report = LintReport(
        findings=unsuppressed, all_findings=findings, files_checked=len(files)
    )

    if baseline_path is not None:
        if update_baseline:
            save_baseline(baseline_path, unsuppressed)
        posix_baseline = str(
            PurePosixPath(
                baseline_path.resolve().relative_to(root)
                if baseline_path.resolve().is_relative_to(root)
                else baseline_path
            )
        )
        report.findings = apply_baseline(
            unsuppressed, load_baseline(baseline_path), posix_baseline
        )
    return report


def render_report(report: LintReport) -> str:
    """Human-readable rendering (one line per finding plus a summary)."""
    lines = [finding.render() for finding in sorted_findings(report.findings)]
    noun = "finding" if len(report.findings) == 1 else "findings"
    lines.append(
        f"repro lint: {len(report.findings)} {noun} in {report.files_checked} files"
    )
    return "\n".join(lines) + "\n"
