"""``repro.analysis`` -- the static invariant analyzer behind ``repro lint``.

An AST rule engine (stdlib ``ast`` only) that checks the conventions the
reproduction's byte-identical determinism rests on: RNG discipline (REP001),
wall-clock discipline (REP002), pool-boundary pickle safety (REP003), trace
discipline in workers (REP004), ``REPRO_*`` env-seam discipline (REP005),
metrics double-booking (REP006) and the layer DAG (REP007).  See
``docs/INVARIANTS.md`` for the full catalogue.

Run it as ``repro lint src tests benchmarks`` or
``python -m repro.analysis src tests benchmarks``.
"""

from .baseline import load_baseline, save_baseline
from .engine import LintReport, collect_files, render_report, run_lint
from .findings import RULE_IDS, Finding, parse_suppressions
from .rules import LAYER_ALLOWED, RESOLVER_MODULES

__all__ = [
    "Finding",
    "LintReport",
    "RULE_IDS",
    "LAYER_ALLOWED",
    "RESOLVER_MODULES",
    "collect_files",
    "load_baseline",
    "parse_suppressions",
    "render_report",
    "run_lint",
    "save_baseline",
    "main",
]


def main(argv=None) -> int:
    """CLI entry point shared by ``python -m repro.analysis`` and ``repro lint``."""
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Statically check the determinism/parallelism/observability invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="baseline file of grandfathered findings (default: lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current unsuppressed findings",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the findings as a JSON report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root paths are relative to (default: current directory)",
    )
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else Path.cwd()
    baseline = None if args.no_baseline else root / args.baseline
    report = run_lint(
        args.paths,
        root=root,
        baseline_path=baseline,
        update_baseline=args.update_baseline,
    )
    if args.json == "-":
        print(report.to_json(), end="")
    else:
        print(render_report(report), end="")
        if args.json:
            Path(args.json).write_text(report.to_json())
    return report.exit_code
