"""repro -- reproduction of deTector (USENIX ATC 2017).

deTector is a topology-aware monitoring system for data center networks that
detects and localizes packet-loss failures in near real time with minimal
probing overhead.  The library is organised as:

* :mod:`repro.topology`     -- Fattree / VL2 / BCube generators and symmetry,
* :mod:`repro.routing`      -- candidate path enumeration, routing matrix, ECMP,
* :mod:`repro.core`         -- the PMC probe-matrix construction algorithm,
* :mod:`repro.localization` -- the PLL loss-localization algorithm and baselines,
* :mod:`repro.simulation`   -- failure models, packet-level probing simulator,
* :mod:`repro.monitor`      -- controller / pinger / responder / diagnoser,
* :mod:`repro.baselines`    -- Pingmesh, NetNORAD, Netbouncer, fbtracert,
* :mod:`repro.experiments`  -- harnesses regenerating every table and figure.

Quickstart::

    from repro import build_fattree, pmc_for_topology

    topology = build_fattree(4)
    result = pmc_for_topology(topology, alpha=3, beta=1)
    print(result.probe_matrix.summary())
"""

from .core import (
    PMCOptions,
    PMCResult,
    ProbeMatrix,
    check_coverage,
    check_identifiability,
    construct_probe_matrix,
    pmc_for_topology,
)
from .routing import Path, RoutingMatrix, enumerate_candidate_paths
from .topology import (
    BCubeTopology,
    FatTreeTopology,
    Topology,
    VL2Topology,
    build_bcube,
    build_fattree,
    build_vl2,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Topology",
    "FatTreeTopology",
    "VL2Topology",
    "BCubeTopology",
    "build_fattree",
    "build_vl2",
    "build_bcube",
    "Path",
    "RoutingMatrix",
    "enumerate_candidate_paths",
    "ProbeMatrix",
    "PMCOptions",
    "PMCResult",
    "construct_probe_matrix",
    "pmc_for_topology",
    "check_coverage",
    "check_identifiability",
]
