"""Deterministic process-pool plumbing shared by PMC sharding and the runner.

Two consumers fan work out over processes:

* the pod-sharded control plane (``repro.core.pmc`` with
  ``PMCOptions.shard_by_pods`` / ``jobs``) dispatches per-pod
  :class:`~repro.core.decomposition.Subproblem` solves, and
* the experiment sweep runner (``repro.experiments.runner.run_all``)
  dispatches whole table/figure harnesses.

Both go through :func:`pool_map`, which pins the one property every caller
relies on: **results come back in submission order**, regardless of worker
count, completion order or scheduling.  Combined with payloads that carry
every input (specs are plain data; shard workers receive the routing matrix
once through the pool initializer), parallel output is byte-identical to the
serial loop at any ``jobs`` setting -- the pool only changes wall-clock time.

``jobs`` resolves like the incidence backend does
(:func:`repro.core.incidence.resolve_backend`): explicit argument first, then
the ``REPRO_JOBS`` environment variable, then the serial default of 1.  That
lets CI run the whole tier-1 suite under ``REPRO_JOBS=4`` without threading a
flag through every call site.

Worker seeding rides :meth:`repro.simulation.rng.SeededStreams.spawn_seed`:
:func:`derive_seeds` turns one root seed into per-task seeds keyed by task
*name*, so a task's seed never depends on submission order or on which worker
picks it up.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from .contracts import informational_fields, pool_payload
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = [
    "resolve_jobs",
    "pool_map",
    "derive_seeds",
    "WorkerTelemetry",
    "merge_worker_telemetry",
]

_ENV_VAR = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker-process count: explicit argument > ``REPRO_JOBS`` > 1.

    Mirrors :func:`repro.core.incidence.resolve_backend` so the two process
    knobs of the reproduction (backend, parallelism) configure the same way.
    """
    if jobs is None:
        env = os.environ.get(_ENV_VAR, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{_ENV_VAR} must be a positive integer, got {env!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def pool_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[R]:
    """Map *fn* over *items*, preserving item order in the result list.

    ``jobs == 1`` (or fewer than two items) runs everything inline in this
    process -- no pool, no pickling -- which is also the code path the
    differential tests compare parallel runs against.  ``jobs > 1`` spins up
    a :class:`~concurrent.futures.ProcessPoolExecutor`; *initializer* runs
    once per worker (the hook shard dispatch uses to ship the routing matrix
    a single time instead of once per subproblem).

    The result list is ordered by *submission* index, never by completion
    order, so callers can zip it back onto ``items`` directly.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


@pool_payload
@informational_fields("wall_seconds")
@dataclass(frozen=True, slots=True)
class WorkerTelemetry:
    """Telemetry one pooled task carries back to the dispatching parent.

    ``counters`` is the task's *deterministic* counter delta (for PMC shards,
    the kernel-counter delta the solve caused on the worker's pickled
    :class:`~repro.core.costmodel.KernelCounters` copy) -- byte-identical
    whether the task ran inline or in a worker.  ``wall_seconds`` is the
    task's own wall clock, informational by the usual contract.  The payload
    is plain data, so it pickles across the pool boundary like every other
    task result.
    """

    wall_seconds: float = 0.0
    counters: Mapping[str, int] = field(default_factory=dict)


def merge_worker_telemetry(
    telemetries: Iterable[Optional[WorkerTelemetry]], cost=None
) -> float:
    """Fold per-task telemetry back into the parent, in submission order.

    When *cost* (a :class:`~repro.core.costmodel.CostModel`) is given, every
    task's counter delta merges into it -- the hook PMC dispatch uses so the
    parent's kernel totals after a pooled solve match the inline path's
    (workers tick their own pickled counters, which would otherwise vanish).
    Returns the summed wall seconds (informational).
    """
    total_wall = 0.0
    for telemetry in telemetries:
        if telemetry is None:
            continue
        total_wall += telemetry.wall_seconds
        if cost is not None:
            for name in sorted(telemetry.counters):
                cost.add(name, telemetry.counters[name])
    return total_wall


def derive_seeds(root_seed: int, names: Sequence[str]) -> Dict[str, int]:
    """Per-task seeds from one root seed, keyed by task name.

    Each seed is ``SeededStreams(root_seed).spawn_seed(name)``: a pure
    function of ``(root_seed, name)``, so it is independent of the order of
    *names*, of the jobs count and of worker placement -- the property that
    makes seeded parallel sweeps replayable.
    """
    from .simulation.rng import SeededStreams

    streams = SeededStreams(root_seed)
    return {name: streams.spawn_seed(name) for name in names}
