"""Deterministic process-pool plumbing shared by PMC sharding and the runner.

Two consumers fan work out over processes:

* the pod-sharded control plane (``repro.core.pmc`` with
  ``PMCOptions.shard_by_pods`` / ``jobs``) dispatches per-pod
  :class:`~repro.core.decomposition.Subproblem` solves, and
* the experiment sweep runner (``repro.experiments.runner.run_all``)
  dispatches whole table/figure harnesses.

Both go through :func:`pool_map`, which pins the one property every caller
relies on: **results come back in submission order**, regardless of worker
count, completion order or scheduling.  Combined with payloads that carry
every input (specs are plain data; shard workers receive their solve context
once through the pool initializer), parallel output is byte-identical to the
serial loop at any ``jobs`` setting -- the pool only changes wall-clock time.

Since the shared-memory data plane landed, pooled dispatch no longer pays a
pool spawn per call: callers that pass a ``context_key`` get a
:class:`PersistentPool` -- one warm :class:`~concurrent.futures.ProcessPoolExecutor`
keyed by ``(jobs, context digest)`` that outlives the call and is reused by
every later dispatch with the same key (controller cycles, engine runs,
``experiment all``).  A changed key (new topology, new options) retires the
old pool and spawns a fresh generation, so stale worker state can never leak
into a new context.  ``REPRO_POOL_PERSIST=0`` restores the old
pool-per-call behaviour, and ``REPRO_MP_START`` pins the multiprocessing
start method (CI runs a ``spawn`` leg to catch fork-only assumptions).

``jobs`` resolves like the incidence backend does
(:func:`repro.core.incidence.resolve_backend`): explicit argument first, then
the ``REPRO_JOBS`` environment variable, then the serial default of 1.  That
lets CI run the whole tier-1 suite under ``REPRO_JOBS=4`` without threading a
flag through every call site.

Worker seeding rides :meth:`repro.simulation.rng.SeededStreams.spawn_seed`:
:func:`derive_seeds` turns one root seed into per-task seeds keyed by task
*name*, so a task's seed never depends on submission order or on which worker
picks it up.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from .contracts import informational_fields, pool_payload, trace_span
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = [
    "resolve_jobs",
    "resolve_start_method",
    "in_main_process",
    "pool_persistence_enabled",
    "pool_map",
    "PersistentPool",
    "shutdown_pools",
    "pool_telemetry",
    "derive_seeds",
    "WorkerTelemetry",
    "merge_worker_telemetry",
]

_ENV_VAR = "REPRO_JOBS"
_PERSIST_ENV = "REPRO_POOL_PERSIST"
_START_ENV = "REPRO_MP_START"
_FALSEY = {"", "0", "false", "no", "off"}

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker-process count: explicit argument > ``REPRO_JOBS`` > 1.

    Mirrors :func:`repro.core.incidence.resolve_backend` so the two process
    knobs of the reproduction (backend, parallelism) configure the same way.
    """
    if jobs is None:
        env = os.environ.get(_ENV_VAR, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{_ENV_VAR} must be a positive integer, got {env!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def pool_persistence_enabled(enabled: Optional[bool] = None) -> bool:
    """Resolve the pool-persistence switch: explicit argument > ``REPRO_POOL_PERSIST`` > on.

    When off, every keyed :func:`pool_map` call falls back to the legacy
    pool-per-call behaviour (spawn, run, tear down) -- the escape hatch for
    environments where long-lived worker processes are unwelcome.
    Persistence never changes results, only wall-clock time: the differential
    harness pins that.
    """
    if enabled is not None:
        return bool(enabled)
    raw = os.environ.get(_PERSIST_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSEY


def resolve_start_method(method: Optional[str] = None) -> Optional[str]:
    """Resolve the multiprocessing start method: argument > ``REPRO_MP_START`` > platform default.

    ``None`` / empty means "whatever the platform picks" (fork on Linux).
    CI runs a ``spawn`` leg through this seam to catch fork-only assumptions
    (module globals inherited by forked workers instead of shipped through
    initializers) before they land.
    """
    if method is None:
        method = os.environ.get(_START_ENV, "")
    method = method.strip().lower()
    if not method:
        return None
    available = multiprocessing.get_all_start_methods()
    if method not in available:
        raise ValueError(
            f"{_START_ENV} must be one of {available}, got {method!r}"
        )
    return method


def _mp_context():
    method = resolve_start_method()
    return None if method is None else multiprocessing.get_context(method)


def in_main_process() -> bool:
    """True outside any multiprocessing child.

    Pool persistence and shared-memory export are main-process features: a
    forked pool worker inherits the parent's ``_POOLS`` registry by copy, so
    reusing or evicting those executors from inside a worker would operate on
    processes the worker does not own, and fork children skip :mod:`atexit`,
    so nothing would ever sweep a worker-side pool or segment.  Nested
    dispatch inside a worker (an experiment harness solving with
    ``jobs > 1``) therefore falls back to the legacy ephemeral path.
    """
    return multiprocessing.parent_process() is None


# ---------------------------------------------------------------------------
# pool telemetry (informational: spawn/reuse balance and payload volume vary
# with jobs and persistence settings, so none of it may feed deterministic
# snapshots -- it feeds the obs plane's informational "dispatch_pool" source
# and the BENCH_podshard payload gates, which pin scaling within one run)
# ---------------------------------------------------------------------------

@dataclass
class _PoolTelemetry:
    spawns: int = 0  # executors created (ephemeral or persistent)
    reuses: int = 0  # keyed pool_map calls served by a warm executor
    shutdowns: int = 0  # executors retired (eviction, re-key, shutdown_pools)
    workers_provisioned: int = 0  # max_workers summed over spawns
    tasks_dispatched: int = 0  # items shipped across the pool boundary
    payload_bytes: int = 0  # pickled task payload bytes shipped to workers
    context_bytes: int = 0  # pickled initargs bytes shipped at spawn time
    generation: int = 0  # generation of the most recently armed pool


_TELEMETRY = _PoolTelemetry()
_GENERATIONS = itertools.count(1)


def pool_telemetry() -> Dict[str, int]:
    """Process-wide dispatch counters (informational; see class note above)."""
    return {
        "pool_spawns": _TELEMETRY.spawns,
        "pool_reuses": _TELEMETRY.reuses,
        "pool_shutdowns": _TELEMETRY.shutdowns,
        "pool_workers_provisioned": _TELEMETRY.workers_provisioned,
        "pool_tasks_dispatched": _TELEMETRY.tasks_dispatched,
        "dispatch_payload_bytes": _TELEMETRY.payload_bytes,
        "dispatch_context_bytes": _TELEMETRY.context_bytes,
        "pool_generation": _TELEMETRY.generation,
    }


# ---------------------------------------------------------------------------
# the persistent pool
# ---------------------------------------------------------------------------

class PersistentPool:
    """One warm :class:`ProcessPoolExecutor` keyed by ``(jobs, context digest)``.

    The executor outlives a single :func:`pool_map` call: its workers ran the
    initializer once (attaching the shared-memory incidence segment or
    unpickling the python-backend index) and keep that context between
    dispatches, so steady-state controller cycles pay neither a pool spawn
    nor a context re-ship.  ``generation`` is a process-wide monotonic
    counter stamped at spawn time; a dispatch whose context digest differs
    from the armed one never reaches this pool -- the registry retires it and
    arms a fresh generation, which is what makes stale worker state
    structurally impossible.
    """

    def __init__(
        self,
        jobs: int,
        context_key: str,
        initializer: Optional[Callable[..., None]],
        initargs: Tuple,
        generation: int,
    ):
        self.jobs = jobs
        self.context_key = context_key
        self.generation = generation
        self.broken = False
        self._executor = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=initializer,
            initargs=initargs,
            mp_context=_mp_context(),
        )

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Submission-order map over the warm executor.

        A dead worker surfaces as :class:`BrokenProcessPool`; the pool marks
        itself broken so the registry respawns on the next dispatch instead
        of handing out a dead executor.
        """
        try:
            futures = [self._executor.submit(fn, item) for item in items]
            return [future.result() for future in futures]
        except BrokenProcessPool:
            self.broken = True
            raise

    def shutdown(self) -> None:
        _TELEMETRY.shutdowns += 1
        self._executor.shutdown(wait=True, cancel_futures=True)


#: Live pools, LRU-ordered by last use.  The cap bounds idle worker processes
#: when many distinct contexts are armed in one process (e.g. a test suite).
_POOLS: "OrderedDict[Tuple[int, str], PersistentPool]" = OrderedDict()
_MAX_POOLS = 4


def _ensure_pool(
    jobs: int,
    context_key: str,
    initializer: Optional[Callable[..., None]],
    initargs: Tuple,
) -> PersistentPool:
    key = (jobs, context_key)
    pool = _POOLS.get(key)
    if pool is not None and not pool.broken:
        _POOLS.move_to_end(key)
        _TELEMETRY.reuses += 1
        return pool
    if pool is not None:  # broken: retire before respawning under the same key
        del _POOLS[key]
        pool.shutdown()
    generation = next(_GENERATIONS)
    _TELEMETRY.spawns += 1
    _TELEMETRY.workers_provisioned += jobs
    _TELEMETRY.generation = generation
    _TELEMETRY.context_bytes += len(
        pickle.dumps(initargs, protocol=pickle.HIGHEST_PROTOCOL)
    )
    with trace_span(
        "pool.spawn", informational=True, jobs=jobs, generation=generation, persistent=True
    ):
        pool = PersistentPool(jobs, context_key, initializer, initargs, generation)
    _POOLS[key] = pool
    while len(_POOLS) > _MAX_POOLS:
        _, evicted = _POOLS.popitem(last=False)
        evicted.shutdown()
    return pool


def shutdown_pools() -> int:
    """Retire every persistent pool (idempotent); returns how many were live.

    Registered via :mod:`atexit` so a normal exit, an engine Ctrl-C or a test
    run never leaves orphaned worker processes behind; callers that want the
    workers gone earlier (lifecycle tests, long-lived daemons between phases)
    call it directly.
    """
    count = 0
    while _POOLS:
        _, pool = _POOLS.popitem(last=False)
        pool.shutdown()
        count += 1
    return count


atexit.register(shutdown_pools)


def pool_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    context_key: Optional[str] = None,
) -> List[R]:
    """Map *fn* over *items*, preserving item order in the result list.

    ``jobs == 1`` (or fewer than two items) runs everything inline in this
    process -- no pool, no pickling -- which is also the code path the
    differential tests compare parallel runs against.  ``jobs > 1`` dispatches
    over a :class:`~concurrent.futures.ProcessPoolExecutor`; *initializer*
    runs once per worker (the hook shard dispatch uses to ship the solve
    context a single time instead of once per subproblem).

    *context_key* is a digest of everything the initializer installs (for PMC
    dispatch: the incidence identity plus solver options).  When given -- and
    :func:`pool_persistence_enabled` -- the executor is a
    :class:`PersistentPool` reused by every later call with the same
    ``(jobs, context_key)``; without it each call spawns and tears down its
    own executor, exactly as before persistence existed.

    The result list is ordered by *submission* index, never by completion
    order, so callers can zip it back onto ``items`` directly.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    _TELEMETRY.tasks_dispatched += len(items)
    _TELEMETRY.payload_bytes += sum(
        len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)) for item in items
    )
    if context_key is not None and pool_persistence_enabled() and in_main_process():
        pool = _ensure_pool(jobs, context_key, initializer, initargs)
        return pool.map(fn, items)
    _TELEMETRY.spawns += 1
    _TELEMETRY.workers_provisioned += min(jobs, len(items))
    _TELEMETRY.context_bytes += len(
        pickle.dumps(initargs, protocol=pickle.HIGHEST_PROTOCOL)
    )
    with trace_span("pool.spawn", informational=True, jobs=jobs, persistent=False):
        executor = ProcessPoolExecutor(
            max_workers=min(jobs, len(items)),
            initializer=initializer,
            initargs=initargs,
            mp_context=_mp_context(),
        )
    with executor as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


@pool_payload
@informational_fields("wall_seconds")
@dataclass(frozen=True, slots=True)
class WorkerTelemetry:
    """Telemetry one pooled task carries back to the dispatching parent.

    ``counters`` is the task's *deterministic* counter delta (for PMC shards,
    the kernel-counter delta the solve caused on the worker's attached or
    pickled :class:`~repro.core.costmodel.KernelCounters` copy) --
    byte-identical whether the task ran inline or in a worker.
    ``wall_seconds`` is the task's own wall clock, informational by the usual
    contract.  The payload is plain data, so it pickles across the pool
    boundary like every other task result.
    """

    wall_seconds: float = 0.0
    counters: Mapping[str, int] = field(default_factory=dict)


def merge_worker_telemetry(
    telemetries: Iterable[Optional[WorkerTelemetry]], cost=None
) -> float:
    """Fold per-task telemetry back into the parent, in submission order.

    When *cost* (a :class:`~repro.core.costmodel.CostModel`) is given, every
    task's counter delta merges into it -- the hook PMC dispatch uses so the
    parent's kernel totals after a pooled solve match the inline path's
    (workers tick their own copies, which would otherwise vanish).
    Returns the summed wall seconds (informational).
    """
    total_wall = 0.0
    for telemetry in telemetries:
        if telemetry is None:
            continue
        total_wall += telemetry.wall_seconds
        if cost is not None:
            for name in sorted(telemetry.counters):
                cost.add(name, telemetry.counters[name])
    return total_wall


def derive_seeds(root_seed: int, names: Sequence[str]) -> Dict[str, int]:
    """Per-task seeds from one root seed, keyed by task name.

    Each seed is ``SeededStreams(root_seed).spawn_seed(name)``: a pure
    function of ``(root_seed, name)``, so it is independent of the order of
    *names*, of the jobs count and of worker placement -- the property that
    makes seeded parallel sweeps replayable.
    """
    from .simulation.rng import SeededStreams

    streams = SeededStreams(root_seed)
    return {name: streams.spawn_seed(name) for name in names}
