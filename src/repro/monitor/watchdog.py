"""Watchdog service: server health tracking and failed-device bookkeeping.

The controller consults the watchdog before every path-computation cycle so
that probe paths avoid links and switches already known to be down, and the
diagnoser uses it to discard observations from unhealthy pingers/responders
(pre-processing outlier removal, §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..topology import Topology

__all__ = ["Watchdog"]


@dataclass
class Watchdog:
    """Tracks server health and known-bad network elements.

    The real service polls management agents; in this reproduction health is
    set explicitly by experiments (e.g. "server X was rebooting during this
    window") and consumed by the controller and the diagnoser.
    """

    topology: Topology
    unhealthy_servers: Set[str] = field(default_factory=set)
    failed_switches: Set[str] = field(default_factory=set)
    failed_link_ids: Set[int] = field(default_factory=set)

    # ----------------------------------------------------------- server health
    def mark_server_unhealthy(self, server_name: str) -> None:
        self.topology.node(server_name)  # validate
        self.unhealthy_servers.add(server_name)

    def mark_server_healthy(self, server_name: str) -> None:
        self.unhealthy_servers.discard(server_name)

    def is_server_healthy(self, server_name: str) -> bool:
        return server_name not in self.unhealthy_servers

    def healthy_servers_under(self, tor_name: str) -> List[str]:
        """Healthy servers under a ToR, candidates for pinger placement."""
        return [
            node.name
            for node in self.topology.servers_under(tor_name)
            if node.name not in self.unhealthy_servers
        ]

    # ------------------------------------------------------- network elements
    def report_failed_switch(self, switch_name: str) -> None:
        self.topology.node(switch_name)  # validate
        self.failed_switches.add(switch_name)

    def report_failed_link(self, link_id: int) -> None:
        self.topology.link(link_id)  # validate
        self.failed_link_ids.add(link_id)

    def clear_network_failures(self) -> None:
        self.failed_switches.clear()
        self.failed_link_ids.clear()

    def probe_topology(self) -> Topology:
        """The topology the controller should plan probe paths on.

        Known-bad links and switches are removed so that no probe path is
        planned across them (§6.1, footnote 4).  Symmetry information is
        always computed on the original topology, exactly as the paper notes.
        """
        topology = self.topology
        for switch in self.failed_switches:
            topology = topology.without_node(switch)
        if self.failed_link_ids:
            if topology is self.topology:
                topology = topology.without_links(self.failed_link_ids)
            else:
                # Link ids were re-densified by without_node; translate through
                # endpoint names instead.
                remaining = []
                for link_id in self.failed_link_ids:
                    original = self.topology.link(link_id)
                    if topology.has_link(original.a, original.b):
                        remaining.append(topology.link_between(original.a, original.b).link_id)
                if remaining:
                    topology = topology.without_links(remaining)
        return topology
