"""Watchdog service: server health tracking and failed-device bookkeeping.

The controller consults the watchdog before every path-computation cycle so
that probe paths avoid links and switches already known to be down, and the
diagnoser uses it to discard observations from unhealthy pingers/responders
(pre-processing outlier removal, §5.1).

**How deltas are emitted and consumed.**  The watchdog is the single source
of truth for device health; churn reaches it through the ``mark_*`` /
``report_*`` methods (or wholesale through :meth:`apply_delta`, which is how
:class:`~repro.simulation.failures.ChurnSchedule` drives it).  It does not
push notifications.  Instead it *emits* immutable
:class:`~repro.topology.HealthSnapshot` values on demand via
:meth:`snapshot`; the incremental controller remembers the snapshot it last
planned against and diffs it against the current one
(:meth:`~repro.topology.TopologyDelta.between`) at the start of every cycle.
That pull model keeps the watchdog free of consumer bookkeeping and lets any
number of consumers (controller, diagnoser, experiments) derive their own
deltas from the same health state.

All link ids refer to the original topology; the watchdog never re-densifies
ids, which is what lets consumers translate deltas directly into incidence
link masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..obs import tracing
from ..topology import HealthSnapshot, Topology, TopologyDelta

__all__ = ["Watchdog"]


@dataclass
class Watchdog:
    """Tracks server health and known-bad network elements.

    The real service polls management agents; in this reproduction health is
    set explicitly by experiments (e.g. "server X was rebooting during this
    window") or driven from a synthetic
    :class:`~repro.simulation.failures.ChurnSchedule`, and consumed by the
    controller and the diagnoser.  See the module docstring for the
    snapshot/delta contract incremental cycles build on.
    """

    topology: Topology
    unhealthy_servers: Set[str] = field(default_factory=set)
    failed_switches: Set[str] = field(default_factory=set)
    failed_link_ids: Set[int] = field(default_factory=set)
    #: Optional simulated-time source (any object with a ``now`` attribute,
    #: e.g. :class:`~repro.engine.loop.SimClock`).  When set, every delta
    #: applied through :meth:`apply_delta` is timestamped into
    #: :attr:`delta_log`, giving engine runs an auditable control-plane
    #: timeline next to the fault model's data-plane ground truth.
    clock: Optional[object] = None
    delta_log: List[Tuple[float, TopologyDelta]] = field(default_factory=list)

    # ----------------------------------------------------------- server health
    def mark_server_unhealthy(self, server_name: str) -> None:
        self.topology.node(server_name)  # validate
        self.unhealthy_servers.add(server_name)

    def mark_server_healthy(self, server_name: str) -> None:
        self.unhealthy_servers.discard(server_name)

    def is_server_healthy(self, server_name: str) -> bool:
        return server_name not in self.unhealthy_servers

    def healthy_servers_under(self, tor_name: str) -> List[str]:
        """Healthy servers under a ToR, candidates for pinger placement."""
        return [
            node.name
            for node in self.topology.servers_under(tor_name)
            if node.name not in self.unhealthy_servers
        ]

    # ------------------------------------------------------- network elements
    def report_failed_switch(self, switch_name: str) -> None:
        self.topology.node(switch_name)  # validate
        self.failed_switches.add(switch_name)

    def report_switch_recovered(self, switch_name: str) -> None:
        self.failed_switches.discard(switch_name)

    def report_failed_link(self, link_id: int) -> None:
        self.topology.link(link_id)  # validate
        self.failed_link_ids.add(link_id)

    def report_link_recovered(self, link_id: int) -> None:
        self.failed_link_ids.discard(link_id)

    def clear_network_failures(self) -> None:
        self.failed_switches.clear()
        self.failed_link_ids.clear()

    # -------------------------------------------------------- snapshots/deltas
    def snapshot(self) -> HealthSnapshot:
        """Immutable view of the current health state.

        Consumers keep the snapshot they last acted on and diff it against a
        fresh one (``TopologyDelta.between(last, watchdog.snapshot())``) to
        learn what changed -- the emit half of the delta contract.
        """
        return HealthSnapshot(
            failed_link_ids=frozenset(self.failed_link_ids),
            failed_switches=frozenset(self.failed_switches),
            unhealthy_servers=frozenset(self.unhealthy_servers),
        )

    def apply_delta(self, delta: TopologyDelta) -> None:
        """Apply a churn delta (e.g. one ``ChurnSchedule`` cycle) to the state."""
        if self.clock is not None:
            self.delta_log.append((float(self.clock.now), delta))
        with tracing.span(
            "watchdog.delta",
            churn=delta.churn,
            failed_links=len(delta.failed_links),
            recovered_links=len(delta.recovered_links),
        ):
            for link_id in delta.failed_links:
                self.report_failed_link(link_id)
            for link_id in delta.recovered_links:
                self.report_link_recovered(link_id)
            for switch in delta.failed_switches:
                self.report_failed_switch(switch)
            for switch in delta.recovered_switches:
                self.report_switch_recovered(switch)
            for server in delta.failed_servers:
                self.mark_server_unhealthy(server)
            for server in delta.recovered_servers:
                self.mark_server_healthy(server)

    def failed_probe_link_ids(self) -> Set[int]:
        """Every link probe planning must avoid, as original-topology ids.

        The union of explicitly failed links and all links incident to failed
        switches -- the set the controller filters candidate paths with (cold
        rebuild) or masks on the cached incidence index (incremental cycle).
        """
        failed = set(self.failed_link_ids)
        for switch in self.failed_switches:
            failed.update(link.link_id for link in self.topology.links_of(switch))
        return failed

    def failed_probe_link_ids_by_pod(self) -> Dict[Optional[int], Set[int]]:
        """:meth:`failed_probe_link_ids`, partitioned by owning pod.

        Keys follow :func:`~repro.core.decomposition.link_pod_map`: pod number
        when both link endpoints live in that pod, ``None`` for cross-pod and
        pod-less links (which the sharded control plane routes to the residual
        shard).  Pods without failures are absent, so the key set is exactly
        the set of shards whose health changed -- the signal a pod-sharded
        controller uses to know which shards a delta can possibly touch.
        """
        from ..core import link_pod_map

        failed = self.failed_probe_link_ids()
        if not failed:
            return {}
        pods = link_pod_map(self.topology, sorted(failed))
        by_pod: Dict[Optional[int], Set[int]] = {}
        for link_id in sorted(failed):
            by_pod.setdefault(pods[link_id], set()).add(link_id)
        return by_pod

    def probe_topology(self) -> Topology:
        """The post-failure topology, with known-bad links and switches removed.

        Kept as a standalone view for tools that want a concrete filtered
        graph (visualisation, connectivity checks).  Probe planning itself no
        longer builds this: ``without_node``/``without_links`` re-densify link
        ids and lose the concrete topology subclass, so the controller instead
        filters the pristine topology's candidate paths through
        :meth:`failed_probe_link_ids` (§6.1, footnote 4 -- no probe path is
        planned across a known-bad element).  Symmetry information is always
        computed on the original topology, exactly as the paper notes.
        """
        topology = self.topology
        for switch in self.failed_switches:
            topology = topology.without_node(switch)
        if self.failed_link_ids:
            if topology is self.topology:
                topology = topology.without_links(self.failed_link_ids)
            else:
                # Link ids were re-densified by without_node; translate through
                # endpoint names instead.
                remaining = []
                for link_id in self.failed_link_ids:
                    original = self.topology.link(link_id)
                    if topology.has_link(original.a, original.b):
                        remaining.append(topology.link_between(original.a, original.b).link_id)
                if remaining:
                    topology = topology.without_links(remaining)
        return topology
