"""The diagnoser (§3.1): aggregates pinger reports and runs PLL.

Every 30 seconds the diagnoser merges the reports received from all pingers,
pre-processes them (outlier removal, noise filtering), runs the PLL algorithm
and emits alerts naming the suspected links together with estimated loss
rates.  Reports are also kept in a small in-memory log ("database" in the
paper) so operators can query past windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import ProbeMatrix
from ..localization import (
    LocalizationResult,
    LossPatternClassifier,
    ObservationSet,
    PLLConfig,
    PLLLocalizer,
    PreprocessConfig,
    merge_observations,
    preprocess_observations,
)
from ..topology import Topology
from .pinger import PingerReport
from .watchdog import Watchdog

__all__ = ["Alert", "DiagnosisReport", "Diagnoser"]


@dataclass(frozen=True)
class Alert:
    """One suspected faulty link, as surfaced to the network operator."""

    link_id: int
    endpoints: Tuple[str, str]
    estimated_loss_rate: Optional[float]
    window_index: int
    loss_pattern: Optional[str] = None
    diagnosis_hint: Optional[str] = None

    def describe(self) -> str:
        rate = (
            f"~{self.estimated_loss_rate:.2%} loss"
            if self.estimated_loss_rate is not None
            else "loss rate unknown"
        )
        text = f"link {self.endpoints[0]} <-> {self.endpoints[1]} ({rate})"
        if self.loss_pattern is not None:
            text += f" [{self.loss_pattern}]"
        return text


@dataclass
class DiagnosisReport:
    """Outcome of one diagnosis window."""

    window_index: int
    localization: LocalizationResult
    alerts: List[Alert]
    lossy_paths: List[int]
    probes_analyzed: int

    @property
    def suspected_links(self) -> List[int]:
        return list(self.localization.suspected_links)


class Diagnoser:
    """Aggregates pinger reports and localizes losses with PLL."""

    def __init__(
        self,
        topology: Topology,
        probe_matrix: ProbeMatrix,
        pll_config: Optional[PLLConfig] = None,
        preprocess_config: Optional[PreprocessConfig] = None,
        watchdog: Optional[Watchdog] = None,
        classify_loss_patterns: bool = True,
    ):
        self.topology = topology
        self.probe_matrix = probe_matrix
        self._localizer = PLLLocalizer(pll_config)
        self._preprocess_config = preprocess_config or PreprocessConfig()
        self._watchdog = watchdog or Watchdog(topology)
        self._classifier = LossPatternClassifier() if classify_loss_patterns else None
        self._pending_reports: List[PingerReport] = []
        self._window_index = 0
        self.history: List[DiagnosisReport] = []

    # ------------------------------------------------------------- ingestion
    def ingest(self, report: PingerReport) -> None:
        """Accept one pinger's report for the current window."""
        self._pending_reports.append(report)

    def ingest_many(self, reports: Sequence[PingerReport]) -> None:
        for report in reports:
            self.ingest(report)

    def pending_report_count(self) -> int:
        return len(self._pending_reports)

    # ------------------------------------------------------------- diagnosis
    def update_probe_matrix(self, probe_matrix: ProbeMatrix) -> None:
        """Install the probe matrix of a new controller cycle."""
        self.probe_matrix = probe_matrix

    def run_window(self) -> DiagnosisReport:
        """Merge pending reports, run pre-processing and PLL, emit alerts."""
        merged = merge_observations([r.observations for r in self._pending_reports])
        self._pending_reports = []
        return self.diagnose(merged)

    def diagnose(
        self, merged: ObservationSet, probes_analyzed: Optional[int] = None
    ) -> DiagnosisReport:
        """Run pre-processing and PLL over one window's merged observations.

        The report-free entry point the telemetry engine uses: its stream
        aggregator folds timestamped probe batches into exactly this merged
        per-path view, so window diagnosis no longer requires materialising
        per-pinger reports.  :meth:`run_window` is now the thin legacy wrapper
        that merges pending reports and delegates here.
        """
        probes_analyzed = merged.total_sent() if probes_analyzed is None else probes_analyzed
        preprocess = preprocess_observations(
            self.probe_matrix,
            merged,
            config=self._preprocess_config,
            unhealthy_servers=self._watchdog.unhealthy_servers,
        )
        localization = self._localizer.localize(self.probe_matrix, preprocess.observations)

        diagnoses = {}
        if self._classifier is not None and localization.suspected_links:
            diagnoses = {
                diagnosis.link_id: diagnosis
                for diagnosis in self._classifier.diagnose(
                    self.probe_matrix, preprocess.observations, localization.suspected_links
                )
            }

        alerts = []
        for link_id in localization.suspected_links:
            link = self.topology.link(link_id)
            diagnosis = diagnoses.get(link_id)
            alerts.append(
                Alert(
                    link_id=link_id,
                    endpoints=(link.a, link.b),
                    estimated_loss_rate=localization.estimated_loss_rates.get(link_id),
                    window_index=self._window_index,
                    loss_pattern=diagnosis.pattern.value if diagnosis else None,
                    diagnosis_hint=diagnosis.hint if diagnosis else None,
                )
            )

        report = DiagnosisReport(
            window_index=self._window_index,
            localization=localization,
            alerts=alerts,
            lossy_paths=preprocess.lossy_paths,
            probes_analyzed=probes_analyzed,
        )
        self.history.append(report)
        self._window_index += 1
        return report
