"""The deTector controller (§3.1, §6.1).

Once per cycle (10 minutes in the paper) the controller

1. reads the current topology and server health from the watchdog,
2. runs PMC to construct the probe matrix,
3. selects 2-4 pinger servers under every ToR switch,
4. splits the probe matrix into per-pinger pinglists, giving every path to at
   least two pingers for fault tolerance, and
5. hands the pinglists to the pingers (XML over HTTP in the paper, direct
   objects here -- the XML serialisation is still exercised).

Two cycle flavours exist:

* :meth:`Controller.run_cycle` -- the paper's behaviour: rebuild everything
  from scratch against the watchdog's current health state.
* :meth:`Controller.run_incremental_cycle` -- the steady-state fast path: the
  delta since the previously planned
  :class:`~repro.topology.HealthSnapshot` is translated into link-mask
  updates on a cached :class:`~repro.core.incidence.IncidenceIndex`, PMC
  re-runs only over surviving candidate rows (with per-subproblem warm-start
  through a :class:`~repro.core.lazy_greedy.CELFSolutionCache`), and the
  result is byte-identical to a cold rebuild on the same post-delta state.
  When churn exceeds ``ControllerConfig.churn_rebuild_threshold`` (or
  symmetry batching is enabled, whose orbit indices are tied to a concrete
  candidate matrix), the method transparently falls back to a full rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import (
    CELFSolutionCache,
    PMCOptions,
    PMCResult,
    ProbeMatrix,
    ShardedSolutionCache,
    construct_probe_matrix,
    construct_probe_matrix_masked,
)
from ..routing import Path, RoutingMatrix, enumerate_candidate_paths
from ..topology import FatTreeTopology, HealthSnapshot, PathOrbits, Topology, TopologyDelta
from .pinglist import Pinglist, PinglistEntry
from .watchdog import Watchdog

__all__ = ["ControllerConfig", "ControllerCycle", "Controller"]


@dataclass(frozen=True)
class ControllerConfig:
    """Controller tuning knobs.

    Attributes
    ----------
    alpha, beta:
        Coverage and identifiability targets handed to PMC.
    pingers_per_tor:
        How many servers under each ToR act as pingers (2-4 in the paper).
    path_replication:
        Every probe path is assigned to at least this many pingers under its
        source ToR so a single pinger failure does not lose link coverage.
    probes_per_second:
        Default probe sending rate for the pinglists (10 pps in the paper).
    loss_confirmation_probes:
        How many times a pinger re-sends a probe whose response timed out to
        confirm the loss pattern (2 in the paper, §3.1).  Set to 0 when an
        experiment needs an exact probe budget.
    cycle_seconds / report_interval_seconds:
        Probe-matrix recomputation period and result aggregation window.
    use_symmetry / use_lazy_update / use_decomposition:
        PMC speed-ups to enable.
    ordered_pairs:
        Enumerate candidate paths for ordered ToR pairs (paper counting) or
        unordered (default; both directions of a path probe the same links).
    churn_rebuild_threshold:
        Maximum number of changed network elements (links + switches, downs
        plus recoveries) an incremental cycle will absorb through incidence
        masking; larger deltas trigger a full rebuild.  The paper has no
        equivalent (it always rebuilds); the default of 8 comfortably covers
        the "handful of devices per 10-minute cycle" churn the paper's
        setting implies.
    shard_by_pods:
        Run PMC over the pod-sharded decomposition instead of exact
        connected components: one subproblem per pod plus a residual shard
        for cross-pod paths.  Shards solve independently (and in parallel
        with ``jobs > 1``), the warm cache becomes a
        :class:`~repro.core.ShardedSolutionCache` with one bucket per pod,
        and incremental cycles re-solve only the shards the churn touched.
    jobs:
        Worker processes for PMC subproblem solves; ``None`` resolves
        through the ``REPRO_JOBS`` environment variable (default 1).
        Results are byte-identical at any setting.
    intrapod_paths:
        Enumerate the short ``edge -> agg -> edge`` intra-pod candidate
        paths as well (Fattree only; ignored elsewhere).  Without them every
        default Fattree candidate crosses the core, so the pod sharding
        degenerates to a single residual shard.
    """

    alpha: int = 3
    beta: int = 1
    pingers_per_tor: int = 2
    path_replication: int = 2
    probes_per_second: float = 10.0
    loss_confirmation_probes: int = 2
    cycle_seconds: float = 600.0
    report_interval_seconds: float = 30.0
    use_symmetry: bool = False
    use_lazy_update: bool = True
    use_decomposition: bool = True
    ordered_pairs: bool = False
    churn_rebuild_threshold: int = 8
    shard_by_pods: bool = False
    jobs: Optional[int] = None
    intrapod_paths: bool = False

    def __post_init__(self) -> None:
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.shard_by_pods and self.use_symmetry:
            raise ValueError("shard_by_pods is incompatible with use_symmetry")
        if self.pingers_per_tor < 1:
            raise ValueError("pingers_per_tor must be >= 1")
        if self.path_replication < 1:
            raise ValueError("path_replication must be >= 1")
        if self.probes_per_second <= 0:
            raise ValueError("probes_per_second must be positive")
        if self.loss_confirmation_probes < 0:
            raise ValueError("loss_confirmation_probes must be non-negative")
        if self.churn_rebuild_threshold < 0:
            raise ValueError("churn_rebuild_threshold must be non-negative")


@dataclass
class ControllerCycle:
    """Everything produced by one controller cycle.

    ``mode`` records how the cycle was computed (``"full"`` rebuild or
    ``"incremental"`` masked update), ``delta`` the churn consumed since the
    previous cycle (``None`` for the first cycle), and ``changed_pingers``
    which pinglists actually differ from the previous cycle's -- the set a
    production controller would re-push over HTTP (incremental cycles only).

    With ``ControllerConfig.shard_by_pods``, ``touched_shards`` lists the
    pods whose shard was actually re-solved this cycle (``reused`` is false
    on its :class:`~repro.core.ShardOutcome`); shards replayed from the warm
    cache are excluded.  ``None`` when PMC ran unsharded.
    """

    version: int
    probe_matrix: ProbeMatrix
    pmc_result: PMCResult
    pinger_assignment: Dict[str, List[str]]
    pinglists: Dict[str, Pinglist]
    mode: str = "full"
    delta: Optional[TopologyDelta] = None
    changed_pingers: Optional[Tuple[str, ...]] = None
    touched_shards: Optional[Tuple[int, ...]] = None

    @property
    def num_pingers(self) -> int:
        return len(self.pinglists)

    def pinglist_for(self, server: str) -> Pinglist:
        return self.pinglists[server]


class Controller:
    """Builds probe matrices and distributes pinglists."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[ControllerConfig] = None,
        watchdog: Optional[Watchdog] = None,
    ):
        self.topology = topology
        self.config = config or ControllerConfig()
        self.watchdog = watchdog or Watchdog(topology)
        self._version = 0
        # Incremental-cycle state: the candidate enumeration and its routing
        # matrix are pure functions of the (immutable) topology, so they are
        # computed once and shared by every subsequent cycle; the warm cache
        # memoizes solved CELF subproblems by content digest.
        self._candidate_paths: Optional[List[Path]] = None
        self._full_matrix: Optional[RoutingMatrix] = None
        # Pod-sharded controllers keep one warm bucket per pod so churn in
        # one pod cannot evict another pod's cached solution.
        self._warm = (
            ShardedSolutionCache() if self.config.shard_by_pods else CELFSolutionCache()
        )
        self._planned_snapshot: Optional[HealthSnapshot] = None
        self._last_cycle: Optional[ControllerCycle] = None

    # ----------------------------------------------------------- shared state
    def _pmc_options(self) -> PMCOptions:
        config = self.config
        return PMCOptions(
            alpha=config.alpha,
            beta=config.beta,
            use_decomposition=config.use_decomposition,
            use_lazy_update=config.use_lazy_update,
            use_symmetry=config.use_symmetry,
            shard_by_pods=config.shard_by_pods,
            jobs=config.jobs,
        )

    def candidate_paths(self) -> List[Path]:
        """The pristine topology's candidate paths (computed once, cached)."""
        if self._candidate_paths is None:
            kwargs = {}
            if self.config.intrapod_paths and isinstance(self.topology, FatTreeTopology):
                kwargs["include_intrapod_agg"] = True
            self._candidate_paths = enumerate_candidate_paths(
                self.topology, ordered=self.config.ordered_pairs, **kwargs
            )
        return self._candidate_paths

    def _full_routing_matrix(self) -> RoutingMatrix:
        """Routing matrix over *all* candidate paths (the maskable cache)."""
        if self._full_matrix is None:
            self._full_matrix = RoutingMatrix(self.topology, self.candidate_paths())
        return self._full_matrix

    def close(self) -> None:
        """Release dispatch-plane resources held by the cached routing matrix.

        Pod-sharded dispatch may have exported the cached matrix's incidence
        into a shared-memory segment (see
        :meth:`~repro.core.incidence.IncidenceIndex.share`); retiring the
        controller unlinks it.  Idempotent, and safe on controllers that
        never dispatched -- nothing was shared, nothing is released.  The
        process-exit sweep covers controllers nobody closes.
        """
        if self._full_matrix is not None:
            self._full_matrix.incidence.release_share()

    # --------------------------------------------------------------- PMC step
    def compute_probe_matrix(self) -> PMCResult:
        """Run PMC against the watchdog's current health state (cold rebuild).

        Candidate paths are enumerated on the *pristine* topology and paths
        crossing any known-bad element are dropped (§6.1, footnote 4), so the
        probe matrix stays expressed in the original topology's link ids --
        the frame of reference the simulator, the diagnoser and the
        experiments share.  Filtering the pristine enumeration (rather than
        re-enumerating on a failure-trimmed graph) keeps the specialised
        Fattree/VL2/BCube enumerators in play and is exactly the semantics
        the incremental cycle reproduces through link masks.
        """
        failed = self.watchdog.failed_probe_link_ids()
        if failed:
            paths = [p for p in self.candidate_paths() if not (p.link_ids & failed)]
            routing_matrix = RoutingMatrix(self.topology, paths)
        else:
            paths = self.candidate_paths()
            routing_matrix = self._full_routing_matrix()
        options = self._pmc_options()
        orbits = None
        if self.config.use_symmetry:
            # Orbit signatures always come from the original topology (§4.3),
            # computed over the surviving walks.
            orbits = PathOrbits.from_walks(self.topology, [p.nodes for p in paths])
        return construct_probe_matrix(routing_matrix, options, orbits=orbits)

    # ----------------------------------------------------------- pinger step
    def select_pingers(self) -> Dict[str, List[str]]:
        """Choose pinger servers under every ToR switch.

        ToRs without healthy servers (or topologies without servers at all,
        e.g. BCube where servers are modelled as switches) fall back to using
        the ToR node itself as the probing endpoint.
        """
        config = self.config
        assignment: Dict[str, List[str]] = {}
        for tor in self.topology.tor_switches:
            healthy = self.watchdog.healthy_servers_under(tor.name)
            if healthy:
                assignment[tor.name] = healthy[: config.pingers_per_tor]
            else:
                assignment[tor.name] = [tor.name]
        return assignment

    # --------------------------------------------------------- pinglist step
    def build_pinglists(
        self,
        probe_matrix: ProbeMatrix,
        pinger_assignment: Mapping[str, Sequence[str]],
    ) -> Dict[str, Pinglist]:
        """Split the probe matrix rows into per-pinger pinglists."""
        config = self.config
        pinglists: Dict[str, Pinglist] = {}
        for tor_name, pingers in pinger_assignment.items():
            intra_rack = [
                node.name
                for node in self.topology.servers_under(tor_name)
                if node.name not in pingers
            ] if self.topology.node(tor_name).is_switch else []
            for pinger in pingers:
                pinglists[pinger] = Pinglist(
                    version=self._version + 1,
                    pinger_server=pinger,
                    intra_rack_targets=tuple(intra_rack),
                    probes_per_second=config.probes_per_second,
                    cycle_seconds=config.cycle_seconds,
                    report_interval_seconds=config.report_interval_seconds,
                )

        for path_index, path in enumerate(probe_matrix.paths):
            pingers = list(pinger_assignment.get(path.src, []))
            if not pingers:
                continue
            replication = min(config.path_replication, len(pingers))
            # Rotate the starting pinger with the path index so load spreads
            # evenly across the pingers of a rack.
            start = path_index % len(pingers)
            chosen = [pingers[(start + offset) % len(pingers)] for offset in range(replication)]
            target = self._target_server(path.dst, path_index)
            for pinger in chosen:
                pinglists[pinger].entries.append(
                    PinglistEntry(
                        path_index=path_index,
                        target_server=target,
                        waypoint=path.via,
                        node_walk=path.nodes,
                    )
                )
        return pinglists

    def _target_server(self, dst_tor: str, path_index: int) -> str:
        """Pick the responder server under the destination ToR for a path."""
        node = self.topology.node(dst_tor)
        if not node.is_switch:
            return dst_tor
        servers = self.watchdog.healthy_servers_under(dst_tor)
        if not servers:
            return dst_tor
        return servers[path_index % len(servers)]

    # ------------------------------------------------------------------ cycle
    def _finish_cycle(
        self,
        pmc_result: PMCResult,
        mode: str,
        delta: Optional[TopologyDelta],
    ) -> ControllerCycle:
        pinger_assignment = self.select_pingers()
        pinglists = self.build_pinglists(pmc_result.probe_matrix, pinger_assignment)
        changed: Optional[Tuple[str, ...]] = None
        if mode == "incremental" and self._last_cycle is not None:
            changed = self._diff_pinglists(self._last_cycle.pinglists, pinglists)
        touched: Optional[Tuple[int, ...]] = None
        if pmc_result.shards is not None:
            touched = tuple(
                shard.pod
                for shard in pmc_result.shards
                if shard.pod is not None and not shard.reused
            )
        self._version += 1
        self._planned_snapshot = self.watchdog.snapshot()
        cycle = ControllerCycle(
            version=self._version,
            probe_matrix=pmc_result.probe_matrix,
            pmc_result=pmc_result,
            pinger_assignment=pinger_assignment,
            pinglists=pinglists,
            mode=mode,
            delta=delta,
            changed_pingers=changed,
            touched_shards=touched,
        )
        self._last_cycle = cycle
        return cycle

    @staticmethod
    def _diff_pinglists(
        old: Mapping[str, Pinglist], new: Mapping[str, Pinglist]
    ) -> Tuple[str, ...]:
        """Pingers whose work orders changed (ignoring the version stamp)."""
        changed = []
        for name in sorted(set(old) | set(new)):
            before, after = old.get(name), new.get(name)
            if (
                before is None
                or after is None
                or before.entries != after.entries
                or before.intra_rack_targets != after.intra_rack_targets
            ):
                changed.append(name)
        return tuple(changed)

    def run_cycle(self) -> ControllerCycle:
        """One full path-computation cycle (complete rebuild, §3.1)."""
        delta = None
        if self._planned_snapshot is not None:
            delta = TopologyDelta.between(self._planned_snapshot, self.watchdog.snapshot())
        return self._finish_cycle(self.compute_probe_matrix(), mode="full", delta=delta)

    def run_incremental_cycle(self) -> ControllerCycle:
        """One churn-aware cycle: mask the delta instead of rebuilding.

        Consumes the :class:`~repro.topology.TopologyDelta` between the last
        planned snapshot and the watchdog's current one.  Small deltas are
        translated into ``apply_link_mask`` / ``revert_link_mask`` calls on
        the cached incidence index and PMC re-runs only over the surviving
        candidate rows (warm-started per decomposition subproblem), which is
        byte-identical to -- and much cheaper than -- a cold rebuild.  Falls
        back to :meth:`run_cycle` for the first cycle, when symmetry batching
        is enabled, or when churn exceeds
        ``ControllerConfig.churn_rebuild_threshold``.
        """
        snapshot = self.watchdog.snapshot()
        delta = (
            TopologyDelta.between(self._planned_snapshot, snapshot)
            if self._planned_snapshot is not None
            else None
        )
        if (
            delta is None
            or self.config.use_symmetry
            or delta.churn > self.config.churn_rebuild_threshold
        ):
            return self._finish_cycle(self.compute_probe_matrix(), mode="full", delta=delta)

        matrix = self._full_routing_matrix()
        index = matrix.incidence
        target = {
            link_id
            for link_id in self.watchdog.failed_probe_link_ids()
            if index.contains_link(link_id)
        }
        current = set(index.masked_link_ids)
        index.apply_link_mask(sorted(target - current))
        index.revert_link_mask(sorted(current - target))
        pmc_result = construct_probe_matrix_masked(
            matrix, self._pmc_options(), warm=self._warm
        )
        return self._finish_cycle(pmc_result, mode="incremental", delta=delta)
