"""The deTector controller (§3.1, §6.1).

Once per cycle (10 minutes in the paper) the controller

1. reads the current topology and server health from the watchdog,
2. runs PMC to construct the probe matrix,
3. selects 2-4 pinger servers under every ToR switch,
4. splits the probe matrix into per-pinger pinglists, giving every path to at
   least two pingers for fault tolerance, and
5. hands the pinglists to the pingers (XML over HTTP in the paper, direct
   objects here -- the XML serialisation is still exercised).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import PMCOptions, PMCResult, ProbeMatrix, construct_probe_matrix
from ..routing import Path, RoutingMatrix, enumerate_candidate_paths, walk_to_link_ids
from ..topology import PathOrbits, Topology
from .pinglist import Pinglist, PinglistEntry
from .watchdog import Watchdog

__all__ = ["ControllerConfig", "ControllerCycle", "Controller"]


@dataclass(frozen=True)
class ControllerConfig:
    """Controller tuning knobs.

    Attributes
    ----------
    alpha, beta:
        Coverage and identifiability targets handed to PMC.
    pingers_per_tor:
        How many servers under each ToR act as pingers (2-4 in the paper).
    path_replication:
        Every probe path is assigned to at least this many pingers under its
        source ToR so a single pinger failure does not lose link coverage.
    probes_per_second:
        Default probe sending rate for the pinglists (10 pps in the paper).
    loss_confirmation_probes:
        How many times a pinger re-sends a probe whose response timed out to
        confirm the loss pattern (2 in the paper, §3.1).  Set to 0 when an
        experiment needs an exact probe budget.
    cycle_seconds / report_interval_seconds:
        Probe-matrix recomputation period and result aggregation window.
    use_symmetry / use_lazy_update / use_decomposition:
        PMC speed-ups to enable.
    ordered_pairs:
        Enumerate candidate paths for ordered ToR pairs (paper counting) or
        unordered (default; both directions of a path probe the same links).
    """

    alpha: int = 3
    beta: int = 1
    pingers_per_tor: int = 2
    path_replication: int = 2
    probes_per_second: float = 10.0
    loss_confirmation_probes: int = 2
    cycle_seconds: float = 600.0
    report_interval_seconds: float = 30.0
    use_symmetry: bool = False
    use_lazy_update: bool = True
    use_decomposition: bool = True
    ordered_pairs: bool = False

    def __post_init__(self) -> None:
        if self.pingers_per_tor < 1:
            raise ValueError("pingers_per_tor must be >= 1")
        if self.path_replication < 1:
            raise ValueError("path_replication must be >= 1")
        if self.probes_per_second <= 0:
            raise ValueError("probes_per_second must be positive")
        if self.loss_confirmation_probes < 0:
            raise ValueError("loss_confirmation_probes must be non-negative")


@dataclass
class ControllerCycle:
    """Everything produced by one controller cycle."""

    version: int
    probe_matrix: ProbeMatrix
    pmc_result: PMCResult
    pinger_assignment: Dict[str, List[str]]
    pinglists: Dict[str, Pinglist]

    @property
    def num_pingers(self) -> int:
        return len(self.pinglists)

    def pinglist_for(self, server: str) -> Pinglist:
        return self.pinglists[server]


class Controller:
    """Builds probe matrices and distributes pinglists."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[ControllerConfig] = None,
        watchdog: Optional[Watchdog] = None,
    ):
        self.topology = topology
        self.config = config or ControllerConfig()
        self.watchdog = watchdog or Watchdog(topology)
        self._version = 0

    # --------------------------------------------------------------- PMC step
    def compute_probe_matrix(self) -> PMCResult:
        """Run PMC on the watchdog-filtered topology.

        Paths are planned on the filtered topology (so they avoid known-bad
        links), but the returned probe matrix is expressed in the *original*
        topology's link ids, which is the frame of reference the simulator,
        the diagnoser and the experiments share.
        """
        config = self.config
        probe_topology = self.watchdog.probe_topology()
        paths = enumerate_candidate_paths(probe_topology, ordered=config.ordered_pairs)
        if probe_topology is not self.topology:
            paths = [
                Path(
                    path_id=i,
                    nodes=path.nodes,
                    link_ids=walk_to_link_ids(self.topology, path.nodes),
                    src=path.src,
                    dst=path.dst,
                    via=path.via,
                )
                for i, path in enumerate(paths)
            ]
            probe_topology = self.topology
        routing_matrix = RoutingMatrix(probe_topology, paths)
        options = PMCOptions(
            alpha=config.alpha,
            beta=config.beta,
            use_decomposition=config.use_decomposition,
            use_lazy_update=config.use_lazy_update,
            use_symmetry=config.use_symmetry,
        )
        orbits = None
        if config.use_symmetry:
            orbits = PathOrbits.from_walks(probe_topology, [p.nodes for p in paths])
        return construct_probe_matrix(routing_matrix, options, orbits=orbits)

    # ----------------------------------------------------------- pinger step
    def select_pingers(self) -> Dict[str, List[str]]:
        """Choose pinger servers under every ToR switch.

        ToRs without healthy servers (or topologies without servers at all,
        e.g. BCube where servers are modelled as switches) fall back to using
        the ToR node itself as the probing endpoint.
        """
        config = self.config
        assignment: Dict[str, List[str]] = {}
        for tor in self.topology.tor_switches:
            healthy = self.watchdog.healthy_servers_under(tor.name)
            if healthy:
                assignment[tor.name] = healthy[: config.pingers_per_tor]
            else:
                assignment[tor.name] = [tor.name]
        return assignment

    # --------------------------------------------------------- pinglist step
    def build_pinglists(
        self,
        probe_matrix: ProbeMatrix,
        pinger_assignment: Mapping[str, Sequence[str]],
    ) -> Dict[str, Pinglist]:
        """Split the probe matrix rows into per-pinger pinglists."""
        config = self.config
        pinglists: Dict[str, Pinglist] = {}
        for tor_name, pingers in pinger_assignment.items():
            intra_rack = [
                node.name
                for node in self.topology.servers_under(tor_name)
                if node.name not in pingers
            ] if self.topology.node(tor_name).is_switch else []
            for pinger in pingers:
                pinglists[pinger] = Pinglist(
                    version=self._version + 1,
                    pinger_server=pinger,
                    intra_rack_targets=tuple(intra_rack),
                    probes_per_second=config.probes_per_second,
                    cycle_seconds=config.cycle_seconds,
                    report_interval_seconds=config.report_interval_seconds,
                )

        for path_index, path in enumerate(probe_matrix.paths):
            pingers = list(pinger_assignment.get(path.src, []))
            if not pingers:
                continue
            replication = min(config.path_replication, len(pingers))
            # Rotate the starting pinger with the path index so load spreads
            # evenly across the pingers of a rack.
            start = path_index % len(pingers)
            chosen = [pingers[(start + offset) % len(pingers)] for offset in range(replication)]
            target = self._target_server(path.dst, path_index)
            for pinger in chosen:
                pinglists[pinger].entries.append(
                    PinglistEntry(
                        path_index=path_index,
                        target_server=target,
                        waypoint=path.via,
                        node_walk=path.nodes,
                    )
                )
        return pinglists

    def _target_server(self, dst_tor: str, path_index: int) -> str:
        """Pick the responder server under the destination ToR for a path."""
        node = self.topology.node(dst_tor)
        if not node.is_switch:
            return dst_tor
        servers = self.watchdog.healthy_servers_under(dst_tor)
        if not servers:
            return dst_tor
        return servers[path_index % len(servers)]

    # ------------------------------------------------------------------ cycle
    def run_cycle(self) -> ControllerCycle:
        """One full path-computation cycle."""
        pmc_result = self.compute_probe_matrix()
        pinger_assignment = self.select_pingers()
        pinglists = self.build_pinglists(pmc_result.probe_matrix, pinger_assignment)
        self._version += 1
        return ControllerCycle(
            version=self._version,
            probe_matrix=pmc_result.probe_matrix,
            pmc_result=pmc_result,
            pinger_assignment=pinger_assignment,
            pinglists=pinglists,
        )
