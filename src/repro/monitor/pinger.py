"""The pinger module (§3.1, §6.1).

Each pinger owns the probe paths its pinglist assigns to it.  During an
aggregation window (30 seconds in the paper) it loops over its paths, sends
source-routed UDP probes with varying source ports and DSCP values, counts
losses (a probe unanswered within 100 ms is a loss) and posts an aggregate
report to the diagnoser.

The probing budget is expressed exactly as in the paper: the pinger sends
``probes_per_second`` packets in total, looping over its pinglist, so each of
its ``n`` paths receives about ``probes_per_second * window / n`` probes per
window.  When a loss is detected the pinger optionally re-sends the same
probe content to confirm the loss pattern (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..localization import ObservationSet, PathObservation
from ..routing import Path
from ..simulation import ProbeConfig, ProbeSimulator
from .pinglist import Pinglist

__all__ = ["PingerReport", "Pinger"]


@dataclass
class PingerReport:
    """One pinger's aggregated results for one window (the HTTP POST payload)."""

    pinger_server: str
    window_seconds: float
    observations: ObservationSet
    probes_sent: int
    probes_lost: int

    @property
    def loss_rate(self) -> float:
        return self.probes_lost / self.probes_sent if self.probes_sent else 0.0


class Pinger:
    """Sends probes according to a pinglist and aggregates the outcomes."""

    def __init__(
        self,
        pinglist: Pinglist,
        paths_by_index: Dict[int, Path],
        simulator: ProbeSimulator,
        confirm_losses: int = 2,
    ):
        self.pinglist = pinglist
        self._paths_by_index = paths_by_index
        self._simulator = simulator
        self._confirm_losses = confirm_losses

    @property
    def server_name(self) -> str:
        return self.pinglist.pinger_server

    @property
    def simulator(self) -> ProbeSimulator:
        """The probe simulator this pinger sends through."""
        return self._simulator

    @property
    def confirm_losses(self) -> int:
        """How many confirmation resends follow each detected loss (§3.1)."""
        return self._confirm_losses

    # -------------------------------------------------------------- probing
    def probes_per_path_per_window(self, window_seconds: Optional[float] = None) -> int:
        """How many probes each owned path receives during one window."""
        window = window_seconds or self.pinglist.report_interval_seconds
        num_paths = max(self.pinglist.num_paths, 1)
        budget = self.pinglist.probes_per_second * window
        return max(1, int(budget // num_paths))

    def probe_config(self, probes_per_path: int = 1) -> ProbeConfig:
        """The probe-entropy configuration this pinger's pinglist implies."""
        low_port, high_port = self.pinglist.source_port_range
        return ProbeConfig(
            probes_per_path=max(1, probes_per_path),
            port_range=max(1, high_port - low_port + 1),
            base_port=low_port,
            destination_port=self.pinglist.destination_port,
            dscp_values=self.pinglist.dscp_values,
        )

    def probe_entry(
        self,
        entry,
        probes: int,
        start_sequence: int = 0,
        config: Optional[ProbeConfig] = None,
    ) -> Tuple[int, int]:
        """Send ``probes`` probes on one pinglist entry; returns ``(sent, lost)``.

        The unit of work both window modes are built from: the snapshot path
        sends each entry's whole per-window budget in one call, the telemetry
        engine's :class:`~repro.engine.probes.ProbeScheduler` sends small
        timed batches.  Counts include loss-confirmation resends.
        """
        config = config or self.probe_config(probes)
        path = self._paths_by_index[entry.path_index]
        sent = probes
        lost = 0
        for sequence in range(start_sequence, start_sequence + probes):
            packet = config.packet_for(path, sequence)
            delivered = self._simulator.round_trip(path, packet)
            if not delivered:
                confirmed_lost = 1
                # Confirm the loss pattern by re-sending the same content.
                for _ in range(self._confirm_losses):
                    sent += 1
                    if not self._simulator.round_trip(path, packet):
                        confirmed_lost += 1
                lost += confirmed_lost
        return sent, lost

    def probe_entry_batched(
        self,
        entry,
        probes: int,
        start_sequence: int = 0,
        config: Optional[ProbeConfig] = None,
    ) -> Tuple[int, int]:
        """Vectorized sibling of :meth:`probe_entry` (the engine's hot path).

        Same counters and failure semantics, but whole failure-free paths cost
        one scenario lookup and random draws are consumed in batch order (a
        distinct, individually reproducible random regime -- see
        :meth:`repro.simulation.ProbeSimulator.probe_path_batch`).
        """
        config = config or self.probe_config(probes)
        path = self._paths_by_index[entry.path_index]
        return self._simulator.probe_path_batch(
            path, config, probes, start_sequence, confirm_losses=self._confirm_losses
        )

    def run_window(self, window_seconds: Optional[float] = None) -> PingerReport:
        """Probe every owned path for one aggregation window."""
        window = window_seconds or self.pinglist.report_interval_seconds
        per_path = self.probes_per_path_per_window(window)
        probe_config = self.probe_config(per_path)

        observations = ObservationSet()
        sent_total = 0
        lost_total = 0
        for entry in self.pinglist.entries:
            sent, lost = self.probe_entry(entry, per_path, config=probe_config)
            observations.add(
                PathObservation(path_index=entry.path_index, sent=sent, lost=lost)
            )
            sent_total += sent
            lost_total += lost

        return PingerReport(
            pinger_server=self.server_name,
            window_seconds=window,
            observations=observations,
            probes_sent=sent_total,
            probes_lost=lost_total,
        )

    # ------------------------------------------------------------ accounting
    def probes_per_window(self, window_seconds: Optional[float] = None) -> int:
        """Nominal probe budget per window (excluding loss confirmations)."""
        return self.probes_per_path_per_window(window_seconds) * self.pinglist.num_paths
