"""Monitoring system components: controller, pingers, responders, diagnoser, watchdog."""

from .controller import Controller, ControllerConfig, ControllerCycle
from .diagnoser import Alert, Diagnoser, DiagnosisReport
from .pinger import Pinger, PingerReport
from .pinglist import Pinglist, PinglistEntry
from .responder import Responder
from .system import DetectorSystem, WindowOutcome
from .watchdog import Watchdog

__all__ = [
    "Controller",
    "ControllerConfig",
    "ControllerCycle",
    "Pinglist",
    "PinglistEntry",
    "Pinger",
    "PingerReport",
    "Responder",
    "Diagnoser",
    "DiagnosisReport",
    "Alert",
    "Watchdog",
    "DetectorSystem",
    "WindowOutcome",
]
