"""The responder module (§3.1).

Responders are stateless user-space processes running on every server: they
listen on the probing port, timestamp incoming probes and echo them back.  In
the simulator the echo traversal is handled by
:meth:`repro.simulation.ProbeSimulator.round_trip`; this class models the
per-packet behaviour (port filtering, timestamping, statelessness) so the
monitoring pipeline and its tests mirror the real component structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..routing import ProbePacket

__all__ = ["Responder"]


@dataclass
class Responder:
    """Echoes probes addressed to it on the configured port."""

    server_name: str
    listen_port: int = 53535
    echoes: int = 0

    def handle(self, packet: ProbePacket, timestamp: float = 0.0) -> Optional[ProbePacket]:
        """Echo a probe back to its sender.

        Returns ``None`` for packets not addressed to this responder's port or
        server (they would simply be dropped by the host's UDP stack).  The
        echoed packet swaps the endpoints and ports and carries the responder
        timestamp in its sequence-preserving payload -- represented here by
        returning the packet unchanged apart from the swap, exactly the
        information the pinger needs to compute an RTT.
        """
        if packet.dst_port != self.listen_port or packet.dst_server != self.server_name:
            return None
        self.echoes += 1
        return replace(
            packet,
            src_server=self.server_name,
            dst_server=packet.src_server,
            src_port=packet.dst_port,
            dst_port=packet.src_port,
        )
