"""Pinglists: the controller -> pinger work orders (§6.1).

A pinglist tells one pinger which probe paths it owns during the current
cycle, plus the probing configuration (packet interval, ports, DSCP values).
The paper serialises pinglists as XML files fetched over HTTP; this module
keeps that wire format (via :mod:`xml.etree.ElementTree`) so the hand-off is
observable and testable, even though in-process the objects are passed
directly.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["PinglistEntry", "Pinglist"]


@dataclass(frozen=True)
class PinglistEntry:
    """One probe path assigned to a pinger.

    Attributes
    ----------
    path_index:
        Row of the probe matrix this entry exercises (the diagnoser aggregates
        reports by this index).
    target_server:
        The responder to address probes to.
    waypoint:
        The pinned core/intermediate switch used for IP-in-IP encapsulation.
    node_walk:
        The switch-level walk, recorded for operator debugging.
    """

    path_index: int
    target_server: str
    waypoint: str
    node_walk: Tuple[str, ...]


@dataclass
class Pinglist:
    """Everything a pinger needs for one probing cycle."""

    version: int
    pinger_server: str
    entries: List[PinglistEntry] = field(default_factory=list)
    intra_rack_targets: Tuple[str, ...] = ()
    probes_per_second: float = 10.0
    source_port_range: Tuple[int, int] = (33434, 33449)
    destination_port: int = 53535
    dscp_values: Tuple[int, ...] = (0,)
    cycle_seconds: float = 600.0
    report_interval_seconds: float = 30.0

    @property
    def num_paths(self) -> int:
        return len(self.entries)

    def path_indices(self) -> List[int]:
        return [entry.path_index for entry in self.entries]

    # ------------------------------------------------------------------- XML
    def to_xml(self) -> str:
        """Serialize to the XML wire format fetched by pingers over HTTP."""
        root = ElementTree.Element(
            "pinglist",
            attrib={
                "version": str(self.version),
                "pinger": self.pinger_server,
                "probes_per_second": str(self.probes_per_second),
                "cycle_seconds": str(self.cycle_seconds),
                "report_interval_seconds": str(self.report_interval_seconds),
                "destination_port": str(self.destination_port),
                "source_port_low": str(self.source_port_range[0]),
                "source_port_high": str(self.source_port_range[1]),
                "dscp": ",".join(str(d) for d in self.dscp_values),
            },
        )
        for entry in self.entries:
            ElementTree.SubElement(
                root,
                "probe",
                attrib={
                    "path_index": str(entry.path_index),
                    "target": entry.target_server,
                    "waypoint": entry.waypoint,
                    "walk": ">".join(entry.node_walk),
                },
            )
        for target in self.intra_rack_targets:
            ElementTree.SubElement(root, "intra_rack", attrib={"target": target})
        return ElementTree.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, payload: str) -> "Pinglist":
        root = ElementTree.fromstring(payload)
        if root.tag != "pinglist":
            raise ValueError(f"expected <pinglist> root element, got <{root.tag}>")
        dscp = tuple(int(v) for v in root.attrib.get("dscp", "0").split(",") if v)
        pinglist = cls(
            version=int(root.attrib["version"]),
            pinger_server=root.attrib["pinger"],
            probes_per_second=float(root.attrib.get("probes_per_second", 10.0)),
            cycle_seconds=float(root.attrib.get("cycle_seconds", 600.0)),
            report_interval_seconds=float(root.attrib.get("report_interval_seconds", 30.0)),
            destination_port=int(root.attrib.get("destination_port", 53535)),
            source_port_range=(
                int(root.attrib.get("source_port_low", 33434)),
                int(root.attrib.get("source_port_high", 33449)),
            ),
            dscp_values=dscp or (0,),
        )
        for element in root.findall("probe"):
            pinglist.entries.append(
                PinglistEntry(
                    path_index=int(element.attrib["path_index"]),
                    target_server=element.attrib["target"],
                    waypoint=element.attrib.get("waypoint", ""),
                    node_walk=tuple(element.attrib.get("walk", "").split(">")),
                )
            )
        pinglist.intra_rack_targets = tuple(
            element.attrib["target"] for element in root.findall("intra_rack")
        )
        return pinglist
