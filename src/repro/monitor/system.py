"""End-to-end deTector system: the testbed-in-a-box used by examples and experiments.

:class:`DetectorSystem` wires the four components (controller, pingers,
responders, diagnoser) around the probing simulator.  One call to
:meth:`DetectorSystem.run_window` reproduces a full §3.2 cycle slice:

* the controller's current probe matrix defines the pinglists,
* every pinger probes its paths against the injected failure scenario,
* the diagnoser merges the reports, runs PLL and produces alerts.

Controller cycles come in two modes (see
:meth:`DetectorSystem.run_controller_cycle`): the paper's full rebuild and
the churn-aware incremental cycle that consumes watchdog deltas.

Experiments evaluate the alerts against the scenario's ground truth with
:func:`repro.localization.evaluate_localization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ProbeMatrix
from ..localization import ConfusionCounts, PLLConfig, PreprocessConfig, evaluate_localization
from ..simulation import FailureScenario, ProbeSimulator
from ..topology import Topology
from .controller import Controller, ControllerConfig, ControllerCycle
from .diagnoser import Diagnoser, DiagnosisReport
from .pinger import Pinger, PingerReport
from .responder import Responder
from .watchdog import Watchdog

__all__ = ["WindowOutcome", "DetectorSystem"]


@dataclass
class WindowOutcome:
    """Everything produced by one 30-second monitoring window."""

    diagnosis: DiagnosisReport
    pinger_reports: List[PingerReport]
    probes_sent: int
    metrics: Optional[ConfusionCounts] = None

    @property
    def suspected_links(self) -> List[int]:
        return self.diagnosis.suspected_links


class DetectorSystem:
    """The complete monitoring system over a simulated data center."""

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        controller_config: Optional[ControllerConfig] = None,
        pll_config: Optional[PLLConfig] = None,
        preprocess_config: Optional[PreprocessConfig] = None,
    ):
        self.topology = topology
        self.rng = rng
        self.watchdog = Watchdog(topology)
        self.controller = Controller(topology, controller_config, watchdog=self.watchdog)
        self._pll_config = pll_config
        self._preprocess_config = preprocess_config
        self.cycle: Optional[ControllerCycle] = None
        self.diagnoser: Optional[Diagnoser] = None
        self.responders: Dict[str, Responder] = {}
        self._simulator = ProbeSimulator(
            topology, FailureScenario(description="no failures"), rng
        )

    # ------------------------------------------------------------------ cycle
    def run_controller_cycle(self, incremental: bool = False) -> ControllerCycle:
        """Recompute the probe matrix and pinglists (the 10-minute cycle).

        Two modes mirror the controller's two cycle flavours:

        * ``incremental=False`` (default) -- the paper's behaviour: a **full
          rebuild**.  Candidate paths are filtered against the watchdog's
          current health state, PMC runs from scratch and every pinglist is
          regenerated.
        * ``incremental=True`` -- the **churn-aware** cycle: the controller
          diffs the watchdog's health snapshot against the one it last
          planned with, masks the delta's links on its cached incidence
          index and warm-starts PMC, falling back to a full rebuild when
          churn exceeds ``ControllerConfig.churn_rebuild_threshold`` (the
          produced cycle's ``mode`` field records which path ran).  Results
          are byte-identical to a full rebuild on the same health state.

        Either way the diagnoser is re-armed with the new probe matrix and
        responders are refreshed, so the next :meth:`run_window` probes with
        the new cycle's pinglists.
        """
        if incremental:
            self.cycle = self.controller.run_incremental_cycle()
        else:
            self.cycle = self.controller.run_cycle()
        self.diagnoser = Diagnoser(
            self.topology,
            self.cycle.probe_matrix,
            pll_config=self._pll_config,
            preprocess_config=self._preprocess_config,
            watchdog=self.watchdog,
        )
        self.responders = {
            server.name: Responder(server_name=server.name)
            for server in self.topology.servers
        }
        return self.cycle

    # Alias matching the controller-side naming; same modes, same semantics.
    run_cycle = run_controller_cycle

    @property
    def probe_matrix(self) -> ProbeMatrix:
        if self.cycle is None:
            raise RuntimeError("run_controller_cycle() must be called first")
        return self.cycle.probe_matrix

    @property
    def simulator(self) -> ProbeSimulator:
        """The probe simulator every pinger of this system sends through."""
        return self._simulator

    # ----------------------------------------------------------------- window
    def inject_failures(self, scenario: FailureScenario) -> None:
        """Install the failure scenario the next window will experience."""
        self._simulator.set_scenario(scenario)

    def build_pingers(self) -> Dict[str, Pinger]:
        """The healthy pingers of the current cycle, in pinglist order.

        Down pingers are simply absent (they stop reporting).  Both window
        modes are built on this set: the snapshot path runs each pinger's
        whole window in one shot, the telemetry engine's probe scheduler
        turns each one into a timed probe stream.
        """
        paths_by_index = {
            index: path for index, path in enumerate(self.probe_matrix.paths)
        }
        pingers: Dict[str, Pinger] = {}
        for server, pinglist in self.cycle.pinglists.items():
            if not self.watchdog.is_server_healthy(server):
                continue
            pingers[server] = Pinger(
                pinglist,
                paths_by_index,
                self._simulator,
                confirm_losses=self.controller.config.loss_confirmation_probes,
            )
        return pingers

    def iter_pinger_reports(self):
        """Run every healthy pinger's window once, yielding its report."""
        for pinger in self.build_pingers().values():
            yield pinger.run_window()

    def run_window(
        self,
        scenario: Optional[FailureScenario] = None,
        evaluate: bool = True,
    ) -> WindowOutcome:
        """Run one 30-second aggregation window end to end.

        Since the telemetry engine landed this is literally a one-tick engine
        run on a frozen clock (:meth:`repro.engine.TelemetryEngine.run_snapshot_window`):
        one probe event fires every pinger's window, one window-close event
        runs the diagnoser.  Probe outcomes and random-draw order are
        identical to the historical inline loop.
        """
        if self.cycle is None or self.diagnoser is None:
            self.run_controller_cycle()
        if scenario is not None:
            self.inject_failures(scenario)

        from ..engine.engine import TelemetryEngine  # local import: engine sits above monitor

        tick = TelemetryEngine.run_snapshot_window(self, fold_stream=False)
        reports = tick.reports
        probes_sent = sum(report.probes_sent for report in reports)
        diagnosis = tick.diagnosis
        metrics = None
        if evaluate:
            truth = self._simulator.scenario.bad_link_ids
            observable_truth = [
                link for link in truth if self.probe_matrix.contains_link(link)
            ]
            metrics = evaluate_localization(
                observable_truth, diagnosis.suspected_links, self.probe_matrix.link_ids
            )
        return WindowOutcome(
            diagnosis=diagnosis,
            pinger_reports=reports,
            probes_sent=probes_sent,
            metrics=metrics,
        )
