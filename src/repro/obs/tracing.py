"""Sim-time tracing spans: a deterministic, near-zero-overhead span API.

The tracer is the second layer of the observability plane.  Spans are
timestamped off the engine's **simulated clock**, not the wall clock, which
buys a property real tracing systems cannot have: for a fixed seed the entire
span tree -- ids, nesting, names, labels, start/end times -- is byte-identical
across ``REPRO_BACKEND``, ``REPRO_JOBS`` and machines, so trace exports are
gateable in CI exactly like cost counters.  Wall-clock duration, when a caller
measures it, rides along as an *informational* field excluded from the
deterministic JSONL export.

Instrumentation sites call the module-level free functions::

    with tracing.span("pmc.construct", subproblems=5):
        ...
    tracing.record("pmc.solve", pod=3, selected=17, wall_seconds=w)

Both are no-ops (one attribute load + ``is None`` test) unless a
:class:`Tracer` is installed, which the engine does around :meth:`run` /
serve advances via :func:`activated` -- the hot probe path pays nothing when
tracing is off, preserving the 2M events/s serve gate.

Some instrumentation sites are inherently machine- or ``jobs``-dependent:
``pool.spawn`` only fires when a process pool is actually provisioned and
``shm.export`` only when a shared-memory segment is created, neither of
which happens at ``jobs=1``.  Those sites pass ``informational=True``:
informational spans draw ids from a separate (negative) counter, never
parent other spans, and are excluded from the deterministic JSONL export,
so the byte-gateable span stream stays identical across ``REPRO_JOBS``
while the spans remain visible in :meth:`Tracer.finished_spans` and the
chrome trace.

Exports: :meth:`Tracer.export_jsonl` (one sorted-key JSON object per span,
the byte-gateable form) and :func:`to_chrome_trace` /
:func:`spans_from_chrome_trace` (the ``chrome://tracing`` "trace event"
format and its inverse, round-trip tested).
"""

from __future__ import annotations

import json
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .. import contracts

__all__ = [
    "Span",
    "Tracer",
    "activated",
    "current_tracer",
    "record",
    "span",
    "to_chrome_trace",
    "spans_from_chrome_trace",
]


@dataclass
class Span:
    """One finished or open span on the simulated timeline.

    ``span_id`` is the creation index (0-based, per tracer), ``parent_id``
    the enclosing span's id or ``None`` at the root -- both deterministic
    because spans are only ever created from the single-threaded sim loop.
    ``wall_seconds`` is informational (machine-dependent) and excluded from
    the deterministic export.  ``informational`` marks whole spans whose
    very existence depends on the machine or ``REPRO_JOBS`` (pool spawns,
    shm exports): they carry *negative* ids from a separate counter so the
    deterministic 0-based sequence is untouched, and :meth:`Tracer.export_jsonl`
    drops them unless asked.
    """

    span_id: int
    name: str
    start: float
    parent_id: Optional[int] = None
    end: Optional[float] = None
    labels: Dict[str, object] = field(default_factory=dict)
    wall_seconds: float = 0.0
    informational: bool = False

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self, include_wall: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "labels": dict(sorted(self.labels.items())),
        }
        if include_wall:
            payload["wall_seconds"] = self.wall_seconds
        if self.informational:
            payload["informational"] = True
        return payload


class Tracer:
    """Collects spans against a sim clock (anything with a ``now`` attribute).

    With no clock bound, timestamps default to 0.0 -- callers that only use
    explicit ``start``/``end`` overrides (or :func:`record` with both bounds)
    still produce meaningful spans.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0
        self._next_info_id = 0
        self._drained = 0

    # ------------------------------------------------------------------ time
    def _now(self) -> float:
        return float(self.clock.now) if self.clock is not None else 0.0

    # ----------------------------------------------------------------- spans
    @contextmanager
    def span(
        self,
        name: str,
        start: Optional[float] = None,
        informational: bool = False,
        **labels,
    ):
        """Open a span for the duration of the ``with`` body.

        ``start`` backdates the span (the engine stamps a window span with
        the window's *open* time while creating it at close time); the end is
        always the clock's value on exit.  Yields the :class:`Span` so the
        body can attach labels it only learns along the way.
        ``informational=True`` routes the span to the machine-dependent side
        stream (negative id, never a parent, excluded from the deterministic
        export).
        """
        sp = self._open(name, start, labels, informational)
        try:
            yield sp
        finally:
            self._close(sp)

    def record(
        self,
        name: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        wall_seconds: float = 0.0,
        informational: bool = False,
        **labels,
    ) -> Span:
        """Append an already-finished span (an instant event by default)."""
        now = self._now()
        sp = Span(
            span_id=self._take_id(informational),
            name=name,
            start=now if start is None else float(start),
            parent_id=self._stack[-1].span_id if self._stack else None,
            end=now if end is None else float(end),
            labels=dict(labels),
            wall_seconds=wall_seconds,
            informational=informational,
        )
        self._spans.append(sp)
        return sp

    def _take_id(self, informational: bool) -> int:
        # Informational spans burn ids from their own (negative) counter so
        # their presence or absence cannot shift the deterministic sequence.
        if informational:
            self._next_info_id += 1
            return -self._next_info_id
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _open(
        self,
        name: str,
        start: Optional[float],
        labels: Dict[str, object],
        informational: bool = False,
    ) -> Span:
        sp = Span(
            span_id=self._take_id(informational),
            name=name,
            start=self._now() if start is None else float(start),
            parent_id=self._stack[-1].span_id if self._stack else None,
            labels=dict(labels),
            informational=informational,
        )
        self._spans.append(sp)
        if not informational:
            self._stack.append(sp)
        return sp

    def _close(self, sp: Span) -> None:
        sp.end = self._now()
        if sp.informational:
            return  # never on the stack, never a parent
        # Tolerate exception-unwound stacks: pop through to this span.
        while self._stack:
            top = self._stack.pop()
            if top is sp:
                break

    # --------------------------------------------------------------- exports
    def finished_spans(self) -> List[Span]:
        """Every closed span so far, in creation order (open spans excluded)."""
        return [sp for sp in self._spans if sp.end is not None]

    def drain(self) -> List[Span]:
        """Finished spans appended since the last drain (streaming writers)."""
        fresh = [sp for sp in self._spans[self._drained :] if sp.end is not None]
        self._drained = len(self._spans)
        return fresh

    def export_jsonl(
        self,
        spans: Optional[Iterable[Span]] = None,
        include_wall: bool = False,
        include_informational: bool = False,
    ) -> str:
        """One sorted-key JSON object per line; deterministic unless
        ``include_wall`` adds the informational wall-clock field or
        ``include_informational`` keeps the machine-dependent side stream."""
        chosen = self.finished_spans() if spans is None else list(spans)
        if not include_informational:
            chosen = [sp for sp in chosen if not sp.informational]
        return "".join(
            json.dumps(sp.to_dict(include_wall=include_wall), sort_keys=True) + "\n"
            for sp in chosen
        )


# ---------------------------------------------------------------------------
# module-global active tracer (the near-zero-overhead indirection)
#
# The actual global lives in ``repro.contracts`` -- the dependency-free seam
# layers below the observability plane use to emit spans without importing
# ``repro.obs`` (layer rule REP007).  These free functions are the
# obs-flavoured face of the same slot.
# ---------------------------------------------------------------------------


def current_tracer() -> Optional[Tracer]:
    return contracts.active_tracer()


def span(
    name: str,
    start: Optional[float] = None,
    informational: bool = False,
    **labels,
):
    """Context manager: a span on the active tracer, or a no-op without one."""
    tracer = contracts.active_tracer()
    if tracer is None:
        return nullcontext()
    return tracer.span(name, start=start, informational=informational, **labels)


def record(
    name: str,
    start: Optional[float] = None,
    end: Optional[float] = None,
    wall_seconds: float = 0.0,
    informational: bool = False,
    **labels,
) -> Optional[Span]:
    """A finished span on the active tracer, or ``None`` without one."""
    tracer = contracts.active_tracer()
    if tracer is None:
        return None
    return tracer.record(
        name,
        start=start,
        end=end,
        wall_seconds=wall_seconds,
        informational=informational,
        **labels,
    )


@contextmanager
def activated(tracer: Optional[Tracer]):
    """Install *tracer* as the process-global active tracer for the body.

    ``None`` simply runs the body untraced.  The previous tracer is restored
    on exit, so nested engines (snapshot windows inside an experiment
    harness) cannot leak spans into each other.
    """
    if tracer is None:
        yield None
        return
    previous = contracts.install_tracer(tracer)
    try:
        yield tracer
    finally:
        contracts.install_tracer(previous)


# ---------------------------------------------------------------------------
# chrome://tracing converter (and its inverse, for the round-trip gate)
# ---------------------------------------------------------------------------

def to_chrome_trace(spans: Iterable[Span], include_wall: bool = False) -> Dict[str, object]:
    """Render spans as Chrome "trace event format" complete events.

    Sim seconds map to trace microseconds.  ``args`` carries the span's
    labels plus the ``span_id``/``parent_id``/exact-bound bookkeeping that
    makes the conversion exactly invertible (:func:`spans_from_chrome_trace`)
    -- the ``ts``/``dur`` microsecond floats alone would round.
    """
    events: List[Dict[str, object]] = []
    for sp in spans:
        if sp.end is None:
            continue
        args: Dict[str, object] = {
            "labels": dict(sorted(sp.labels.items())),
            "span_id": sp.span_id,
            "parent_id": sp.parent_id,
            "start": sp.start,
            "end": sp.end,
        }
        if include_wall:
            args["wall_seconds"] = sp.wall_seconds
        if sp.informational:
            args["informational"] = True
        events.append(
            {
                "name": sp.name,
                "ph": "X",
                "ts": sp.start * 1e6,
                "dur": (sp.end - sp.start) * 1e6,
                "pid": 0,
                "tid": 0,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def spans_from_chrome_trace(payload: Dict[str, object]) -> List[Span]:
    """Invert :func:`to_chrome_trace` (spans in ``span_id`` order)."""
    spans: List[Span] = []
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        start = float(args.get("start", float(event["ts"]) / 1e6))
        end = float(args.get("end", start + float(event["dur"]) / 1e6))
        spans.append(
            Span(
                span_id=int(args["span_id"]),
                name=str(event["name"]),
                start=start,
                parent_id=args.get("parent_id"),
                end=end,
                labels=dict(args.get("labels", {})),
                wall_seconds=float(args.get("wall_seconds", 0.0)),
                informational=bool(args.get("informational", False)),
            )
        )
    return sorted(spans, key=lambda sp: sp.span_id)
