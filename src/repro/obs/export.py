"""One exporter for every BENCH writer: shared schema for counter blocks.

Before the observability plane, each benchmark harness hand-rolled its
counter serialization (five slightly different shapes across
``bench_pmc.py``, ``bench_engine.py``, ``bench_podshard.py``,
``bench_incremental.py`` and ``bench_runner.py``).  Everything now funnels
through two helpers:

* :func:`counters_block` -- the per-row counter block.  Keys stay sorted
  (JSON-stable), values are exact ints, and the ``counters_schema`` tag lets
  downstream tooling detect the shape without guessing;
* :func:`write_bench_report` -- the report envelope every ``BENCH_*.json``
  shares (benchmark name, config, python version, rows, schema tag).

Both render deterministically for deterministic inputs; wall-clock fields
live in the rows the harnesses build, never in the envelope itself.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Mapping, Optional, Union

__all__ = ["COUNTERS_SCHEMA", "REPORT_SCHEMA", "counters_block", "write_bench_report"]

#: Schema tags for the shared BENCH shapes; bump on incompatible change.
COUNTERS_SCHEMA = "repro.obs/counters-v1"
REPORT_SCHEMA = "repro.obs/bench-report-v1"

Number = Union[int, float]


def counters_block(counters: Mapping[str, Number]) -> Dict[str, object]:
    """The shared per-row counter block: ``{"counters_schema", "cost_counters"}``.

    Accepts any flat counter mapping (a
    :meth:`~repro.core.costmodel.CostModel.as_dict`,
    :meth:`~repro.core.PMCStats.cost_counters`, an
    :class:`~repro.obs.registry.MetricsRegistry` counter section) and renders
    it sorted, with integral values as exact ints.
    """
    rendered: Dict[str, Number] = {}
    for name in sorted(counters):
        value = counters[name]
        rendered[name] = int(value) if isinstance(value, bool) or value == int(value) else value
    return {"counters_schema": COUNTERS_SCHEMA, "cost_counters": rendered}


def write_bench_report(
    path: str,
    benchmark: str,
    config: Mapping[str, object],
    rows: List[Mapping[str, object]],
    **extra: object,
) -> Dict[str, object]:
    """Write the standard ``BENCH_*.json`` envelope; returns the report dict.

    ``extra`` keys (e.g. a churn-isolation section, sweep-level timings) merge
    into the top level after the shared fields, so existing consumers keep
    their keys.
    """
    report: Dict[str, object] = {
        "benchmark": benchmark,
        "report_schema": REPORT_SCHEMA,
        "config": dict(config),
        "python_version": platform.python_version(),
        "rows": list(rows),
    }
    for key, value in extra.items():
        report[key] = value
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
