"""Labeled metrics registry: counters, gauges, histograms, snapshot sources.

The registry is the metrics half of the observability plane
(:mod:`repro.obs`).  It follows the same determinism contract the cost model
does (:mod:`repro.core.costmodel`): every *semantic* series -- work counters,
detection-latency histograms, cache-hit ratios -- must be byte-identical
across ``REPRO_BACKEND`` and ``REPRO_JOBS`` for a fixed seed, while anything
wall-clock flavoured (event rates, build info) is registered with
``informational=True`` and excluded from the deterministic snapshot.

Three metric kinds, all label-aware:

* :class:`Counter` -- monotonically increasing integers (floats allowed but
  unusual), e.g. ``windows_closed`` or ``controller_cycles{mode="incremental"}``;
* :class:`Gauge` -- last-write-wins values, e.g. ``pmc_shard_cache_hit_ratio``;
* :class:`Histogram` -- fixed-bucket distributions with pinned boundaries,
  e.g. ``detection_latency_seconds`` over :data:`DETECTION_LATENCY_BUCKETS`.

Beyond its own metrics the registry *absorbs* existing counter stores as
**sources**: :meth:`MetricsRegistry.register_source` takes a callable
returning a flat ``{name: int}`` mapping (a :class:`~repro.core.costmodel.CostModel`'s
``as_dict``, a scheduler's telemetry view) that is merged into the counter
section at snapshot time -- no double bookkeeping on the hot path.

Snapshots come in two renderings: :meth:`MetricsRegistry.to_json` (sorted-key
JSON, the byte-gateable export) and :meth:`MetricsRegistry.to_prometheus`
(Prometheus text exposition for humans and scrapers).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "DETECTION_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Pinned latency-histogram boundaries (seconds, upper bounds; +Inf implied).
#: The grid brackets the paper's operating points: a 30 s aggregation window
#: (detection resolution) and a 600 s controller cycle.  Tests pin these
#: values -- changing them is a schema change, not a tweak.
DETECTION_LATENCY_BUCKETS: Tuple[float, ...] = (
    15.0,
    30.0,
    60.0,
    120.0,
    300.0,
    600.0,
    1800.0,
)

Number = Union[int, float]
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical series key: label items as sorted ``(key, str(value))`` pairs."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, key: LabelKey) -> str:
    """Rendered series id, Prometheus style: ``name{k="v",...}``."""
    if not key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{inner}}}"


def _format_bound(bound: float) -> str:
    """Bucket-boundary key: trim trailing zeros (``15.0`` -> ``"15"``)."""
    return f"{bound:g}"


class _Family:
    """Shared plumbing of one named metric family (all its label series)."""

    __slots__ = ("name", "help", "informational", "_series")

    kind = "untyped"

    def __init__(self, name: str, help: str = "", informational: bool = False):
        self.name = name
        self.help = help
        self.informational = informational
        self._series: Dict[LabelKey, object] = {}

    def series(self) -> Dict[str, object]:
        """Rendered ``{series_id: value}`` view in sorted series order."""
        return {
            _series_name(self.name, key): self._render(self._series[key])
            for key in sorted(self._series)
        }

    def _render(self, value):
        return value


class Counter(_Family):
    """Monotonic counter family; ``inc(amount, **labels)`` per series."""

    kind = "counter"

    def inc(self, amount: Number = 1, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> Number:
        return self._series.get(_label_key(labels), 0)

    def total(self) -> Number:
        """Sum over every label series of the family."""
        return sum(self._series.values())


class Gauge(_Family):
    """Last-write-wins value family; ``set(value, **labels)`` per series."""

    kind = "gauge"

    def set(self, value: Number, **labels) -> None:
        self._series[_label_key(labels)] = value

    def value(self, default: Number = 0, **labels) -> Number:
        return self._series.get(_label_key(labels), default)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * (num_buckets + 1)  # trailing slot is +Inf
        self.count = 0
        self.sum = 0.0


class Histogram(_Family):
    """Fixed-bucket distribution family (cumulative rendering, like Prometheus).

    Buckets are **upper bounds** in ascending order; an implicit ``+Inf``
    bucket always exists.  Boundaries are part of the export schema, so they
    are fixed at construction and re-registration with different buckets is an
    error.
    """

    kind = "histogram"

    __slots__ = ("buckets",)

    def __init__(
        self,
        name: str,
        buckets: Tuple[float, ...],
        help: str = "",
        informational: bool = False,
    ):
        super().__init__(name, help, informational)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a non-empty ascending tuple")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: Number, **labels) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        slot = len(self.buckets)  # +Inf unless a finite bound catches it
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        series.bucket_counts[slot] += 1
        series.count += 1
        series.sum += value

    def _render(self, series: _HistogramSeries) -> Dict[str, object]:
        cumulative: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, series.bucket_counts):
            running += count
            cumulative[_format_bound(bound)] = running
        cumulative["+Inf"] = series.count
        return {"buckets": cumulative, "count": series.count, "sum": series.sum}


class MetricsRegistry:
    """One process-local bag of metric families plus snapshot-time sources.

    ``counter`` / ``gauge`` / ``histogram`` create-or-fetch a family by name
    (kind mismatches raise -- a name means one thing).  Families and sources
    created with ``informational=True`` carry wall-clock-flavoured data and
    are dropped from ``snapshot(deterministic=True)``, the view the
    byte-identity gates run on.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._sources: List[Tuple[str, Callable[[], Mapping[str, Number]], bool]] = []

    # -------------------------------------------------------------- families
    def counter(self, name: str, help: str = "", informational: bool = False) -> Counter:
        return self._family(Counter, name, help, informational)

    def gauge(self, name: str, help: str = "", informational: bool = False) -> Gauge:
        return self._family(Gauge, name, help, informational)

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DETECTION_LATENCY_BUCKETS,
        help: str = "",
        informational: bool = False,
    ) -> Histogram:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(f"metric {name!r} already registered as {existing.kind}")
            if existing.buckets != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{existing.buckets}, got {tuple(buckets)}"
                )
            return existing
        family = Histogram(name, tuple(buckets), help, informational)
        self._families[name] = family
        return family

    def _family(self, cls, name: str, help: str, informational: bool):
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(f"metric {name!r} already registered as {existing.kind}")
            return existing
        family = cls(name, help, informational)
        self._families[name] = family
        return family

    # --------------------------------------------------------------- sources
    def register_source(
        self,
        name: str,
        provider: Callable[[], Mapping[str, Number]],
        informational: bool = False,
    ) -> None:
        """Merge ``provider()`` into the counter section at snapshot time.

        Re-registering a name replaces the previous provider (the engine
        re-registers its per-cycle views).  Keys colliding across sources or
        with direct counters are summed, matching
        :meth:`~repro.core.costmodel.CostModel.merge` semantics.
        """
        self._sources = [entry for entry in self._sources if entry[0] != name]
        self._sources.append((name, provider, informational))

    # ------------------------------------------------------------- snapshots
    def snapshot(self, deterministic: bool = False) -> Dict[str, Dict[str, object]]:
        """Nested ``{"counters": ..., "gauges": ..., "histograms": ...}`` view.

        ``deterministic=True`` drops informational families and sources; the
        result is then byte-identical across backends, jobs counts and
        machines for a fixed seed (the property the obs test matrix gates).
        """
        counters: Dict[str, Number] = {}
        gauges: Dict[str, Number] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._families):
            family = self._families[name]
            if deterministic and family.informational:
                continue
            target = {
                "counter": counters,
                "gauge": gauges,
                "histogram": histograms,
            }[family.kind]
            target.update(family.series())
        for _, provider, informational in sorted(self._sources, key=lambda e: e[0]):
            if deterministic and informational:
                continue
            for key, value in provider().items():
                counters[key] = counters.get(key, 0) + value
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def to_json(self, deterministic: bool = False, indent: Optional[int] = None) -> str:
        """Sorted-key JSON rendering of :meth:`snapshot` (byte-gateable)."""
        return json.dumps(
            self.snapshot(deterministic=deterministic),
            sort_keys=True,
            indent=indent,
            separators=(",", ": ") if indent else (",", ":"),
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition (informational series included)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            if isinstance(family, Histogram):
                for key in sorted(family._series):
                    series = family._series[key]
                    running = 0
                    for bound, count in zip(family.buckets, series.bucket_counts):
                        running += count
                        le_key = key + (("le", _format_bound(bound)),)
                        lines.append(f"{_series_name(name + '_bucket', le_key)} {running}")
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(f"{_series_name(name + '_bucket', inf_key)} {series.count}")
                    lines.append(f"{_series_name(name + '_sum', key)} {series.sum}")
                    lines.append(f"{_series_name(name + '_count', key)} {series.count}")
            else:
                for series_id, value in family.series().items():
                    lines.append(f"{series_id} {value}")
        for source_name, provider, _ in sorted(self._sources, key=lambda e: e[0]):
            lines.append(f"# TYPE repro_source_{source_name} counter")
            for key, value in sorted(provider().items()):
                lines.append(f"{key} {value}")
        return "\n".join(lines) + "\n"

    # ----------------------------------------------------------- conveniences
    def value(self, name: str, default: Number = 0) -> Number:
        """Total of a counter family (summed over labels) or a plain-series
        gauge, falling back to source-provided counters of that name."""
        family = self._families.get(name)
        if isinstance(family, Counter):
            return family.total()
        if isinstance(family, Gauge):
            return family.value(default)
        total: Number = 0
        found = False
        for _, provider, _ in self._sources:
            values = provider()
            if name in values:
                total += values[name]
                found = True
        return total if found else default
