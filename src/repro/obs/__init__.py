"""The unified observability plane: metrics, sim-time tracing, introspection.

Three layers, one import (``from repro.obs import Observability``):

* :mod:`repro.obs.registry` -- :class:`MetricsRegistry`: labeled counters,
  gauges and histograms, absorbing existing
  :class:`~repro.core.costmodel.CostModel` / scheduler / kernel counter
  stores as snapshot-time *sources*; deterministic sorted JSON plus
  Prometheus text exposition.
* :mod:`repro.obs.tracing` -- :class:`Tracer`: sim-clock spans
  (``span("pmc.solve", pod=3)``) wired around engine windows, controller
  cycles, PMC shard solves, aggregator closes and watchdog churn replays.
  Byte-identical across ``REPRO_BACKEND`` x ``REPRO_JOBS``; JSONL and
  ``chrome://tracing`` exports.
* :mod:`repro.obs.introspect` -- live serve-mode introspection: streaming
  metrics JSONL, status lines, the one-window cProfile hook.

:class:`Observability` bundles the three for the engine.  Tracing defaults
off (the free-function span API costs one ``is None`` test when inactive);
the ``REPRO_TRACE`` environment variable turns it on globally, following the
same resolution pattern as ``REPRO_BACKEND`` / ``REPRO_JOBS`` so CI can run a
whole tier-1 leg traced without threading flags anywhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from .export import COUNTERS_SCHEMA, REPORT_SCHEMA, counters_block, write_bench_report
from .introspect import (
    MetricsJSONWriter,
    WindowProfiler,
    format_status_line,
    write_snapshot,
)
from .registry import (
    DETECTION_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import (
    Span,
    Tracer,
    activated,
    current_tracer,
    record,
    span,
    spans_from_chrome_trace,
    to_chrome_trace,
)

__all__ = [
    "COUNTERS_SCHEMA",
    "DETECTION_LATENCY_BUCKETS",
    "REPORT_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsJSONWriter",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "WindowProfiler",
    "activated",
    "counters_block",
    "current_tracer",
    "format_status_line",
    "record",
    "span",
    "spans_from_chrome_trace",
    "to_chrome_trace",
    "tracing_enabled",
    "write_bench_report",
    "write_snapshot",
]

_TRACE_ENV = "REPRO_TRACE"
_FALSEY = {"", "0", "false", "no", "off"}


def tracing_enabled(default: bool = False) -> bool:
    """Resolve the global tracing switch from ``REPRO_TRACE``.

    Mirrors :func:`repro.parallel.resolve_jobs` /
    :func:`repro.core.incidence.resolve_backend`: the environment supplies a
    process-wide default that explicit arguments (CLI ``--trace``) override.
    """
    raw = os.environ.get(_TRACE_ENV)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSEY


@dataclass
class Observability:
    """The bundle a :class:`~repro.engine.TelemetryEngine` carries.

    ``registry`` always exists (registering sources and bumping counters is
    cheap); ``tracer`` is ``None`` unless tracing was requested, keeping the
    span free functions on their no-op path; ``profile_path`` arms the
    one-window :class:`WindowProfiler`.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Optional[Tracer] = None
    profile_path: Optional[str] = None

    @classmethod
    def create(
        cls,
        tracing: Optional[bool] = None,
        profile_path: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Observability":
        """Build a bundle; ``tracing=None`` defers to ``REPRO_TRACE``."""
        enabled = tracing_enabled() if tracing is None else tracing
        return cls(
            registry=registry if registry is not None else MetricsRegistry(),
            tracer=Tracer() if enabled else None,
            profile_path=profile_path,
        )

    @classmethod
    def from_env(cls) -> "Observability":
        """The engine's default bundle: registry always, tracer per env."""
        return cls.create()

    def bind_clock(self, clock) -> None:
        """Point the tracer at a sim clock (first binder wins)."""
        if self.tracer is not None and self.tracer.clock is None:
            self.tracer.clock = clock
