"""Live introspection for serve mode: metrics streaming, status lines, profiling.

The third layer of the observability plane is about *watching the monitor
while it runs*:

* :class:`MetricsJSONWriter` -- streams per-window registry snapshots as
  JSONL (``engine serve --metrics-json PATH [--metrics-every N]``), flushed
  per line so a tailing consumer sees windows as they close;
* :func:`write_snapshot` -- the one-shot variant ``engine run`` uses for its
  final snapshot;
* :func:`format_status_line` -- the periodic ``repro status``-style line
  serve mode prints every ``--status-every`` windows, sourced from the
  registry (not from ad-hoc loop-local tallies);
* :class:`WindowProfiler` -- the opt-in cProfile hook (``--profile
  OUT.pstats``) the engine brackets around exactly one window: armed at the
  start of a run/serve advance, dumped at the first window close, inert
  afterwards, zero overhead when unused.
"""

from __future__ import annotations

import json
from typing import Optional

from .registry import MetricsRegistry

__all__ = [
    "MetricsJSONWriter",
    "WindowProfiler",
    "format_status_line",
    "write_snapshot",
]


class MetricsJSONWriter:
    """Append one registry snapshot per served window to a JSONL file.

    ``every=N`` keeps one window in N (the first of each stride), bounding
    output volume on long serves.  Lines are sorted-key JSON and flushed
    immediately.  Usable as a context manager.
    """

    def __init__(self, path: str, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = path
        self.every = every
        self.lines_written = 0
        self._seen = 0
        self._handle = open(path, "w")

    def write(self, window_index: int, sim_time: float, registry: MetricsRegistry) -> bool:
        """Write this window's snapshot unless the stride skips it."""
        self._seen += 1
        if (self._seen - 1) % self.every:
            return False
        payload = {
            "window": window_index,
            "sim_time": sim_time,
            "metrics": registry.snapshot(),
        }
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        self.lines_written += 1
        return True

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "MetricsJSONWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_snapshot(path: str, registry: MetricsRegistry) -> None:
    """One indented full snapshot (the ``engine run --metrics-json`` output)."""
    with open(path, "w") as handle:
        handle.write(registry.to_json(indent=2))
        handle.write("\n")


def format_status_line(
    registry: MetricsRegistry, served: int, wall_seconds: float
) -> str:
    """The serve-mode periodic stats line, read back from the registry."""
    probes = registry.value("probes_sent")
    lost = registry.value("probes_lost")
    late = registry.value("aggregator_events_rejected")
    cycles = registry.value("controller_cycles")
    detections = registry.value("faults_detected")
    return (
        f"status: {served} windows | probes {probes:,} ({lost:,} lost, {late} late) | "
        f"cycles {cycles} | faults detected {detections} | wall {wall_seconds:.3f}s"
    )


class WindowProfiler:
    """cProfile exactly one window, then get out of the way.

    ``arm()`` starts profiling unless a profile was already dumped;
    ``dump()`` stops and writes the stats.  The engine arms at the top of a
    run or serve advance and dumps at the first window close, so the profile
    brackets one full window of probe scheduling, stream folding and
    diagnosis -- the steady-state unit of serve-mode work.
    """

    def __init__(self, path: str):
        self.path = path
        self._profiler = None
        self.dumped = False

    def arm(self) -> None:
        if self.dumped or self._profiler is not None:
            return
        import cProfile

        self._profiler = cProfile.Profile()
        self._profiler.enable()

    def dump(self) -> None:
        if self._profiler is None:
            return
        self._profiler.disable()
        self._profiler.dump_stats(self.path)
        self._profiler = None
        self.dumped = True
