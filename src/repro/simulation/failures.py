"""Failure models: the three loss classes of §6.2 plus a scenario generator.

The testbed in the paper uses OpenFlow rules to emulate three loss classes:

* **full packet loss** -- every packet on the link (or through the switch) is
  dropped (link down, switch down),
* **deterministic partial loss** -- packets with certain header features are
  dropped deterministically (packet blackholes, misconfigured rules),
* **random partial loss** -- packets are dropped with some probability (bit
  flips, CRC errors, buffer overflow).

Since we have no access to production loss data (same as the authors), the
:class:`FailureGenerator` synthesises scenarios following the qualitative
distributions the paper takes from Gill et al. [20] and Benson et al. [12]:
link failures dominate switch failures, loss rates span 1e-4 .. 1, and the
failure probability depends on the tier of the link.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..topology import HealthSnapshot, Tier, Topology, TopologyDelta

__all__ = [
    "LossMode",
    "LinkFailure",
    "FailureScenario",
    "FailureGeneratorConfig",
    "FailureGenerator",
    "ChurnSchedule",
]


class LossMode(str, Enum):
    """The three loss classes emulated on the testbed (§6.2)."""

    FULL = "full"
    DETERMINISTIC_PARTIAL = "deterministic_partial"
    RANDOM_PARTIAL = "random_partial"


@dataclass(frozen=True)
class LinkFailure:
    """A faulty link and how it drops packets.

    Attributes
    ----------
    link_id:
        The failed link.
    mode:
        One of :class:`LossMode`.
    loss_rate:
        Drop probability for :attr:`LossMode.RANDOM_PARTIAL`; ignored for the
        other modes (full loss drops everything, deterministic loss drops by
        header match).
    match_fraction:
        For :attr:`LossMode.DETERMINISTIC_PARTIAL`: the fraction of the flow
        (5-tuple hash) space whose packets are blackholed on this link.
    salt:
        Mixed into the deterministic-drop hash so that different failures
        blackhole different flow subsets.
    """

    link_id: int
    mode: LossMode
    loss_rate: float = 1.0
    match_fraction: float = 0.25
    salt: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must lie in [0, 1]")
        if not 0.0 < self.match_fraction <= 1.0:
            raise ValueError("match_fraction must lie in (0, 1]")

    def drops_flow(self, flow_key: Tuple) -> bool:
        """Deterministic-partial decision: does this failure blackhole the flow?"""
        digest = zlib.crc32(f"{self.salt}|{self.link_id}|{flow_key}".encode("utf-8"))
        return (digest % 10_000) < self.match_fraction * 10_000

    @property
    def effective_loss_rate(self) -> float:
        """Expected per-packet drop probability over a uniform flow mix."""
        if self.mode is LossMode.FULL:
            return 1.0
        if self.mode is LossMode.DETERMINISTIC_PARTIAL:
            return self.match_fraction
        return self.loss_rate


@dataclass
class FailureScenario:
    """A set of concurrent failures injected into the simulator.

    A failed switch is represented by full-loss failures on every link
    incident to it (that is how the testbed emulates switch-down, §6.2), but
    the switch name is kept so experiments can report switch-level ground
    truth when needed.
    """

    failures: Dict[int, LinkFailure] = field(default_factory=dict)
    failed_switches: Tuple[str, ...] = ()
    description: str = ""
    #: Mutation counter: bumped by :meth:`add` / :meth:`remove` so readers
    #: (e.g. the probe simulator's dirty-path cache) can detect in-place
    #: changes without comparing the failure dict.  Excluded from equality.
    version: int = field(default=0, compare=False, repr=False)

    @property
    def bad_link_ids(self) -> List[int]:
        return sorted(self.failures)

    @property
    def num_failures(self) -> int:
        return len(self.failures)

    def failure_on(self, link_id: int) -> Optional[LinkFailure]:
        return self.failures.get(link_id)

    def add(self, failure: LinkFailure) -> None:
        self.failures[failure.link_id] = failure
        self.version += 1

    def remove(self, link_id: int) -> None:
        """Clear the failure on a link (no-op when the link is healthy)."""
        if self.failures.pop(link_id, None) is not None:
            self.version += 1

    @classmethod
    def single_link(
        cls,
        link_id: int,
        mode: LossMode = LossMode.FULL,
        loss_rate: float = 1.0,
        match_fraction: float = 0.25,
    ) -> "FailureScenario":
        """Convenience constructor for one-failure experiments."""
        failure = LinkFailure(
            link_id=link_id, mode=mode, loss_rate=loss_rate, match_fraction=match_fraction
        )
        return cls(failures={link_id: failure}, description=f"single {mode.value} on link {link_id}")

    @classmethod
    def switch_down(cls, topology: Topology, switch_name: str) -> "FailureScenario":
        """All links of a switch fail with full loss (switch-down emulation)."""
        failures = {
            link.link_id: LinkFailure(link_id=link.link_id, mode=LossMode.FULL)
            for link in topology.links_of(switch_name)
        }
        return cls(
            failures=failures,
            failed_switches=(switch_name,),
            description=f"switch {switch_name} down",
        )


@dataclass(frozen=True)
class FailureGeneratorConfig:
    """Knobs of the synthetic failure generator.

    Defaults follow the qualitative measurements the paper cites:

    * most failure events are individual link failures rather than whole
      switches (Gill et al. report link failures dominating),
    * random-loss rates span ``1e-4 .. 1`` (§6.2) but are skewed towards
      significant losses: the buckets below are calibrated so that the share
      of near-undetectable failures (< 1e-3) matches the ~1% false-negative
      floor the paper attributes to "losses of extremely low loss rate"
      (Table 5 discussion),
    * ToR/aggregation links fail more often than core links (loss distribution
      per tier extracted from Benson et al., Fig. 3 in [12]).
    """

    switch_failure_probability: float = 0.2
    mode_weights: Mapping[LossMode, float] = field(
        default_factory=lambda: {
            LossMode.FULL: 1.0 / 3.0,
            LossMode.DETERMINISTIC_PARTIAL: 1.0 / 3.0,
            LossMode.RANDOM_PARTIAL: 1.0 / 3.0,
        }
    )
    # (low, high, weight) buckets for the random-partial loss rate; the rate is
    # log-uniform inside the chosen bucket.
    random_loss_rate_buckets: Tuple[Tuple[float, float, float], ...] = (
        (1e-2, 1.0, 0.80),
        (1e-3, 1e-2, 0.15),
        (1e-4, 1e-3, 0.05),
    )
    min_random_loss_rate: float = 1e-4
    max_random_loss_rate: float = 1.0
    min_match_fraction: float = 0.1
    max_match_fraction: float = 0.5
    tier_pair_weights: Mapping[Tuple[str, str], float] = field(
        default_factory=lambda: {
            (Tier.AGGREGATION, Tier.EDGE): 0.45,
            (Tier.AGGREGATION, Tier.CORE): 0.35,
            (Tier.AGGREGATION, Tier.INTERMEDIATE): 0.35,
            (Tier.AGGREGATION, Tier.TOR): 0.45,
        }
    )
    default_tier_weight: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.switch_failure_probability <= 1.0:
            raise ValueError("switch_failure_probability must lie in [0, 1]")
        if self.min_random_loss_rate <= 0 or self.max_random_loss_rate > 1:
            raise ValueError("random loss rates must lie in (0, 1]")
        if self.min_random_loss_rate > self.max_random_loss_rate:
            raise ValueError("min_random_loss_rate exceeds max_random_loss_rate")
        if not self.random_loss_rate_buckets:
            raise ValueError("random_loss_rate_buckets must not be empty")
        for low, high, weight in self.random_loss_rate_buckets:
            if not 0.0 < low <= high <= 1.0:
                raise ValueError(f"invalid loss-rate bucket ({low}, {high})")
            if weight < 0:
                raise ValueError("bucket weights must be non-negative")


class FailureGenerator:
    """Draws random :class:`FailureScenario` objects for evaluation runs."""

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        config: Optional[FailureGeneratorConfig] = None,
        link_ids: Optional[Sequence[int]] = None,
    ):
        self._topology = topology
        self._rng = rng
        self._config = config or FailureGeneratorConfig()
        if link_ids is None:
            self._links = [link.link_id for link in topology.switch_links]
        else:
            self._links = sorted(link_ids)
        if not self._links:
            raise ValueError("failure generator needs at least one candidate link")
        self._weights = self._link_weights()

    # ------------------------------------------------------------- internals
    def _link_weights(self) -> np.ndarray:
        config = self._config
        weights = []
        for link_id in self._links:
            link = self._topology.link(link_id)
            weights.append(
                config.tier_pair_weights.get(tuple(link.tier_pair), config.default_tier_weight)
            )
        array = np.asarray(weights, dtype=float)
        return array / array.sum()

    def _draw_mode(self) -> LossMode:
        modes = list(self._config.mode_weights)
        probabilities = np.asarray(
            [self._config.mode_weights[m] for m in modes], dtype=float
        )
        probabilities = probabilities / probabilities.sum()
        return modes[int(self._rng.choice(len(modes), p=probabilities))]

    def _draw_link_failure(self, link_id: int) -> LinkFailure:
        config = self._config
        mode = self._draw_mode()
        loss_rate = 1.0
        match_fraction = 0.25
        if mode is LossMode.RANDOM_PARTIAL:
            buckets = config.random_loss_rate_buckets
            weights = np.asarray([b[2] for b in buckets], dtype=float)
            weights = weights / weights.sum()
            low, high, _ = buckets[int(self._rng.choice(len(buckets), p=weights))]
            loss_rate = float(10 ** self._rng.uniform(np.log10(low), np.log10(high)))
        elif mode is LossMode.DETERMINISTIC_PARTIAL:
            match_fraction = float(
                self._rng.uniform(config.min_match_fraction, config.max_match_fraction)
            )
        return LinkFailure(
            link_id=link_id,
            mode=mode,
            loss_rate=loss_rate,
            match_fraction=match_fraction,
            salt=int(self._rng.integers(0, 2**31 - 1)),
        )

    # ------------------------------------------------------------------- API
    def generate(self, num_failed_links: int = 1) -> FailureScenario:
        """A scenario with exactly ``num_failed_links`` distinct failed links.

        With probability ``switch_failure_probability`` the first failure is a
        whole-switch failure (all of its links, counted as that many failed
        links); remaining failures are individual links drawn by tier weight.
        """
        if num_failed_links < 1:
            raise ValueError("num_failed_links must be >= 1")
        if num_failed_links > len(self._links):
            raise ValueError(
                f"cannot fail {num_failed_links} links; only {len(self._links)} candidates"
            )
        scenario = FailureScenario(description=f"{num_failed_links} failed links")

        switches = [n.name for n in self._topology.switches]
        if (
            switches
            and num_failed_links > 1
            and self._rng.random() < self._config.switch_failure_probability
        ):
            switch = switches[int(self._rng.integers(0, len(switches)))]
            candidate_links = [
                l.link_id
                for l in self._topology.links_of(switch)
                if l.link_id in set(self._links)
            ]
            usable = candidate_links[: num_failed_links]
            if usable:
                scenario = FailureScenario(
                    failed_switches=(switch,),
                    description=f"switch {switch} down plus link failures",
                )
                for link_id in usable:
                    scenario.add(LinkFailure(link_id=link_id, mode=LossMode.FULL))

        while scenario.num_failures < num_failed_links:
            index = int(self._rng.choice(len(self._links), p=self._weights))
            link_id = self._links[index]
            if scenario.failure_on(link_id) is not None:
                continue
            scenario.add(self._draw_link_failure(link_id))
        return scenario

    def generate_single(self) -> FailureScenario:
        """One random failure, the per-minute scenario of the testbed runs (§6.3)."""
        return self.generate(1)


class ChurnSchedule:
    """A deterministic sequence of per-cycle :class:`TopologyDelta` events.

    Models the steady-state churn of a large data center: between two
    controller cycles a handful of links (occasionally a switch or a server)
    go down while some previously failed elements recover.  Each delta in the
    schedule describes exactly one cycle's worth of churn, ready to be fed to
    ``Watchdog.apply_delta`` before ``Controller.run_incremental_cycle``
    consumes it.

    The schedule is a pure function of the generator ``rng``, so benchmarks
    and the incremental-vs-cold differential tests can replay identical churn
    across runs and backends.
    """

    def __init__(self, deltas: Sequence[TopologyDelta]):
        self._deltas: Tuple[TopologyDelta, ...] = tuple(deltas)

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self) -> Iterator[TopologyDelta]:
        return iter(self._deltas)

    def __getitem__(self, index: int) -> TopologyDelta:
        return self._deltas[index]

    @property
    def deltas(self) -> Tuple[TopologyDelta, ...]:
        return self._deltas

    @property
    def total_churn(self) -> int:
        return sum(delta.churn for delta in self._deltas)

    @property
    def max_churn(self) -> int:
        return max((delta.churn for delta in self._deltas), default=0)

    # ------------------------------------------------------------- generation
    @classmethod
    def generate(
        cls,
        topology: Topology,
        rng: np.random.Generator,
        num_cycles: int,
        mean_events_per_cycle: float = 2.0,
        recovery_probability: float = 0.4,
        switch_probability: float = 0.05,
        server_probability: float = 0.1,
        max_failed_links: Optional[int] = None,
    ) -> "ChurnSchedule":
        """Draw a churn schedule over *num_cycles* controller cycles.

        Parameters
        ----------
        mean_events_per_cycle:
            Poisson mean of churn events per cycle (paper setting: "a
            handful" -- keep this small relative to the fabric size).
        recovery_probability:
            Per-event probability that the event is a recovery of a currently
            failed element rather than a new failure (given one exists).
        switch_probability / server_probability:
            Per-event probability that the event hits a whole switch / a
            server instead of an individual link.
        max_failed_links:
            Optional cap on concurrently failed links; once reached, link
            events become recoveries.
        """
        if num_cycles < 0:
            raise ValueError("num_cycles must be non-negative")
        if mean_events_per_cycle < 0:
            raise ValueError("mean_events_per_cycle must be non-negative")
        link_ids = [link.link_id for link in topology.switch_links]
        switch_names = [node.name for node in topology.switches]
        server_names = [node.name for node in topology.servers]

        failed_links: set = set()
        failed_switches: set = set()
        unhealthy_servers: set = set()

        def pick(candidates: List) -> object:
            return candidates[int(rng.integers(0, len(candidates)))]

        def snapshot() -> HealthSnapshot:
            return HealthSnapshot(
                failed_link_ids=frozenset(failed_links),
                failed_switches=frozenset(failed_switches),
                unhealthy_servers=frozenset(unhealthy_servers),
            )

        deltas: List[TopologyDelta] = []
        for _ in range(num_cycles):
            before = snapshot()
            for _ in range(int(rng.poisson(mean_events_per_cycle))):
                kind = rng.random()
                if server_names and kind < server_probability:
                    down, pool = unhealthy_servers, server_names
                elif switch_names and kind < server_probability + switch_probability:
                    down, pool = failed_switches, switch_names
                else:
                    down, pool = failed_links, link_ids
                at_cap = (
                    down is failed_links
                    and max_failed_links is not None
                    and len(failed_links) >= max_failed_links
                )
                recover = down and (at_cap or rng.random() < recovery_probability)
                if recover:
                    down.discard(pick(sorted(down)))
                else:
                    healthy = [c for c in pool if c not in down]
                    if healthy:
                        down.add(pick(healthy))
            deltas.append(TopologyDelta.between(before, snapshot()))
        return cls(deltas)
