"""Pinger resource-overhead model (CPU, memory, bandwidth) for Fig. 4(b).

The paper measures ~0.4% CPU, ~13 MB memory and ~100 Kbps of bandwidth per
pinger at 10 probes/second.  Real CPU/memory cannot be measured for a
simulated pinger, so this module provides a calibrated linear model:

* bandwidth is exact arithmetic (probes/second x packet size x 8 bits, counting
  request and response),
* CPU is a small per-probe cost plus a fixed baseline (XML aggregation, HTTP
  fetches),
* memory is a fixed baseline plus a per-path bookkeeping cost.

The constants are chosen so that the 10-probes/second operating point matches
the numbers quoted in §6.3, and the trend with frequency is linear -- which is
what Fig. 4(b) shows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PingerResourceModel", "ResourceUsage"]


@dataclass(frozen=True)
class ResourceUsage:
    """Per-pinger resource consumption at a given probing frequency."""

    cpu_percent: float
    memory_mb: float
    bandwidth_kbps: float


@dataclass(frozen=True)
class PingerResourceModel:
    """Linear resource model calibrated against the §6.3 measurements.

    Attributes
    ----------
    probe_size_bytes:
        Average probe size (850 bytes in the paper).
    cpu_baseline_percent / cpu_per_probe_percent:
        Fixed overhead (pinglist fetch, result aggregation) and marginal cost
        per probe per second.
    memory_baseline_mb / memory_per_path_kb:
        Resident set of the pinger process plus per-path bookkeeping.
    """

    probe_size_bytes: float = 850.0
    cpu_baseline_percent: float = 0.1
    cpu_per_probe_percent: float = 0.03
    memory_baseline_mb: float = 12.0
    memory_per_path_kb: float = 16.0

    def usage(self, probes_per_second: float, num_paths: int = 60) -> ResourceUsage:
        """Resource usage of one pinger at the given probing frequency.

        Parameters
        ----------
        probes_per_second:
            Aggregate probe sending rate of the pinger.
        num_paths:
            Number of probe paths in its pinglist (§4.4: about 60 for a
            Fattree(64) deployment).
        """
        if probes_per_second < 0:
            raise ValueError("probes_per_second must be non-negative")
        if num_paths < 0:
            raise ValueError("num_paths must be non-negative")
        bandwidth_bps = probes_per_second * self.probe_size_bytes * 8.0 * 2.0
        return ResourceUsage(
            cpu_percent=self.cpu_baseline_percent + self.cpu_per_probe_percent * probes_per_second,
            memory_mb=self.memory_baseline_mb + self.memory_per_path_kb * num_paths / 1024.0,
            bandwidth_kbps=bandwidth_bps / 1000.0,
        )
