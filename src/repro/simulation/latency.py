"""Latency model: RTT and jitter of workload traffic under probing load.

Fig. 4(c)/(d) of the paper show that probing barely perturbs workload RTT and
jitter until the probing frequency becomes large.  We reproduce the shape with
a standard queueing approximation:

* every hop adds a fixed propagation/forwarding delay,
* every traversed link adds an M/M/1-style queueing delay
  ``service_time * rho / (1 - rho)`` where ``rho`` is the link utilisation
  (background workload plus probing bandwidth),
* the end-host stack adds a constant term at both ends,
* jitter is the standard deviation of per-packet RTT samples, where each
  sample perturbs the queueing term with exponential noise.

Absolute numbers are not comparable with the testbed's 1 GbE switches, but the
trend -- flat RTT/jitter until probing claims a noticeable share of link
capacity -- is what the experiment reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..routing import Path

__all__ = ["LatencyConfig", "LatencyModel", "RTTSample"]


@dataclass(frozen=True)
class LatencyConfig:
    """Constants of the latency model (1 GbE testbed-ish defaults)."""

    per_hop_delay_us: float = 25.0
    host_stack_delay_us: float = 60.0
    mean_packet_size_bytes: float = 850.0
    link_capacity_bps: float = 1_000_000_000.0
    max_utilization: float = 0.97

    def __post_init__(self) -> None:
        if self.link_capacity_bps <= 0:
            raise ValueError("link_capacity_bps must be positive")
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError("max_utilization must lie in (0, 1)")

    @property
    def service_time_us(self) -> float:
        """Transmission time of an average packet on one link, in microseconds."""
        return self.mean_packet_size_bytes * 8.0 / self.link_capacity_bps * 1e6


@dataclass(frozen=True)
class RTTSample:
    """Mean RTT and jitter measured for one configuration."""

    mean_rtt_us: float
    jitter_us: float
    p99_rtt_us: float


class LatencyModel:
    """Computes RTT/jitter for paths given per-link utilisation."""

    def __init__(self, config: Optional[LatencyConfig] = None):
        self.config = config or LatencyConfig()

    # ----------------------------------------------------------- single path
    def path_rtt_us(self, path: Path, utilization: Dict[int, float]) -> float:
        """Deterministic (mean) round-trip time of a path in microseconds."""
        config = self.config
        one_way = config.host_stack_delay_us
        for link_id in path.link_ids:
            rho = min(utilization.get(link_id, 0.0), config.max_utilization)
            queueing = config.service_time_us * rho / (1.0 - rho)
            one_way += config.per_hop_delay_us + config.service_time_us + queueing
        one_way += config.host_stack_delay_us
        return 2.0 * one_way

    def sample_path_rtt_us(
        self,
        path: Path,
        utilization: Dict[int, float],
        rng: np.random.Generator,
        num_samples: int = 100,
    ) -> np.ndarray:
        """Per-packet RTT samples: the queueing term is exponentially distributed."""
        config = self.config
        base = config.host_stack_delay_us * 2.0
        fixed = 0.0
        queue_means: List[float] = []
        for link_id in path.link_ids:
            rho = min(utilization.get(link_id, 0.0), config.max_utilization)
            fixed += config.per_hop_delay_us + config.service_time_us
            queue_means.append(config.service_time_us * rho / (1.0 - rho))
        fixed *= 2.0  # both directions
        samples = np.full(num_samples, base + fixed, dtype=float)
        for mean in queue_means:
            if mean > 0.0:
                samples += rng.exponential(mean, size=num_samples)
                samples += rng.exponential(mean, size=num_samples)  # reverse direction
        return samples

    # ----------------------------------------------------------- populations
    def workload_rtt(
        self,
        paths: Sequence[Path],
        utilization: Dict[int, float],
        rng: np.random.Generator,
        samples_per_path: int = 20,
    ) -> RTTSample:
        """RTT statistics over a set of workload paths (Fig. 4(c)/(d))."""
        if not paths:
            raise ValueError("workload_rtt needs at least one path")
        all_samples: List[np.ndarray] = []
        for path in paths:
            all_samples.append(
                self.sample_path_rtt_us(path, utilization, rng, num_samples=samples_per_path)
            )
        merged = np.concatenate(all_samples)
        return RTTSample(
            mean_rtt_us=float(np.mean(merged)),
            jitter_us=float(np.std(merged)),
            p99_rtt_us=float(np.percentile(merged, 99)),
        )

    @staticmethod
    def add_probe_load(
        utilization: Dict[int, float],
        probe_matrix_paths: Iterable[Path],
        probes_per_second_per_path: float,
        probe_size_bytes: float = 850.0,
        link_capacity_bps: float = 1_000_000_000.0,
    ) -> Dict[int, float]:
        """Utilisation with probing traffic added on top of the workload.

        Every probe path contributes its probe rate (request plus response) to
        every link it traverses.
        """
        updated = dict(utilization)
        per_path_bps = probes_per_second_per_path * probe_size_bytes * 8.0 * 2.0
        for path in probe_matrix_paths:
            for link_id in path.link_ids:
                updated[link_id] = updated.get(link_id, 0.0) + per_path_bps / link_capacity_bps
        return updated
