"""Simulation substrate: failure injection, packet-level probing, workload and latency models."""

from .failures import (
    ChurnSchedule,
    FailureGenerator,
    FailureGeneratorConfig,
    FailureScenario,
    LinkFailure,
    LossMode,
)
from .latency import LatencyConfig, LatencyModel, RTTSample
from .network import PairProbeOutcome, ProbeConfig, ProbeSimulator
from .resources import PingerResourceModel, ResourceUsage
from .rng import SeededStreams
from .workload import Flow, WorkloadConfig, WorkloadModel

__all__ = [
    "LossMode",
    "LinkFailure",
    "FailureScenario",
    "FailureGenerator",
    "FailureGeneratorConfig",
    "ChurnSchedule",
    "ProbeConfig",
    "ProbeSimulator",
    "PairProbeOutcome",
    "WorkloadConfig",
    "WorkloadModel",
    "Flow",
    "LatencyConfig",
    "LatencyModel",
    "RTTSample",
    "PingerResourceModel",
    "ResourceUsage",
    "SeededStreams",
]
