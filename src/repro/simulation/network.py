"""Packet-level probing simulator.

This is the substitute for the paper's 20-switch SDN testbed: probes are
simulated packets that traverse the links of their (pinned or ECMP-chosen)
path; each failed link drops them according to its :class:`LossMode`.  The
round trip is modelled explicitly -- the echoed response traverses the same
links in the reverse direction and can be dropped too, which is why deTector
treats links as undirected (§4.1).

The simulator is deliberately stateless about time: an "aggregation window" is
just a number of probes per path.  All randomness flows through an explicit
``numpy.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ProbeMatrix
from ..localization import ObservationSet, PathObservation
from ..routing import ECMPRouter, Path, ProbePacket
from ..topology import Topology
from .failures import FailureScenario, LinkFailure, LossMode

__all__ = ["ProbeConfig", "PairProbeOutcome", "ProbeSimulator"]


@dataclass(frozen=True)
class ProbeConfig:
    """How a pinger exercises one probe path during a window (§6.1).

    Attributes
    ----------
    probes_per_path:
        Number of probe packets sent on each path during the window.
    port_range:
        The pinger loops over this many source ports to increase packet
        entropy; deterministic blackholes then hit only a subset of probes.
    base_port:
        First source port of the loop.
    destination_port:
        The UDP port responders listen on.
    dscp_values:
        DSCP values cycled across probes (different QoS classes).
    """

    probes_per_path: int = 5
    port_range: int = 16
    base_port: int = 33434
    destination_port: int = 53535
    dscp_values: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.probes_per_path < 1:
            raise ValueError("probes_per_path must be >= 1")
        if self.port_range < 1:
            raise ValueError("port_range must be >= 1")

    def packet_for(self, path: Path, sequence: int) -> ProbePacket:
        """The probe packet for the ``sequence``-th probe of a path."""
        return ProbePacket(
            src_server=path.src,
            dst_server=path.dst,
            src_port=self.base_port + (sequence % self.port_range),
            dst_port=self.destination_port,
            dscp=self.dscp_values[sequence % len(self.dscp_values)],
            sequence=sequence,
        )


@dataclass
class PairProbeOutcome:
    """Result of probing a server/ToR pair without path pinning (Pingmesh style)."""

    src: str
    dst: str
    sent: int
    lost: int
    losses_by_path: Dict[int, int]

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    @property
    def is_lossy(self) -> bool:
        return self.lost > 0


class ProbeSimulator:
    """Simulates probe transmission over a topology with injected failures."""

    def __init__(
        self,
        topology: Topology,
        scenario: FailureScenario,
        rng: np.random.Generator,
        probe_reverse_path: bool = True,
    ):
        self._topology = topology
        self._scenario = scenario
        self._rng = rng
        self._probe_reverse_path = probe_reverse_path
        self.drops_per_link: Dict[int, int] = {}
        # Bulk-probing state (prime_paths): the probe matrix's path table, a
        # link -> path-rows reverse index, and a cached dirty-path mask keyed
        # on the scenario object and its mutation version.
        self._primed_paths: Optional[List[Path]] = None
        self._rows_by_link: Dict[int, np.ndarray] = {}
        self._dirty_cache: Optional[Tuple[FailureScenario, int, np.ndarray]] = None

    # ------------------------------------------------------------------ state
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def scenario(self) -> FailureScenario:
        return self._scenario

    def set_scenario(self, scenario: FailureScenario) -> None:
        """Swap the failure scenario (new evaluation minute, same simulator)."""
        self._scenario = scenario
        self.drops_per_link = {}
        self._dirty_cache = None

    # ------------------------------------------------------------ bulk probing
    def prime_paths(self, paths: Sequence[Path]) -> None:
        """Register a probe matrix's path table for :meth:`probe_paths_bulk`.

        Builds a link -> path-rows reverse index once per controller cycle so
        that scenario changes re-derive the dirty-path mask in time
        proportional to the *affected* rows, not the whole matrix.
        """
        self._primed_paths = list(paths)
        rows_by_link: Dict[int, List[int]] = {}
        for row, path in enumerate(self._primed_paths):
            for link_id in path.link_ids:
                rows_by_link.setdefault(link_id, []).append(row)
        self._rows_by_link = {
            link_id: np.asarray(rows, dtype=np.int64)
            for link_id, rows in rows_by_link.items()
        }
        self._dirty_cache = None

    def _dirty_path_mask(self) -> np.ndarray:
        """Boolean mask over primed paths: does the path cross a failed link?

        Cached per ``(scenario, scenario.version)``; the fault model bumps the
        version on every in-place activation/deactivation.
        """
        scenario = self._scenario
        cache = self._dirty_cache
        if cache is not None and cache[0] is scenario and cache[1] == scenario.version:
            return cache[2]
        mask = np.zeros(len(self._primed_paths), dtype=bool)
        for link_id in scenario.failures:
            rows = self._rows_by_link.get(link_id)
            if rows is not None:
                mask[rows] = True
        self._dirty_cache = (scenario, scenario.version, mask)
        return mask

    def probe_paths_bulk(
        self,
        path_indices: np.ndarray,
        counts: np.ndarray,
        start_sequences: np.ndarray,
        configs: Sequence[ProbeConfig],
        config_of: np.ndarray,
        confirms: Sequence[int],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe many ``(path, count)`` rows in one columnar call.

        ``path_indices[i]`` names a primed path receiving ``counts[i]`` probes
        starting at sequence ``start_sequences[i]``; ``configs[config_of[i]]``
        and ``confirms[config_of[i]]`` supply the row's probe entropy and
        loss-confirmation settings (one entry per firing pinger).  Rows whose
        path crosses no failed link -- the overwhelming majority in steady
        state -- are answered wholesale as ``(count, 0)`` without consuming
        any randomness, exactly like :meth:`probe_path_batch`'s early return;
        dirty rows fall back to that scalar kernel *in row order*, so random
        draws and per-link drop attribution are byte-identical to issuing the
        same rows one call at a time.  Returns ``(sent, lost)`` int64 arrays
        including confirmation resends.
        """
        if self._primed_paths is None:
            raise RuntimeError("prime_paths() must be called before probe_paths_bulk()")
        counts = np.asarray(counts, dtype=np.int64)
        sent = counts.copy()
        lost = np.zeros(len(counts), dtype=np.int64)
        dirty = self._dirty_path_mask()
        for i in np.flatnonzero(dirty[path_indices]):
            firing = int(config_of[i])
            row_sent, row_lost = self.probe_path_batch(
                self._primed_paths[int(path_indices[i])],
                configs[firing],
                int(counts[i]),
                int(start_sequences[i]),
                confirm_losses=confirms[firing],
            )
            sent[i] = row_sent
            lost[i] = row_lost
        return sent, lost

    # ------------------------------------------------------------ primitives
    def _dropped_on_link(self, failure: LinkFailure, flow_key: Tuple) -> bool:
        if failure.mode is LossMode.FULL:
            return True
        if failure.mode is LossMode.DETERMINISTIC_PARTIAL:
            return failure.drops_flow(flow_key)
        return bool(self._rng.random() < failure.loss_rate)

    def transmit(self, link_ids: Iterable[int], flow_key: Tuple) -> bool:
        """One-way transmission attempt; returns ``True`` when delivered."""
        for link_id in link_ids:
            failure = self._scenario.failure_on(link_id)
            if failure is None:
                continue
            if self._dropped_on_link(failure, flow_key):
                self.drops_per_link[link_id] = self.drops_per_link.get(link_id, 0) + 1
                return False
        return True

    def round_trip(self, path: Path, packet: ProbePacket) -> bool:
        """Probe plus echoed response; lost if either direction is dropped."""
        forward_key = packet.flow_key()
        if not self.transmit(path.link_ids, forward_key):
            return False
        if not self._probe_reverse_path:
            return True
        reverse_key = (
            packet.dst_server,
            packet.src_server,
            packet.dst_port,
            packet.src_port,
            packet.protocol,
        )
        return self.transmit(path.link_ids, reverse_key)

    # ------------------------------------------------------ batched probing
    def _batch_transmit(self, failures, ports, src: str, dst: str, dst_port: int):
        """Vectorized round trips for probes distinguished only by source port.

        Returns a boolean delivery mask, one entry per probe.  Links are
        applied in the same iteration order as the scalar ``transmit`` loop
        in each direction; per-link drop counts are accounted the same way (a
        probe is charged to the first link that drops it).  Random-loss draws consume the generator
        in batch order, so batched and scalar probing are two distinct --
        individually reproducible -- random regimes.
        """
        count = len(ports)
        alive = np.ones(count, dtype=bool)
        for direction in ("forward", "reverse"):
            if direction == "reverse" and not self._probe_reverse_path:
                break
            for link_id, failure in failures:
                if not alive.any():
                    return alive
                if failure.mode is LossMode.FULL:
                    dead = alive.copy()
                elif failure.mode is LossMode.DETERMINISTIC_PARTIAL:
                    # The flow key varies only through the source port, so one
                    # decision per distinct port covers the whole batch.
                    decisions = {}
                    for port in np.unique(ports):
                        key = (
                            (src, dst, int(port), dst_port, 17)
                            if direction == "forward"
                            else (dst, src, dst_port, int(port), 17)
                        )
                        decisions[int(port)] = failure.drops_flow(key)
                    pattern = np.array([decisions[int(p)] for p in ports], dtype=bool)
                    dead = alive & pattern
                else:
                    dead = alive & (self._rng.random(count) < failure.loss_rate)
                if dead.any():
                    self.drops_per_link[link_id] = self.drops_per_link.get(
                        link_id, 0
                    ) + int(dead.sum())
                    alive &= ~dead
        return alive

    def probe_path_batch(
        self,
        path: Path,
        config: ProbeConfig,
        count: int,
        start_sequence: int = 0,
        confirm_losses: int = 0,
    ) -> Tuple[int, int]:
        """Send ``count`` pinned probes on one path in a single vectorized call.

        Semantically equivalent to ``count`` calls of :meth:`round_trip` plus
        the pinger's loss-confirmation resends, but whole failure-free paths
        (the overwhelming majority in steady state) cost one dictionary probe
        and no random draws -- this is what lets the telemetry engine sustain
        hundreds of thousands of probe events per wall-clock second.  Returns
        ``(sent, lost)`` including confirmation traffic, the same counters the
        scalar pinger loop produces.
        """
        if count <= 0:
            return 0, 0
        # Same link iteration order as the scalar transmit() loop, so drop
        # attribution (which failed link gets charged) matches that regime.
        failures = [
            (link_id, failure)
            for link_id in path.link_ids
            if (failure := self._scenario.failure_on(link_id)) is not None
        ]
        if not failures:
            return count, 0
        sequences = np.arange(start_sequence, start_sequence + count)
        ports = config.base_port + (sequences % config.port_range)
        alive = self._batch_transmit(failures, ports, path.src, path.dst, config.destination_port)
        lost = int(np.count_nonzero(~alive))
        sent = count
        # Loss confirmation: every lost probe is re-sent with identical
        # content ``confirm_losses`` times (§3.1); resends of deterministically
        # dropped probes die again, random ones re-roll.
        dead_ports = ports[~alive]
        for _ in range(confirm_losses):
            if len(dead_ports) == 0:
                break
            sent += len(dead_ports)
            redelivered = self._batch_transmit(
                failures, dead_ports, path.src, path.dst, config.destination_port
            )
            lost += int(np.count_nonzero(~redelivered))
        return sent, lost

    # ------------------------------------------------------- pinned probing
    def probe_path(self, path: Path, config: ProbeConfig) -> PathObservation:
        """Send ``config.probes_per_path`` pinned probes along one path."""
        lost = 0
        for sequence in range(config.probes_per_path):
            packet = config.packet_for(path, sequence)
            if not self.round_trip(path, packet):
                lost += 1
        return PathObservation(
            path_index=path.path_id, sent=config.probes_per_path, lost=lost
        )

    def observe_probe_matrix(
        self, probe_matrix: ProbeMatrix, config: Optional[ProbeConfig] = None
    ) -> ObservationSet:
        """Probe every path of a probe matrix once per window (deTector's view)."""
        config = config or ProbeConfig()
        observations = ObservationSet()
        for index, path in enumerate(probe_matrix.paths):
            lost = 0
            for sequence in range(config.probes_per_path):
                packet = config.packet_for(path, sequence)
                if not self.round_trip(path, packet):
                    lost += 1
            observations.add(
                PathObservation(path_index=index, sent=config.probes_per_path, lost=lost)
            )
        return observations

    # --------------------------------------------------------- ECMP probing
    def probe_pair_ecmp(
        self,
        router: ECMPRouter,
        src: str,
        dst: str,
        num_probes: int,
        config: Optional[ProbeConfig] = None,
    ) -> PairProbeOutcome:
        """Probe a pair the Pingmesh/NetNORAD way: no path pinning.

        Each probe uses a fresh source port; the simulated switches hash the
        flow onto one of the candidate paths.  Only the aggregate per-pair
        loss count is observable to those systems -- the per-path breakdown is
        kept for analysis but hidden from their detectors.
        """
        config = config or ProbeConfig()
        lost = 0
        losses_by_path: Dict[int, int] = {}
        for sequence in range(num_probes):
            src_port = config.base_port + (sequence % max(num_probes, config.port_range))
            packet = ProbePacket(
                src_server=src,
                dst_server=dst,
                src_port=src_port,
                dst_port=config.destination_port,
                dscp=config.dscp_values[sequence % len(config.dscp_values)],
                sequence=sequence,
            )
            path_index = router.route_index(packet.flow_key())
            if path_index is None:
                raise ValueError(f"ECMP router has no candidate paths for {src} -> {dst}")
            path = router.path_at(path_index)
            if not self.round_trip(path, packet):
                lost += 1
                losses_by_path[path_index] = losses_by_path.get(path_index, 0) + 1
        return PairProbeOutcome(
            src=src, dst=dst, sent=num_probes, lost=lost, losses_by_path=losses_by_path
        )
