"""Named random streams derived from one seed.

Every stochastic layer of a scenario -- churn (`ChurnSchedule`), failure
synthesis (`FailureGenerator`), packet-level loss (`ProbeSimulator`), probe
jitter and fault dynamics (the telemetry engine) -- must be reproducible from
a *single* ``--seed`` flag, yet remain independent: drawing one extra churn
event must not shift every subsequent packet-loss draw.  The repo has no bare
``random.random()`` call sites (audited); all randomness flows through
explicit generators, and :class:`SeededStreams` is the factory those
generators come from.

Each stream is keyed by a stable name: the child seed is
``SeedSequence([crc32(name), *root_entropy])``, so streams are independent of
each other and of the order they are requested in.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional, Sequence

import numpy as np

__all__ = ["SeededStreams"]


class SeededStreams:
    """Factory of named, mutually independent random generators.

    >>> streams = SeededStreams(2017)
    >>> churn_rng = streams.generator("churn")
    >>> probe_rng = streams.generator("probes")

    ``generator(name)`` always returns a *fresh* generator at the stream's
    origin, so two calls with the same name replay identical draws -- exactly
    the property differential tests and benchmark replays need.
    """

    def __init__(self, seed: Optional[int] = None):
        root = np.random.SeedSequence(seed)
        entropy = root.entropy
        self._entropy: Sequence[int] = (
            tuple(entropy) if isinstance(entropy, (list, tuple)) else (int(entropy),)
        )

    @property
    def entropy(self) -> Sequence[int]:
        """Root entropy; pass it to ``SeededStreams`` to recreate every stream."""
        return self._entropy

    def _sequence(self, name: str) -> np.random.SeedSequence:
        key = zlib.crc32(name.encode("utf-8"))
        return np.random.SeedSequence([key, *self._entropy])

    def generator(self, name: str) -> np.random.Generator:
        """A fresh ``numpy.random.Generator`` for the named stream."""
        return np.random.default_rng(self._sequence(name))

    def pyrandom(self, name: str) -> random.Random:
        """A fresh stdlib ``random.Random`` seeded from the named stream."""
        state = self._sequence(name).generate_state(2)
        return random.Random(int(state[0]) << 32 | int(state[1]))

    def spawn_seed(self, name: str) -> int:
        """A deterministic 64-bit integer seed derived from the named stream.

        For components that take a plain ``seed=`` integer rather than a
        generator -- e.g. the experiment harnesses the parallel runner ships
        to worker processes.  Like :meth:`generator`, the value depends only
        on the root entropy and the name, never on call order.
        """
        state = self._sequence(name).generate_state(2)
        return int(state[0]) << 32 | int(state[1])

    def child(self, name: str) -> "SeededStreams":
        """A nested stream family (e.g. one per engine scenario)."""
        child = SeededStreams.__new__(SeededStreams)
        key = zlib.crc32(name.encode("utf-8"))
        child._entropy = (key, *self._entropy)
        return child
