"""Background workload traffic model.

The paper replays packet traces from a university data center [11] so that
probing competes with realistic traffic (Fig. 4(c)/(d) report the RTT and
jitter the workload experiences as probing frequency grows).  Without those
traces we synthesise an equivalent workload: mostly short, HTTP-like flows
with heavy-tailed sizes, Poisson arrivals at every server, destinations picked
uniformly at random, and ECMP spreading each flow over the candidate paths.

The output the rest of the system needs is simply the *average utilisation of
every link*; the latency model turns utilisation into RTT/jitter and the
experiment harness adds the probing bandwidth on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..routing import ECMPRouter, Path
from ..topology import Topology

__all__ = ["WorkloadConfig", "Flow", "WorkloadModel"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Synthetic traffic knobs.

    Attributes
    ----------
    flows_per_server_per_second:
        Poisson arrival rate of new flows at each server.
    mean_flow_size_bytes:
        Mean of the heavy-tailed (Pareto) flow size distribution.  80 KB
        approximates the short HTTP transfers dominating the IMC 2010 traces.
    pareto_shape:
        Pareto tail index; 1.5 gives the mice/elephant mix typical of DCNs.
    link_capacity_bps:
        Capacity of every link (the testbed uses 1 GbE ports).
    duration_seconds:
        Window length over which utilisation is averaged.
    """

    flows_per_server_per_second: float = 8.0
    mean_flow_size_bytes: float = 80_000.0
    pareto_shape: float = 1.5
    link_capacity_bps: float = 1_000_000_000.0
    duration_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.flows_per_server_per_second < 0:
            raise ValueError("flows_per_server_per_second must be non-negative")
        if self.pareto_shape <= 1.0:
            raise ValueError("pareto_shape must be > 1 for a finite mean")
        if self.link_capacity_bps <= 0:
            raise ValueError("link_capacity_bps must be positive")


@dataclass(frozen=True)
class Flow:
    """One workload flow: endpoints, bytes and the path ECMP hashed it onto."""

    src: str
    dst: str
    size_bytes: float
    path_index: int


class WorkloadModel:
    """Generates synthetic flows and derives per-link utilisation."""

    def __init__(
        self,
        topology: Topology,
        candidate_paths: Sequence[Path],
        rng: np.random.Generator,
        config: Optional[WorkloadConfig] = None,
    ):
        self._topology = topology
        self._config = config or WorkloadConfig()
        self._rng = rng
        self._paths = list(candidate_paths)
        self._router = ECMPRouter(self._paths, seed=int(rng.integers(0, 2**31 - 1)))
        self._endpoints = sorted({p.src for p in self._paths})
        if len(self._endpoints) < 2:
            raise ValueError("workload model needs at least two endpoints with candidate paths")

    @property
    def config(self) -> WorkloadConfig:
        return self._config

    # ------------------------------------------------------------------ flows
    def generate_flows(self) -> List[Flow]:
        """Draw one window's worth of flows."""
        config = self._config
        flows: List[Flow] = []
        expected = config.flows_per_server_per_second * config.duration_seconds
        for src in self._endpoints:
            count = int(self._rng.poisson(expected))
            if count == 0:
                continue
            # Pareto sizes with the configured mean: scale = mean * (shape-1)/shape.
            scale = config.mean_flow_size_bytes * (config.pareto_shape - 1.0) / config.pareto_shape
            sizes = scale * (1.0 + self._rng.pareto(config.pareto_shape, size=count))
            for size in sizes:
                dst = src
                while dst == src:
                    dst = self._endpoints[int(self._rng.integers(0, len(self._endpoints)))]
                sport = int(self._rng.integers(1024, 65535))
                dport = 80
                index = self._router.route_index((src, dst, sport, dport, 6))
                if index is None:
                    continue
                flows.append(Flow(src=src, dst=dst, size_bytes=float(size), path_index=index))
        return flows

    # -------------------------------------------------------------- utilisation
    def link_utilization(self, flows: Optional[Sequence[Flow]] = None) -> Dict[int, float]:
        """Average utilisation (0..1) of every switch link over the window."""
        config = self._config
        if flows is None:
            flows = self.generate_flows()
        bits_per_link: Dict[int, float] = {
            link.link_id: 0.0 for link in self._topology.switch_links
        }
        for flow in flows:
            path = self._paths[flow.path_index]
            bits = flow.size_bytes * 8.0
            for link_id in path.link_ids:
                if link_id in bits_per_link:
                    bits_per_link[link_id] += bits
        denominator = config.link_capacity_bps * config.duration_seconds
        return {
            link_id: min(bits / denominator, 0.99)
            for link_id, bits in bits_per_link.items()
        }

    def mean_utilization(self, utilization: Optional[Dict[int, float]] = None) -> float:
        utilization = utilization if utilization is not None else self.link_utilization()
        if not utilization:
            return 0.0
        return sum(utilization.values()) / len(utilization)
