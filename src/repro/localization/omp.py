"""OMP: orthogonal-matching-pursuit localization (Pati et al., 1993).

OMP treats loss localization as a sparse linear inverse problem.  Writing
``x_l = -log(1 - loss_rate_l)`` for each link and
``y_p = -log(1 - loss_rate_p)`` for each path, the independent-loss model
gives ``y = R x`` where ``R`` is the probe matrix.  Failures are sparse, so
OMP recovers ``x`` greedily:

1. start with an empty support and residual ``r = y``;
2. add the link whose (normalised) column correlates most with ``r``;
3. re-fit ``x`` by least squares restricted to the support, update ``r``;
4. stop when the residual is small or the support stops improving.

Links whose recovered ``x_l`` exceeds a threshold are reported faulty.  OMP
estimates loss *rates* as a by-product, but it needs dense linear algebra over
the whole matrix, which is why the paper finds it an order of magnitude slower
than PLL at DCN scale.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core import ProbeMatrix
from ..contracts import informational_wall
from .observations import LocalizationResult, ObservationSet

__all__ = ["OMPConfig", "OMPLocalizer"]


@dataclass(frozen=True)
class OMPConfig:
    """Tuning knobs of the OMP baseline.

    Attributes
    ----------
    residual_tolerance:
        Stop once the L2 norm of the residual falls below this value.
    max_support:
        Upper bound on the number of links added to the support (``None``
        means up to the number of lossy paths).
    loss_rate_threshold:
        A link is reported faulty when its recovered loss rate exceeds this
        value; filters out tiny least-squares artefacts.
    clip_loss_rate:
        Path loss rates are clipped to this maximum before the log transform
        so that a 100%-loss path does not produce an infinite observation.
    """

    residual_tolerance: float = 1e-6
    max_support: Optional[int] = None
    loss_rate_threshold: float = 1e-3
    clip_loss_rate: float = 0.9999

    def __post_init__(self) -> None:
        if self.residual_tolerance <= 0:
            raise ValueError("residual_tolerance must be positive")
        if not 0.0 < self.clip_loss_rate < 1.0:
            raise ValueError("clip_loss_rate must lie in (0, 1)")


class OMPLocalizer:
    """Callable localizer implementing orthogonal matching pursuit."""

    name = "OMP"

    def __init__(self, config: Optional[OMPConfig] = None):
        self.config = config or OMPConfig()

    @informational_wall(
        "LocalizationResult.elapsed_seconds is informational (excluded from "
        "deterministic snapshots); accuracy gates use the verdict itself"
    )
    def localize(
        self, probe_matrix: ProbeMatrix, observations: ObservationSet
    ) -> LocalizationResult:
        start = time.perf_counter()
        config = self.config

        observed = observations.path_indices()
        if not observed:
            return LocalizationResult([], {}, [], time.perf_counter() - start, self.name)

        # Build the measurement system restricted to observed paths.  CSR rows
        # of the incidence index are already column positions, so each row is
        # one fancy-index assignment.
        link_ids = list(probe_matrix.link_ids)
        index = probe_matrix.incidence
        matrix = np.zeros((len(observed), len(link_ids)), dtype=float)
        y = np.zeros(len(observed), dtype=float)
        for row, path_index in enumerate(observed):
            obs = observations.get(path_index)
            rate = min(obs.loss_rate, config.clip_loss_rate)
            y[row] = -math.log(1.0 - rate)
            matrix[row, index.row_cols(path_index)] = 1.0

        lossy_count = len(observations.lossy_paths())
        if lossy_count == 0:
            return LocalizationResult([], {}, [], time.perf_counter() - start, self.name)
        max_support = config.max_support or lossy_count

        column_norms = np.linalg.norm(matrix, axis=0)
        usable = column_norms > 0

        support: List[int] = []
        residual = y.copy()
        solution = np.zeros(len(link_ids), dtype=float)
        for _ in range(max_support):
            if np.linalg.norm(residual) <= config.residual_tolerance:
                break
            correlations = matrix.T @ residual
            with np.errstate(divide="ignore", invalid="ignore"):
                normalized = np.where(usable, np.abs(correlations) / column_norms, 0.0)
            for chosen in support:
                normalized[chosen] = 0.0
            best = int(np.argmax(normalized))
            if normalized[best] <= 0.0:
                break
            support.append(best)
            submatrix = matrix[:, support]
            coefficients, *_ = np.linalg.lstsq(submatrix, y, rcond=None)
            residual = y - submatrix @ coefficients
        if support:
            solution[:] = 0.0
            solution[support] = coefficients

        suspected: List[int] = []
        estimates: Dict[int, float] = {}
        for column in support:
            x_value = float(solution[column])
            loss_rate = 1.0 - math.exp(-max(x_value, 0.0))
            if loss_rate >= config.loss_rate_threshold:
                link = link_ids[column]
                suspected.append(link)
                estimates[link] = loss_rate

        # Lossy paths untouched by any suspect remain unexplained.
        suspect_set = set(suspected)
        unexplained = [
            p
            for p in observations.lossy_paths()
            if not (probe_matrix.links_on(p) & suspect_set)
        ]

        elapsed = time.perf_counter() - start
        return LocalizationResult(
            suspected_links=suspected,
            estimated_loss_rates=estimates,
            unexplained_paths=unexplained,
            elapsed_seconds=elapsed,
            algorithm=self.name,
        )
