"""SCORE: risk-model greedy localization (Kompella et al., NSDI 2005).

SCORE treats each link as a *risk group*: the set of paths that would be
affected if the link failed.  It greedily picks risk groups ordered by *hit
ratio* (fraction of the group's paths that are actually lossy), breaking ties
by *coverage* (how many unexplained lossy paths the group explains), until all
lossy paths are explained.  The classical formulation only admits groups whose
hit ratio reaches 1.0 -- appropriate for the full-loss failures it was
designed for, and the reason it underperforms PLL on partial losses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core import ProbeMatrix
from ..contracts import informational_wall
from .observations import LocalizationResult, ObservationSet

__all__ = ["ScoreConfig", "ScoreLocalizer"]


@dataclass(frozen=True)
class ScoreConfig:
    """Tuning knobs of the SCORE baseline.

    Attributes
    ----------
    hit_ratio_threshold:
        Minimum hit ratio a risk group needs to be selectable.  1.0 is the
        classical SCORE; lowering it ("error threshold" in the original
        paper) trades false negatives for false positives.
    """

    hit_ratio_threshold: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.hit_ratio_threshold <= 1.0:
            raise ValueError("hit_ratio_threshold must lie in (0, 1]")


class ScoreLocalizer:
    """Callable localizer implementing SCORE."""

    name = "SCORE"

    def __init__(self, config: Optional[ScoreConfig] = None):
        self.config = config or ScoreConfig()

    @informational_wall(
        "LocalizationResult.elapsed_seconds is informational (excluded from "
        "deterministic snapshots); accuracy gates use the verdict itself"
    )
    def localize(
        self, probe_matrix: ProbeMatrix, observations: ObservationSet
    ) -> LocalizationResult:
        start = time.perf_counter()

        observed = observations.path_indices()
        lossy_paths: Set[int] = set(observations.lossy_paths())

        # Risk groups restricted to observed paths, gathered off the CSC
        # columns through an observed-path mask.
        index = probe_matrix.incidence
        kernels = index.kernels
        observed_mask = kernels.bool_zeros(index.num_paths)
        kernels.set_true(observed_mask, kernels.int_array(observed))
        group: Dict[int, Set[int]] = {}
        lossy_in_group: Dict[int, Set[int]] = {}
        for path in lossy_paths:
            for link in probe_matrix.links_on(path):
                if link not in group:
                    members = {
                        int(p)
                        for p in kernels.take_true(
                            index.col_rows(index.position(link)), observed_mask
                        )
                    }
                    group[link] = members
                    lossy_in_group[link] = members & lossy_paths

        unexplained = set(lossy_paths)
        suspected: List[int] = []
        pool = set(group)
        threshold = self.config.hit_ratio_threshold
        while unexplained and pool:
            best: Optional[Tuple[float, int, int]] = None  # (hit ratio, coverage, link)
            for link in sorted(pool):
                members = group[link]
                if not members:
                    continue
                hit_ratio = len(lossy_in_group[link]) / len(members)
                if hit_ratio < threshold:
                    continue
                coverage = len(lossy_in_group[link] & unexplained)
                if coverage == 0:
                    continue
                key = (hit_ratio, coverage, -link)
                if best is None or key > (best[0], best[1], -best[2]):
                    best = (hit_ratio, coverage, link)
            if best is None:
                break
            _, _, link = best
            suspected.append(link)
            pool.discard(link)
            unexplained -= lossy_in_group[link]

        elapsed = time.perf_counter() - start
        return LocalizationResult(
            suspected_links=suspected,
            estimated_loss_rates={},
            unexplained_paths=sorted(unexplained),
            elapsed_seconds=elapsed,
            algorithm=self.name,
        )
