"""PLL: the Packet Loss Localization algorithm of deTector (§5.3).

Given the probe matrix and the (pre-processed) per-path loss observations,
PLL finds a small set of links that best explains the lossy paths.  It is a
descendant of the Tomo greedy with two changes motivated by data-center loss
patterns:

* the probe matrix is decomposed into independent components first (same
  decomposition as PMC, Observation 1), so each component is solved on a tiny
  sub-matrix -- this is where the order-of-magnitude speed-up over Tomo/SCORE/
  OMP comes from, and
* links are pre-filtered by a *hit ratio* (fraction of the link's probe paths
  that are lossy) before the greedy, which copes with *partial* packet loss:
  a blackholed flow makes only a subset of the paths over the faulty link
  lossy, so requiring *all* paths to be lossy (as classical tomography does)
  would miss it, while accepting links with a single lossy path would flood
  the result with false positives.

Steps (numbered as in the paper):

1. decompose the probe matrix and solve each component separately;
2. drop links whose probe paths are all loss-free, compute each remaining
   link's hit ratio;
3. score every remaining link by the number of lost packets it can explain;
4. among links whose hit ratio exceeds the threshold, greedily pick the one
   with the highest score and mark its lossy paths as explained;
5. repeat 3-4 until every lossy path is explained (or no candidate remains).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import ProbeMatrix
from ..core.incidence import IncidenceIndex
from ..contracts import informational_wall
from .observations import LocalizationResult, ObservationSet

__all__ = ["PLLConfig", "PLLLocalizer"]


@dataclass(frozen=True)
class PLLConfig:
    """Tuning knobs of PLL.

    Attributes
    ----------
    hit_ratio_threshold:
        Minimum fraction of a link's probe paths that must be lossy for the
        link to be a candidate (0.6 by default, the value used in the paper's
        experiments).
    use_decomposition:
        Solve each connected component of the probe matrix separately
        (step 1).  Disabling it reproduces a "flat" greedy for ablations.
    explain_all:
        When ``True`` and some lossy paths remain unexplained after the
        thresholded greedy exhausts its candidates, fall back to picking the
        best-scoring link regardless of hit ratio until everything is
        explained.  The paper's PLL stops instead (the remaining losses are
        treated as noise); the fallback exists for ablation experiments.
    estimate_loss_rates:
        Attach a per-suspect loss-rate estimate to the result (§3.2: deTector
        "estimates the loss rates of suspected links").
    """

    hit_ratio_threshold: float = 0.6
    use_decomposition: bool = True
    explain_all: bool = False
    estimate_loss_rates: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_ratio_threshold <= 1.0:
            raise ValueError("hit_ratio_threshold must lie in [0, 1]")


class PLLLocalizer:
    """Callable localizer implementing PLL."""

    name = "PLL"

    def __init__(self, config: Optional[PLLConfig] = None):
        self.config = config or PLLConfig()

    @informational_wall(
        "LocalizationResult.elapsed_seconds is informational (excluded from "
        "deterministic snapshots); accuracy gates use the verdict itself"
    )
    def localize(
        self, probe_matrix: ProbeMatrix, observations: ObservationSet
    ) -> LocalizationResult:
        """Run PLL and return the suspected links."""
        start = time.perf_counter()
        config = self.config

        observed_paths = observations.path_indices()
        losses = observations.losses()  # lossy path -> lost packet count
        lossy_paths = set(losses)

        suspected: List[int] = []
        unexplained: Set[int] = set()

        if lossy_paths:
            # Observed/lossy path masks shared by every component; per-link
            # counts are gathered component-locally so clean components cost
            # nothing (the decomposition is what makes PLL fast, §5.3).
            index = probe_matrix.incidence
            kernels = index.kernels
            observed_mask = kernels.bool_zeros(index.num_paths)
            kernels.set_true(observed_mask, kernels.int_array(observed_paths))
            lossy_mask = kernels.bool_zeros(index.num_paths)
            kernels.set_true(lossy_mask, kernels.int_array(sorted(lossy_paths)))

            components = self._components(probe_matrix, observed_paths)
            for component_links, component_paths in components:
                component_lossy = lossy_paths.intersection(component_paths)
                if not component_lossy:
                    continue
                picked, remaining = self._solve_component(
                    index,
                    component_links,
                    component_paths,
                    losses,
                    lossy_mask,
                    observed_mask,
                )
                suspected.extend(picked)
                unexplained.update(remaining)

        estimates: Dict[int, float] = {}
        if config.estimate_loss_rates and suspected:
            estimates = self._estimate_loss_rates(probe_matrix, observations, suspected)

        elapsed = time.perf_counter() - start
        return LocalizationResult(
            suspected_links=suspected,
            estimated_loss_rates=estimates,
            unexplained_paths=sorted(unexplained),
            elapsed_seconds=elapsed,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------ steps
    def _components(
        self, probe_matrix: ProbeMatrix, observed_paths: Sequence[int]
    ) -> List[Tuple[Sequence[int], Sequence[int]]]:
        """Step 1: split (links, paths) into independent components."""
        if not self.config.use_decomposition:
            return [(list(probe_matrix.link_ids), list(observed_paths))]
        return probe_matrix.incidence.components(observed_paths)

    def _solve_component(
        self,
        index: IncidenceIndex,
        component_links: Sequence[int],
        component_paths: Sequence[int],
        losses: Dict[int, int],
        lossy_mask,
        observed_mask,
    ) -> Tuple[List[int], Set[int]]:
        """Steps 2-5 for one component."""
        config = self.config
        kernels = index.kernels

        # Step 2: keep only links with at least one lossy path; compute hit
        # ratios.  Counts are mask-gathers over the link's CSC column;
        # observed paths through a component link are exactly the component's
        # paths through it, so no per-component filtering is needed.
        candidates: Dict[int, List[int]] = {}
        hit_ratio: Dict[int, float] = {}
        for link in component_links:
            rows = index.col_rows(index.position(link))
            paths_here = kernels.count_true_at(observed_mask, rows)
            if not paths_here:
                continue
            lossy_here = kernels.take_true(rows, lossy_mask)
            if not len(lossy_here):
                continue  # all probe paths through this link are clean -> link is good
            candidates[link] = [int(p) for p in lossy_here]
            hit_ratio[link] = len(lossy_here) / paths_here

        unexplained: Set[int] = {p for p in component_paths if lossy_mask[p]}
        picked: List[int] = []

        def greedy(pool: Iterable[int]) -> None:
            pool = set(pool)
            while unexplained and pool:
                # Step 3: score = number of lost packets the link can explain.
                # Ties are broken by hit ratio: when a link and a "superset"
                # link on the same lossy paths explain the same losses, the
                # truly faulty link is the one whose healthy-path evidence is
                # weakest (highest hit ratio).
                best_link = None
                best_key = (0, -1.0)
                for link in sorted(pool):
                    score = sum(losses[p] for p in candidates[link] if p in unexplained)
                    key = (score, hit_ratio[link])
                    if key > best_key:
                        best_key = key
                        best_link = link
                if best_link is None or best_key[0] == 0:
                    break
                # Step 4: pick it and mark its lossy paths explained.
                picked.append(best_link)
                pool.discard(best_link)
                for path in candidates[best_link]:
                    unexplained.discard(path)

        # Step 4's threshold filter: only links with a high enough hit ratio.
        above_threshold = [
            link for link, ratio in hit_ratio.items() if ratio >= config.hit_ratio_threshold
        ]
        greedy(above_threshold)

        if unexplained and config.explain_all:
            greedy(set(candidates) - set(picked))

        return picked, unexplained

    # ------------------------------------------------------------- estimates
    @staticmethod
    def _estimate_loss_rates(
        probe_matrix: ProbeMatrix,
        observations: ObservationSet,
        suspected: Sequence[int],
    ) -> Dict[int, float]:
        """Attribute each path's loss rate to the single suspect on it (if any).

        A path that crosses exactly one suspected link gives a direct sample
        of that link's loss rate; averaging those samples is a simple,
        unbiased estimator when failures are sparse (the common case per the
        failure measurements cited in §6.4).  Paths crossing several suspects
        are skipped -- they only bound the combined rate.
        """
        suspect_set = set(suspected)
        samples: Dict[int, List[float]] = {link: [] for link in suspected}
        for obs in observations:
            if not obs.is_lossy:
                continue
            on_path = probe_matrix.links_on(obs.path_index) & suspect_set
            if len(on_path) == 1:
                (link,) = tuple(on_path)
                samples[link].append(obs.loss_rate)
        estimates: Dict[int, float] = {}
        for link, values in samples.items():
            if values:
                estimates[link] = sum(values) / len(values)
        return estimates
