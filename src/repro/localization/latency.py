"""Latency-spike detection: treating a slow RTT as a packet loss (§1).

The paper focuses on packet loss but notes that deTector "can also handle
latency issues by treating a round trip time (RTT) larger than a threshold as
a packet loss".  This module implements exactly that adapter: per-path RTT
samples are thresholded into the same ``(sent, lost)`` observations PLL
consumes, so a congested or slow link is localized with the unchanged
localization pipeline.

The implementation also reproduces the 100 ms response timeout of §6.1: an RTT
above the timeout would have been counted as a loss by the pinger anyway, so
the adapter's threshold can only be tighter than the timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from ..core import ProbeMatrix
from .observations import ObservationSet, PathObservation

__all__ = ["RTTThresholdConfig", "RTTObservationAdapter"]


@dataclass(frozen=True)
class RTTThresholdConfig:
    """How RTT samples are converted into loss-equivalent observations.

    Attributes
    ----------
    threshold_us:
        RTT above this value counts as a "loss" (a user-perceptible latency
        spike).  Choose it from the fabric's baseline RTT distribution, e.g.
        a few times the p99 of a healthy path.
    timeout_us:
        The pinger's response timeout (100 ms in the paper).  Samples above it
        are losses regardless of the threshold; the threshold may not exceed
        the timeout.
    """

    threshold_us: float = 2_000.0
    timeout_us: float = 100_000.0

    def __post_init__(self) -> None:
        if self.threshold_us <= 0:
            raise ValueError("threshold_us must be positive")
        if self.timeout_us < self.threshold_us:
            raise ValueError("timeout_us must be >= threshold_us")

    def is_spike(self, rtt_us: float) -> bool:
        return rtt_us > self.threshold_us


class RTTObservationAdapter:
    """Converts per-path RTT samples into PLL-compatible observations."""

    def __init__(self, config: Optional[RTTThresholdConfig] = None):
        self.config = config or RTTThresholdConfig()

    def path_observation(
        self, path_index: int, rtt_samples_us: Sequence[float]
    ) -> PathObservation:
        """Threshold one path's RTT samples into a ``(sent, lost)`` observation."""
        sent = len(rtt_samples_us)
        lost = sum(1 for rtt in rtt_samples_us if self.config.is_spike(rtt))
        return PathObservation(path_index=path_index, sent=sent, lost=lost)

    def observations(
        self,
        probe_matrix: ProbeMatrix,
        rtt_samples_by_path: Mapping[int, Sequence[float]],
    ) -> ObservationSet:
        """Threshold every path's samples; paths without samples are skipped.

        The result plugs straight into :class:`~repro.localization.PLLLocalizer`
        (optionally after the usual pre-processing), so latency spikes are
        localized exactly like packet losses.
        """
        observations = ObservationSet()
        for path_index, samples in rtt_samples_by_path.items():
            if path_index < 0 or path_index >= probe_matrix.num_paths:
                raise KeyError(f"path index {path_index} outside the probe matrix")
            if not len(samples):
                continue
            observations.add(self.path_observation(path_index, samples))
        return observations

    def baseline_threshold(
        self, healthy_samples_us: Sequence[float], multiplier: float = 3.0
    ) -> RTTThresholdConfig:
        """Derive a threshold from healthy-path RTT samples (multiplier x max observed).

        Convenience for operators: measure a healthy window, then monitor with
        ``multiplier`` times the worst healthy RTT as the spike threshold.
        """
        if not len(healthy_samples_us):
            raise ValueError("healthy_samples_us must not be empty")
        if multiplier <= 1.0:
            raise ValueError("multiplier must be > 1")
        threshold = multiplier * max(healthy_samples_us)
        return RTTThresholdConfig(
            threshold_us=min(threshold, self.config.timeout_us),
            timeout_us=self.config.timeout_us,
        )
