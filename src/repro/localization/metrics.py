"""Evaluation metrics for loss localization, as defined in §5.3 / §6.4.

* **accuracy** (true positive ratio): bad links correctly identified as bad,
  over all truly bad links;
* **false positive ratio**: good links incorrectly identified as bad, over all
  identified links (correctly plus incorrectly identified);
* **false negative ratio**: bad links incorrectly identified as good, over all
  truly bad links.

The paper reports all three (Tables 4-5, Figs. 4-6); precision is included as
a convenience even though the paper does not quote it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["ConfusionCounts", "evaluate_localization", "aggregate_metrics"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Link-level confusion counts plus the paper's derived ratios."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def accuracy(self) -> float:
        """True positive ratio: TP / (TP + FN); 1.0 when there were no bad links."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def false_positive_ratio(self) -> float:
        """FP over all identified links: FP / (TP + FP); 0.0 when nothing was identified."""
        denominator = self.true_positives + self.false_positives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def false_negative_ratio(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.false_negatives / denominator if denominator else 0.0

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "tn": self.true_negatives,
            "accuracy": self.accuracy,
            "false_positive_ratio": self.false_positive_ratio,
            "false_negative_ratio": self.false_negative_ratio,
            "precision": self.precision,
        }


def evaluate_localization(
    true_bad_links: Iterable[int],
    suspected_links: Iterable[int],
    all_links: Iterable[int],
) -> ConfusionCounts:
    """Compare a localizer's verdict against ground truth.

    Parameters
    ----------
    true_bad_links:
        Link ids that were actually failed in the scenario.
    suspected_links:
        Link ids the localizer reported.
    all_links:
        The full link universe (needed for the true-negative count).
    """
    truth = set(true_bad_links)
    predicted = set(suspected_links)
    universe = set(all_links)
    if not truth <= universe:
        raise ValueError("true_bad_links contains links outside the universe")
    if not predicted <= universe:
        raise ValueError("suspected_links contains links outside the universe")

    tp = len(truth & predicted)
    fp = len(predicted - truth)
    fn = len(truth - predicted)
    tn = len(universe) - tp - fp - fn
    return ConfusionCounts(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def aggregate_metrics(counts: Sequence[ConfusionCounts]) -> Dict[str, float]:
    """Average the derived ratios over many trials (how the tables report them)."""
    if not counts:
        return {
            "accuracy": 1.0,
            "false_positive_ratio": 0.0,
            "false_negative_ratio": 0.0,
            "precision": 1.0,
            "trials": 0,
        }
    n = len(counts)
    return {
        "accuracy": sum(c.accuracy for c in counts) / n,
        "false_positive_ratio": sum(c.false_positive_ratio for c in counts) / n,
        "false_negative_ratio": sum(c.false_negative_ratio for c in counts) / n,
        "precision": sum(c.precision for c in counts) / n,
        "trials": n,
    }
