"""Loss-pattern classification for suspected links (§7 "Loss diagnosis").

The paper leaves root-cause diagnosis as future work but observes that the
four loss patterns -- full loss, deterministic partial loss (blackholes),
random partial loss and congestion-induced loss -- "exhibit different loss
characteristics" and could be told apart to narrow the diagnosis scope.  This
module implements that extension with simple, interpretable statistics over
the per-path observations of a suspected link:

* **full loss**: every probe on every path over the link is lost,
* **deterministic partial loss**: losses are *bimodal across flows* -- the
  per-path loss rates cluster near 0 or near 1 when split per source port
  (blackholed flows lose everything, others nothing).  Without per-port
  counters we use the across-path dispersion: some paths lose (almost)
  everything while others lose (almost) nothing, or paths sit at intermediate
  rates that are *stable* across paths (the blackholed share of the port loop),
* **random partial loss**: per-path loss rates are similar, strictly between
  0 and 1, and consistent with binomial sampling noise around a common rate,
* **congestion**: like random loss but concentrated on the link's busiest
  paths and at low rates; flagged only when utilisation hints are provided.

The classifier returns a label and a confidence so operators (or an automated
runbook) can pick the next diagnostic step, e.g. "check for misconfigured
rules" for blackholes vs "check optics / CRC counters" for random loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core import ProbeMatrix
from .observations import ObservationSet

__all__ = ["LossPattern", "LinkDiagnosis", "LossPatternClassifier"]


class LossPattern(str, Enum):
    """The loss classes of §6.2 plus congestion, as discussed in §7."""

    FULL = "full"
    DETERMINISTIC_PARTIAL = "deterministic_partial"
    RANDOM_PARTIAL = "random_partial"
    CONGESTION = "congestion"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class LinkDiagnosis:
    """Classification outcome for one suspected link."""

    link_id: int
    pattern: LossPattern
    confidence: float
    mean_loss_rate: float
    per_path_loss_rates: Tuple[float, ...]
    hint: str

    def describe(self) -> str:
        return (
            f"link {self.link_id}: {self.pattern.value} "
            f"(confidence {self.confidence:.0%}, mean loss {self.mean_loss_rate:.1%}) -- {self.hint}"
        )


_HINTS: Mapping[LossPattern, str] = {
    LossPattern.FULL: "link or port down; check interface state and cabling",
    LossPattern.DETERMINISTIC_PARTIAL: "packet blackhole; check forwarding rules and TCAM entries",
    LossPattern.RANDOM_PARTIAL: "random corruption; check optics, CRC counters and buffer drops",
    LossPattern.CONGESTION: "loss concentrated on busy paths; check queue occupancy and ECN marks",
    LossPattern.UNKNOWN: "pattern unclear; collect another window of probes",
}


@dataclass(frozen=True)
class LossPatternClassifier:
    """Classifies the loss pattern of suspected links from path observations.

    Attributes
    ----------
    full_loss_threshold:
        Mean per-path loss rate above which the failure counts as full loss.
    clean_path_threshold:
        Loss rate below which a path counts as (effectively) clean.
    congestion_rate_ceiling:
        Congestion is only considered for mean loss rates below this value.
    min_paths:
        Minimum number of observed paths over the link for a confident verdict.
    """

    full_loss_threshold: float = 0.95
    clean_path_threshold: float = 0.02
    congestion_rate_ceiling: float = 0.05
    min_paths: int = 2

    def diagnose(
        self,
        probe_matrix: ProbeMatrix,
        observations: ObservationSet,
        suspected_links: Sequence[int],
        link_utilization: Optional[Mapping[int, float]] = None,
    ) -> List[LinkDiagnosis]:
        """Classify every suspected link."""
        return [
            self.diagnose_link(probe_matrix, observations, link, link_utilization)
            for link in suspected_links
        ]

    def diagnose_link(
        self,
        probe_matrix: ProbeMatrix,
        observations: ObservationSet,
        link_id: int,
        link_utilization: Optional[Mapping[int, float]] = None,
    ) -> LinkDiagnosis:
        """Classify one suspected link from the loss rates of its probe paths."""
        rates: List[float] = []
        for path_index in probe_matrix.paths_through(link_id):
            observation = observations.get(path_index)
            if observation is not None and observation.sent > 0:
                rates.append(observation.loss_rate)
        if len(rates) < max(self.min_paths, 1):
            return self._verdict(link_id, LossPattern.UNKNOWN, 0.3, rates)

        mean_rate = sum(rates) / len(rates)
        lossy_rates = [r for r in rates if r > self.clean_path_threshold]
        clean = [r for r in rates if r <= self.clean_path_threshold]

        if mean_rate >= self.full_loss_threshold:
            return self._verdict(link_id, LossPattern.FULL, min(1.0, mean_rate), rates)
        if not lossy_rates:
            return self._verdict(link_id, LossPattern.UNKNOWN, 0.4, rates)

        # Dispersion of the lossy paths' rates: blackholes produce either a
        # bimodal clean/lossy split or a tight cluster at the blackholed
        # fraction of the port loop; random loss produces rates consistent
        # with binomial noise around one common probability.
        spread = _coefficient_of_variation(lossy_rates)
        bimodal = bool(clean) and all(r >= 0.5 for r in lossy_rates)

        utilization_hint = 0.0
        if link_utilization is not None:
            utilization_hint = float(link_utilization.get(link_id, 0.0))

        if bimodal:
            confidence = 0.6 + 0.4 * min(1.0, len(clean) / len(rates) + 0.25)
            return self._verdict(
                link_id, LossPattern.DETERMINISTIC_PARTIAL, min(confidence, 0.95), rates
            )
        if mean_rate <= self.congestion_rate_ceiling and utilization_hint >= 0.7:
            return self._verdict(link_id, LossPattern.CONGESTION, 0.7, rates)
        if spread <= 0.6:
            confidence = 0.9 - min(0.3, spread / 2)
            return self._verdict(link_id, LossPattern.RANDOM_PARTIAL, confidence, rates)
        # High dispersion without a clean/lossy split: most consistent with a
        # blackhole whose match set overlaps the probe port loop unevenly.
        return self._verdict(link_id, LossPattern.DETERMINISTIC_PARTIAL, 0.55, rates)

    def _verdict(
        self,
        link_id: int,
        pattern: LossPattern,
        confidence: float,
        rates: Sequence[float],
    ) -> LinkDiagnosis:
        mean_rate = sum(rates) / len(rates) if rates else 0.0
        return LinkDiagnosis(
            link_id=link_id,
            pattern=pattern,
            confidence=max(0.0, min(1.0, confidence)),
            mean_loss_rate=mean_rate,
            per_path_loss_rates=tuple(rates),
            hint=_HINTS[pattern],
        )


def _coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation over mean; 0.0 for degenerate inputs."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean
