"""Loss observations: the input to every localization algorithm.

After each 30-second aggregation window a pinger reports, for every probe
path it owns, how many probes were sent and how many were lost.  The
diagnoser merges the reports of all pingers into one observation per probe
matrix row; that merged view is what the localization algorithms consume
(§5.1: data is of the form ``(path, number of losses)`` after pre-processing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..contracts import informational_fields

__all__ = ["PathObservation", "ObservationSet", "LocalizationResult", "merge_observations"]


@dataclass(frozen=True)
class PathObservation:
    """Probe outcome for one probe-matrix path over one aggregation window."""

    path_index: int
    sent: int
    lost: int

    def __post_init__(self) -> None:
        if self.sent < 0 or self.lost < 0:
            raise ValueError("sent and lost must be non-negative")
        if self.lost > self.sent:
            raise ValueError(
                f"path {self.path_index}: lost ({self.lost}) exceeds sent ({self.sent})"
            )

    @property
    def loss_rate(self) -> float:
        """Fraction of probes lost (0.0 when nothing was sent)."""
        return self.lost / self.sent if self.sent else 0.0

    @property
    def is_lossy(self) -> bool:
        return self.lost > 0


class ObservationSet:
    """A collection of per-path observations keyed by probe-matrix path index."""

    def __init__(self, observations: Iterable[PathObservation] = ()):
        self._by_path: Dict[int, PathObservation] = {}
        for obs in observations:
            self.add(obs)

    @classmethod
    def from_counters(cls, sent: Sequence[int], lost: Sequence[int]) -> "ObservationSet":
        """Build an observation set from parallel per-path counter vectors.

        ``sent[i]`` / ``lost[i]`` are the window totals for probe-matrix path
        ``i``; paths with no probes sent are omitted, matching what a pinger
        that never exercised a path would report.  This is how the telemetry
        engine's stream aggregator converts its flat counter arrays back into
        the observation form every localization algorithm consumes.
        """
        if len(sent) != len(lost):
            raise ValueError("sent and lost counter vectors must have equal length")
        observations = cls()
        for index, count in enumerate(sent):
            if count:
                observations.add(
                    PathObservation(path_index=index, sent=int(count), lost=int(lost[index]))
                )
        return observations

    def add(self, observation: PathObservation) -> None:
        existing = self._by_path.get(observation.path_index)
        if existing is None:
            self._by_path[observation.path_index] = observation
        else:
            self._by_path[observation.path_index] = PathObservation(
                path_index=observation.path_index,
                sent=existing.sent + observation.sent,
                lost=existing.lost + observation.lost,
            )

    def __len__(self) -> int:
        return len(self._by_path)

    def __iter__(self):
        return iter(sorted(self._by_path.values(), key=lambda o: o.path_index))

    def __contains__(self, path_index: int) -> bool:
        return path_index in self._by_path

    def get(self, path_index: int) -> Optional[PathObservation]:
        return self._by_path.get(path_index)

    def path_indices(self) -> List[int]:
        return sorted(self._by_path)

    def lossy_paths(self) -> List[int]:
        """Paths with at least one lost probe."""
        return sorted(i for i, obs in self._by_path.items() if obs.is_lossy)

    def losses(self) -> Dict[int, int]:
        """Map path index -> number of lost probes (lossy paths only)."""
        return {i: obs.lost for i, obs in self._by_path.items() if obs.is_lossy}

    def total_sent(self) -> int:
        return sum(obs.sent for obs in self._by_path.values())

    def total_lost(self) -> int:
        return sum(obs.lost for obs in self._by_path.values())

    def restrict(self, path_indices: Iterable[int]) -> "ObservationSet":
        """The subset of observations for the given paths (for decomposition)."""
        wanted = set(path_indices)
        return ObservationSet(
            obs for i, obs in self._by_path.items() if i in wanted
        )


def merge_observations(reports: Iterable[ObservationSet]) -> ObservationSet:
    """Merge the per-pinger reports of one window into a single view.

    Several pingers may probe the same path (each path is distributed to at
    least two pingers for fault tolerance, §3.1); their counts simply add up.
    """
    merged = ObservationSet()
    for report in reports:
        for obs in report:
            merged.add(obs)
    return merged


@informational_fields("elapsed_seconds")
@dataclass
class LocalizationResult:
    """Output of a localization algorithm.

    Attributes
    ----------
    suspected_links:
        Link ids the algorithm blames for the observed losses, most suspicious
        first.
    estimated_loss_rates:
        Link id -> estimated loss rate for the suspected links (when the
        algorithm provides an estimate).
    unexplained_paths:
        Lossy paths that no suspected link explains (normally empty; non-empty
        indicates the observations are inconsistent with any small failure
        set, e.g. because of noise filtered too aggressively).
    elapsed_seconds:
        Wall-clock time spent inside the algorithm (the paper quotes PLL at
        under a second for an 82944-link DCN).
    algorithm:
        Human-readable name of the localizer that produced this result.
    """

    suspected_links: List[int]
    estimated_loss_rates: Dict[int, float]
    unexplained_paths: List[int]
    elapsed_seconds: float
    algorithm: str

    @property
    def num_suspects(self) -> int:
        return len(self.suspected_links)

    def as_set(self) -> frozenset:
        return frozenset(self.suspected_links)
