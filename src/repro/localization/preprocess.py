"""Observation pre-processing: outlier removal and noise filtering (§5.1).

Two classes of observations must be removed before localization:

* **Outliers** caused by bad pingers/responders (server down or rebooting
  while probing): every path sourced at or targeted to an unhealthy server is
  dropped.  Server health comes from the watchdog service.
* **Normal-case noise**: links exhibit a benign background loss rate (1e-4 to
  1e-5) due to transient congestion and bit errors.  Paths whose loss rate
  (or absolute loss count) stays under a threshold are treated as healthy;
  the paper uses a 1e-3 loss-ratio threshold following Pingmesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from ..core import ProbeMatrix
from .observations import ObservationSet, PathObservation

__all__ = ["PreprocessConfig", "PreprocessReport", "preprocess_observations"]


@dataclass(frozen=True)
class PreprocessConfig:
    """Thresholds controlling which observations survive pre-processing.

    Attributes
    ----------
    loss_ratio_threshold:
        Minimum per-path loss ratio for the path to be considered lossy
        (default 1e-3, the Pingmesh value quoted in §5.1).
    min_losses:
        Alternative absolute threshold: a path with at least this many lost
        probes is kept even if its ratio is below ``loss_ratio_threshold``
        (useful for short windows with few probes).  Set to ``None`` to rely
        on the ratio alone.
    min_probes_for_ratio:
        A path needs at least this many probes before its loss *ratio* is
        meaningful; below it only the absolute ``min_losses`` test applies.
    """

    loss_ratio_threshold: float = 1e-3
    min_losses: Optional[int] = 3
    min_probes_for_ratio: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_ratio_threshold <= 1.0:
            raise ValueError("loss_ratio_threshold must lie in [0, 1]")
        if self.min_losses is not None and self.min_losses < 1:
            raise ValueError("min_losses must be >= 1 when given")
        if self.min_probes_for_ratio < 1:
            raise ValueError("min_probes_for_ratio must be >= 1")

    def path_is_lossy(self, observation: PathObservation) -> bool:
        """Decide whether an observation indicates a genuine failure."""
        if observation.lost == 0:
            return False
        if self.min_losses is not None and observation.lost >= self.min_losses:
            return True
        if observation.sent >= self.min_probes_for_ratio:
            return observation.loss_rate >= self.loss_ratio_threshold
        return False


@dataclass
class PreprocessReport:
    """What pre-processing kept and what it removed."""

    observations: ObservationSet
    dropped_outlier_paths: List[int] = field(default_factory=list)
    filtered_noise_paths: List[int] = field(default_factory=list)

    @property
    def lossy_paths(self) -> List[int]:
        return self.observations.lossy_paths()


def preprocess_observations(
    probe_matrix: ProbeMatrix,
    observations: ObservationSet,
    config: Optional[PreprocessConfig] = None,
    unhealthy_servers: Iterable[str] = (),
) -> PreprocessReport:
    """Apply §5.1 pre-processing and return the cleaned observation set.

    Parameters
    ----------
    probe_matrix:
        Needed to map paths to their endpoints for outlier removal.
    observations:
        Raw merged observations of one aggregation window.
    config:
        Thresholds; defaults to :class:`PreprocessConfig`.
    unhealthy_servers:
        Endpoints flagged by the watchdog (pingers or responders that were
        down / rebooting during the window).  Paths touching them are removed
        wholesale -- their losses say nothing about the network.
    """
    config = config or PreprocessConfig()
    unhealthy = set(unhealthy_servers)

    cleaned = ObservationSet()
    dropped: List[int] = []
    filtered: List[int] = []
    for obs in observations:
        path = probe_matrix.path(obs.path_index)
        if path.src in unhealthy or path.dst in unhealthy:
            dropped.append(obs.path_index)
            continue
        if obs.is_lossy and not config.path_is_lossy(obs):
            # Background noise: keep the path but zero out its losses so it
            # counts as evidence of health, exactly like a lossless path.
            filtered.append(obs.path_index)
            cleaned.add(
                PathObservation(path_index=obs.path_index, sent=obs.sent, lost=0)
            )
            continue
        cleaned.add(obs)
    return PreprocessReport(
        observations=cleaned,
        dropped_outlier_paths=dropped,
        filtered_noise_paths=filtered,
    )
