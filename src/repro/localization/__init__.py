"""Loss localization: the PLL algorithm, its baselines and evaluation metrics."""

from .classifier import LinkDiagnosis, LossPattern, LossPatternClassifier
from .latency import RTTObservationAdapter, RTTThresholdConfig
from .metrics import ConfusionCounts, aggregate_metrics, evaluate_localization
from .observations import (
    LocalizationResult,
    ObservationSet,
    PathObservation,
    merge_observations,
)
from .omp import OMPConfig, OMPLocalizer
from .pll import PLLConfig, PLLLocalizer
from .preprocess import PreprocessConfig, PreprocessReport, preprocess_observations
from .score import ScoreConfig, ScoreLocalizer
from .tomo import TomoConfig, TomoLocalizer

__all__ = [
    "PathObservation",
    "ObservationSet",
    "LocalizationResult",
    "merge_observations",
    "PreprocessConfig",
    "PreprocessReport",
    "preprocess_observations",
    "PLLConfig",
    "PLLLocalizer",
    "TomoConfig",
    "TomoLocalizer",
    "ScoreConfig",
    "ScoreLocalizer",
    "OMPConfig",
    "OMPLocalizer",
    "ConfusionCounts",
    "evaluate_localization",
    "aggregate_metrics",
    "LossPattern",
    "LinkDiagnosis",
    "LossPatternClassifier",
    "RTTThresholdConfig",
    "RTTObservationAdapter",
]
