"""Tomo: the NetDiagnoser greedy (Dhamdhere et al., CoNEXT 2007).

Baseline for PLL.  Tomo assumes the classical binary-tomography loss model:
a path is lossy if and only if it crosses at least one faulty link.  Under
that assumption any link that appears on a loss-free path must be good, so

1. links on at least one loss-free observed path are removed from the
   candidate set, and
2. the smallest explaining set is approximated greedily: repeatedly pick the
   candidate link that covers the largest number of still-unexplained lossy
   paths.

The full-loss assumption is exactly what breaks under data-center *partial*
losses (packet blackholes): the faulty link also carries healthy paths, gets
pruned in step 1, and the losses end up attributed to innocent links -- the
behaviour PLL's hit-ratio filter was designed to fix (§5.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..core import ProbeMatrix
from ..contracts import informational_wall
from .observations import LocalizationResult, ObservationSet

__all__ = ["TomoConfig", "TomoLocalizer"]


@dataclass(frozen=True)
class TomoConfig:
    """Tuning knobs of the Tomo baseline.

    Attributes
    ----------
    prune_on_good_paths:
        Apply the classical "a link on a loss-free path is good" pruning.
        Disabling it yields a plain greedy set cover over all links on lossy
        paths (used by ablation experiments).
    """

    prune_on_good_paths: bool = True


class TomoLocalizer:
    """Callable localizer implementing the Tomo greedy."""

    name = "Tomo"

    def __init__(self, config: Optional[TomoConfig] = None):
        self.config = config or TomoConfig()

    @informational_wall(
        "LocalizationResult.elapsed_seconds is informational (excluded from "
        "deterministic snapshots); accuracy gates use the verdict itself"
    )
    def localize(
        self, probe_matrix: ProbeMatrix, observations: ObservationSet
    ) -> LocalizationResult:
        start = time.perf_counter()

        lossy_paths: Set[int] = set(observations.lossy_paths())
        good_paths: Set[int] = {
            obs.path_index for obs in observations if not obs.is_lossy
        }

        # Candidate links and the lossy paths each can explain.
        candidates: Dict[int, Set[int]] = {}
        for path in lossy_paths:
            for link in probe_matrix.links_on(path):
                candidates.setdefault(link, set()).add(path)

        if self.config.prune_on_good_paths:
            # One vectorized pass: a link with any loss-free observed path is
            # exonerated under the full-loss assumption.
            index = probe_matrix.incidence
            kernels = index.kernels
            good_mask = kernels.bool_zeros(index.num_paths)
            if good_paths:
                kernels.set_true(good_mask, kernels.int_array(sorted(good_paths)))
            good_counts = index.masked_col_counts(good_mask)
            candidates = {
                link: covered
                for link, covered in candidates.items()
                if not good_counts[index.position(link)]
            }

        unexplained = set(lossy_paths)
        suspected: List[int] = []
        pool = set(candidates)
        while unexplained and pool:
            best_link = None
            best_cover = 0
            for link in sorted(pool):
                cover = len(candidates[link] & unexplained)
                if cover > best_cover:
                    best_cover = cover
                    best_link = link
            if best_link is None or best_cover == 0:
                break
            suspected.append(best_link)
            pool.discard(best_link)
            unexplained -= candidates[best_link]

        elapsed = time.perf_counter() - start
        return LocalizationResult(
            suspected_links=suspected,
            estimated_loss_rates={},
            unexplained_paths=sorted(unexplained),
            elapsed_seconds=elapsed,
            algorithm=self.name,
        )
