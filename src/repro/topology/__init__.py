"""Data-center topology substrate: graph model plus Fattree / VL2 / BCube generators."""

from .base import Link, Node, Tier, Topology, TopologyBuilder, TopologyError
from .bcube import BCubeTopology, bcube_counts, build_bcube
from .delta import HealthSnapshot, TopologyDelta
from .fattree import FatTreeTopology, build_fattree, fattree_counts
from .symmetry import PathOrbits, link_orbits, link_role, node_role, path_signature
from .vl2 import VL2Topology, build_vl2, vl2_counts

__all__ = [
    "Link",
    "Node",
    "Tier",
    "Topology",
    "TopologyBuilder",
    "TopologyError",
    "HealthSnapshot",
    "TopologyDelta",
    "FatTreeTopology",
    "build_fattree",
    "fattree_counts",
    "VL2Topology",
    "build_vl2",
    "vl2_counts",
    "BCubeTopology",
    "build_bcube",
    "bcube_counts",
    "PathOrbits",
    "link_orbits",
    "link_role",
    "node_role",
    "path_signature",
]
