"""BCube topology generator (Guo et al., SIGCOMM 2009).

``BCube(n, k)`` is the server-centric recursive topology:

* servers carry ``k+1`` digit addresses ``a_k a_{k-1} ... a_0`` with each digit
  in ``[0, n)`` -- there are ``n**(k+1)`` servers,
* level-``i`` switches (``n**k`` per level, ``k+1`` levels) connect the ``n``
  servers that agree on every digit except digit ``i``,
* every link attaches a server to a switch, so there are
  ``(k+1) * n**(k+1)`` links.

The paper treats BCube servers as switches when running PMC (footnote 2), so
every node is created as a switch-tier node here; the "servers" the monitoring
system places pingers on are the level-addressable server nodes, exposed via
:meth:`BCubeTopology.server_node_names`.

Between any two servers there are ``k+1`` parallel paths, constructed with the
``BuildPathSet`` procedure from the BCube paper (digit-correcting routing plus
the altered-path variant when source and destination agree on a digit).  These
paths are produced by :func:`repro.routing.paths.enumerate_bcube_paths`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .base import Tier, Topology, TopologyBuilder, TopologyError

__all__ = ["BCubeTopology", "build_bcube", "bcube_counts"]


def bcube_counts(n: int, k: int) -> Dict[str, int]:
    """Analytic node/link/path counts for ``BCube(n, k)``."""
    if n < 2:
        raise TopologyError("BCube port count n must be >= 2")
    if k < 0:
        raise TopologyError("BCube level k must be >= 0")
    num_servers = n ** (k + 1)
    switches_per_level = n ** k
    num_switches = (k + 1) * switches_per_level
    num_links = (k + 1) * num_servers
    return {
        "n": n,
        "k": k,
        "levels": k + 1,
        "servers": num_servers,
        "switches_per_level": switches_per_level,
        "switches": num_switches,
        "nodes": num_servers + num_switches,
        "links": num_links,
        "switch_links": num_links,  # servers are treated as switches for PMC
        "paths_per_server_pair": k + 1,
        "original_paths": num_servers * (num_servers - 1) * (k + 1),
    }


class BCubeTopology(Topology):
    """A fully built ``BCube(n, k)`` with address-based structural queries."""

    def __init__(self, n: int, k: int):
        counts = bcube_counts(n, k)
        self._n = n
        self._k = k

        builder = TopologyBuilder(f"BCube({n},{k})")

        # Servers.  BCube is server centric: its servers forward traffic, so
        # for probe-matrix purposes they are switches too (paper footnote 2).
        # We still tag them with a dedicated tier name so the monitoring layer
        # can place pingers on them.
        self._server_names: List[str] = []
        for addr in _all_addresses(n, k + 1):
            name = "srv" + "".join(str(d) for d in addr)
            builder.add_node(name, "bcube-server", address=addr)
            self._server_names.append(name)

        # Level-i switches connect servers that differ only in digit i.  The
        # switch address is the server address with digit i removed.
        self._switch_names: List[List[str]] = []
        for level in range(k + 1):
            level_names = []
            for sw_addr in _all_addresses(n, k):
                name = f"sw{level}_" + "".join(str(d) for d in sw_addr)
                builder.add_node(name, f"bcube-level{level}", level=level, address=sw_addr)
                level_names.append(name)
                for digit in range(n):
                    server_addr = _insert_digit(sw_addr, position=level, value=digit, width=k + 1)
                    server_name = "srv" + "".join(str(d) for d in server_addr)
                    builder.add_link(server_name, name)
            self._switch_names.append(level_names)

        built = builder.build()
        super().__init__(built.name, list(built.nodes.values()), list(built.links))
        expected = counts
        if len(self.links) != expected["links"]:  # pragma: no cover - sanity net
            raise TopologyError(
                f"BCube construction produced {len(self.links)} links, "
                f"expected {expected['links']}"
            )

    # ----------------------------------------------------------- structure
    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int:
        return self._k

    @property
    def levels(self) -> int:
        return self._k + 1

    def server_node_names(self) -> List[str]:
        return list(self._server_names)

    def switch_names_at_level(self, level: int) -> List[str]:
        return list(self._switch_names[level])

    def server_name(self, address: Sequence[int]) -> str:
        self._validate_address(address, self._k + 1)
        return "srv" + "".join(str(d) for d in address)

    def server_address(self, name: str) -> Tuple[int, ...]:
        node = self.node(name)
        addr = node.attr("address")
        if addr is None or node.tier != "bcube-server":
            raise TopologyError(f"{name!r} is not a BCube server")
        return tuple(addr)

    def switch_for(self, server_address: Sequence[int], level: int) -> str:
        """Name of the level-``level`` switch a server attaches to."""
        self._validate_address(server_address, self._k + 1)
        if not 0 <= level <= self._k:
            raise TopologyError(f"level {level} out of range for BCube({self._n},{self._k})")
        sw_addr = tuple(d for i, d in enumerate(server_address) if i != self._position_index(level))
        return f"sw{level}_" + "".join(str(d) for d in sw_addr)

    def _position_index(self, level: int) -> int:
        # Addresses are stored most-significant digit first: digit ``i`` of the
        # paper (level ``i``) lives at tuple position ``k - i``.
        return self._k - level

    def neighbor_server(self, server_address: Sequence[int], level: int, digit: int) -> str:
        """Server that agrees with *server_address* everywhere except digit ``level``."""
        self._validate_address(server_address, self._k + 1)
        if not 0 <= digit < self._n:
            raise TopologyError(f"digit {digit} out of range for n={self._n}")
        addr = list(server_address)
        addr[self._position_index(level)] = digit
        return self.server_name(addr)

    def expected_counts(self) -> Dict[str, int]:
        return bcube_counts(self._n, self._k)

    def _validate_address(self, address: Sequence[int], width: int) -> None:
        if len(address) != width:
            raise TopologyError(f"address {address!r} must have {width} digits")
        if any(d < 0 or d >= self._n for d in address):
            raise TopologyError(f"address {address!r} has digits outside [0, {self._n})")


def build_bcube(n: int, k: int) -> BCubeTopology:
    """Convenience constructor mirroring the paper's ``BCube(n, k)`` notation."""
    return BCubeTopology(n, k)


def _all_addresses(n: int, width: int) -> List[Tuple[int, ...]]:
    """All ``width``-digit addresses base ``n``, most significant digit first."""
    addresses: List[Tuple[int, ...]] = [()]
    for _ in range(width):
        addresses = [addr + (digit,) for addr in addresses for digit in range(n)]
    return addresses


def _insert_digit(addr: Tuple[int, ...], position: int, value: int, width: int) -> Tuple[int, ...]:
    """Insert ``value`` as digit ``position`` (paper numbering) into a switch address."""
    index = (width - 1) - position
    return addr[:index] + (value,) + addr[index:]
