"""k-ary Fattree topology generator (Al-Fares et al., SIGCOMM 2008).

A ``k``-ary Fattree has

* ``k`` pods, each containing ``k/2`` edge (ToR) switches and ``k/2``
  aggregation switches,
* ``(k/2)**2`` core switches,
* every edge switch connects ``k/2`` servers and all ``k/2`` aggregation
  switches in its pod,
* aggregation switch number ``j`` of every pod connects to core switches
  ``j*(k/2) .. (j+1)*(k/2)-1`` (its *core group*).

Counts used throughout the paper (Table 2):

* switches: ``5*k**2/4``, servers: ``k**3/4``, total nodes ``k**3/4 + 5*k**2/4``
* links: ``3*k**3/4`` (``k**3/4`` each of core-agg, agg-edge, edge-server)
* inter-switch links: ``k**3/2``
* candidate probe paths among ToRs (ordered pairs, one path per core switch):
  ``(k**2/2) * (k**2/2 - 1) * (k**2/4)``
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import Tier, Topology, TopologyBuilder, TopologyError

__all__ = ["FatTreeTopology", "build_fattree", "fattree_counts"]


def fattree_counts(k: int) -> Dict[str, int]:
    """Analytic node/link/path counts for a ``k``-ary Fattree.

    These formulas back the "# of nodes / # of links / # of original paths"
    columns of Table 2 without having to materialize the giant instances
    (Fattree(72) has ~8.7e9 candidate paths).
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError("Fattree radix k must be an even integer >= 2")
    half = k // 2
    num_core = half * half
    num_agg = k * half
    num_edge = k * half
    num_servers = k * half * half
    num_tors = num_edge
    return {
        "k": k,
        "pods": k,
        "core_switches": num_core,
        "aggregation_switches": num_agg,
        "edge_switches": num_edge,
        "servers": num_servers,
        "nodes": num_core + num_agg + num_edge + num_servers,
        "links": num_core * k + num_agg * half + num_servers,
        "switch_links": num_core * k + num_agg * half,
        "tor_switches": num_tors,
        "paths_per_tor_pair": num_core,
        "original_paths": num_tors * (num_tors - 1) * num_core,
        # Appendix B of the technical report: at least k^3/5 paths are needed
        # for a (1-coverage, 1-identifiability) probe matrix.
        "min_paths_1cov_1ident": k ** 3 / 5.0,
    }


class FatTreeTopology(Topology):
    """A fully built ``k``-ary Fattree with convenient structural queries."""

    def __init__(self, k: int, servers_per_edge: Optional[int] = None):
        if k < 2 or k % 2 != 0:
            raise TopologyError("Fattree radix k must be an even integer >= 2")
        self._k = k
        half = k // 2
        self._servers_per_edge = half if servers_per_edge is None else servers_per_edge
        if self._servers_per_edge < 0:
            raise TopologyError("servers_per_edge must be non-negative")

        builder = TopologyBuilder(f"Fattree({k})")

        # Core switches, numbered by (group, position-in-group).  Core group g
        # is the set of core switches reachable from aggregation switch g of
        # every pod.
        core_names: List[List[str]] = []
        for group in range(half):
            row = []
            for pos in range(half):
                name = f"core{group}_{pos}"
                builder.add_node(name, Tier.CORE, group=group, position=pos)
                row.append(name)
            core_names.append(row)

        self._edge_names: List[List[str]] = []
        self._agg_names: List[List[str]] = []
        for pod in range(k):
            aggs = []
            edges = []
            for j in range(half):
                agg = f"pod{pod}_agg{j}"
                builder.add_node(agg, Tier.AGGREGATION, pod=pod, position=j)
                aggs.append(agg)
            for j in range(half):
                edge = f"pod{pod}_edge{j}"
                builder.add_node(edge, Tier.EDGE, pod=pod, position=j)
                edges.append(edge)
            self._agg_names.append(aggs)
            self._edge_names.append(edges)

            # edge <-> aggregation: full bipartite inside the pod
            for edge in edges:
                for agg in aggs:
                    builder.add_link(edge, agg)

            # servers under each edge switch
            for j, edge in enumerate(edges):
                for s in range(self._servers_per_edge):
                    server = f"pod{pod}_edge{j}_srv{s}"
                    builder.add_node(server, Tier.SERVER, pod=pod, position=s)
                    builder.add_link(server, edge)

        # aggregation <-> core
        for pod in range(k):
            for group, agg in enumerate(self._agg_names[pod]):
                for core in core_names[group]:
                    builder.add_link(agg, core)

        self._core_names = core_names
        built = builder.build()
        super().__init__(built.name, list(built.nodes.values()), list(built.links))

    # ----------------------------------------------------------- structure
    @property
    def k(self) -> int:
        return self._k

    @property
    def servers_per_edge(self) -> int:
        return self._servers_per_edge

    @property
    def core_groups(self) -> List[List[str]]:
        """Core switch names grouped by the aggregation position they serve."""
        return [list(row) for row in self._core_names]

    def core_switch_names(self) -> List[str]:
        return [name for row in self._core_names for name in row]

    def edge_switch_name(self, pod: int, position: int) -> str:
        return self._edge_names[pod][position]

    def aggregation_switch_name(self, pod: int, position: int) -> str:
        return self._agg_names[pod][position]

    def edge_switches_in_pod(self, pod: int) -> List[str]:
        return list(self._edge_names[pod])

    def aggregation_switches_in_pod(self, pod: int) -> List[str]:
        return list(self._agg_names[pod])

    def core_group_of(self, core_name: str) -> int:
        node = self.node(core_name)
        if node.tier != Tier.CORE:
            raise TopologyError(f"{core_name!r} is not a core switch")
        return int(node.attr("group"))

    def agg_for_core(self, pod: int, core_name: str) -> str:
        """The unique aggregation switch in *pod* wired to *core_name*."""
        return self._agg_names[pod][self.core_group_of(core_name)]

    def expected_counts(self) -> Dict[str, int]:
        counts = fattree_counts(self._k)
        if self._servers_per_edge != self._k // 2:
            # Adjust analytic counts when the caller asked for a non-standard
            # number of servers per rack (useful to keep simulations small).
            per_edge_delta = self._servers_per_edge - self._k // 2
            delta = per_edge_delta * self._k * (self._k // 2)
            counts["servers"] += delta
            counts["nodes"] += delta
            counts["links"] += delta
        return counts


def build_fattree(k: int, servers_per_edge: Optional[int] = None) -> FatTreeTopology:
    """Convenience constructor mirroring the paper's ``Fattree(k)`` notation."""
    return FatTreeTopology(k, servers_per_edge=servers_per_edge)
