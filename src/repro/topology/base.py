"""Core graph model shared by every data-center topology generator.

The paper treats the data center as a graph ``G = (V, E)`` where ``V`` is the
set of switches (plus servers, which only matter for pinger placement) and
``E`` is the set of *bidirectional* links.  deTector localizes failures on the
links that interconnect switches; server-to-ToR links are handled separately
by intra-rack probing (§3.1 of the paper).

This module provides:

* :class:`Node` and :class:`Link` -- immutable records describing the graph,
* :class:`Topology` -- the container with adjacency helpers, tier queries and
  conversion to :mod:`networkx` for generic graph algorithms.

Every concrete topology (:class:`~repro.topology.fattree.FatTreeTopology`,
:class:`~repro.topology.vl2.VL2Topology`,
:class:`~repro.topology.bcube.BCubeTopology`) builds itself through the
:class:`TopologyBuilder` helper so that node/link numbering is deterministic
and identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Tier",
    "Node",
    "Link",
    "Topology",
    "TopologyBuilder",
    "TopologyError",
]


class TopologyError(ValueError):
    """Raised for malformed topology construction requests."""


class Tier:
    """Symbolic names for the roles a node can play.

    Using plain strings (rather than an enum) keeps the topology model open:
    BCube introduces per-level switch tiers (``level-0`` .. ``level-k``) that a
    closed enumeration could not express.
    """

    CORE = "core"
    AGGREGATION = "aggregation"
    EDGE = "edge"  # ToR switches in Fattree terminology
    INTERMEDIATE = "intermediate"  # VL2 intermediate switches
    TOR = "tor"  # VL2 top-of-rack switches
    SERVER = "server"

    SWITCH_TIERS = frozenset(
        {CORE, AGGREGATION, EDGE, INTERMEDIATE, TOR}
    )

    @staticmethod
    def is_switch(tier: str) -> bool:
        """Return ``True`` when *tier* denotes a switch (including BCube levels)."""
        return tier != Tier.SERVER


@dataclass(frozen=True)
class Node:
    """A device in the data center network.

    Attributes
    ----------
    name:
        Globally unique, human readable identifier, e.g. ``"pod0/edge1"``.
    tier:
        One of the :class:`Tier` constants (or a BCube level string).
    index:
        Dense integer id assigned in construction order; useful for array
        based bookkeeping.
    pod:
        Pod number for pod-structured topologies, ``None`` otherwise.
    attrs:
        Free-form, topology specific attributes (e.g. the position of an edge
        switch inside its pod).  Stored as a tuple of ``(key, value)`` pairs so
        the dataclass stays hashable.
    """

    name: str
    tier: str
    index: int
    pod: Optional[int] = None
    attrs: Tuple[Tuple[str, object], ...] = ()

    @property
    def is_switch(self) -> bool:
        return Tier.is_switch(self.tier)

    @property
    def is_server(self) -> bool:
        return self.tier == Tier.SERVER

    def attr(self, key: str, default: object = None) -> object:
        """Return a free-form attribute by name."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class Link:
    """An undirected link between two nodes.

    Probes traverse links in both directions (the echoed response follows the
    reverse path), hence deTector reasons about undirected links: a localized
    fault on link ``AB`` means either direction of the physical link or either
    endpoint device (§4.1).

    Attributes
    ----------
    link_id:
        Dense integer id assigned in construction order.
    a, b:
        Endpoint node names, stored in sorted order so that
        ``Link(a, b) == Link(b, a)`` after normalization.
    tier_pair:
        Sorted pair of the endpoints' tiers, e.g. ``("aggregation", "core")``.
    """

    link_id: int
    a: str
    b: str
    tier_pair: Tuple[str, str]

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, node_name: str) -> str:
        """Return the endpoint opposite to *node_name*."""
        if node_name == self.a:
            return self.b
        if node_name == self.b:
            return self.a
        raise TopologyError(f"{node_name!r} is not an endpoint of link {self.link_id}")

    def touches(self, node_name: str) -> bool:
        return node_name == self.a or node_name == self.b


class Topology:
    """Immutable view over a constructed data-center graph.

    The class offers the queries every other subsystem needs:

    * node and link lookup by name / id,
    * adjacency and link-between-nodes lookup,
    * tier filters (ToR switches, servers under a ToR, ...),
    * the *switch-level* link set used by the probe matrix, and
    * export to :mod:`networkx` for generic algorithms (connectivity checks,
      symmetry discovery, visualisation).
    """

    def __init__(self, name: str, nodes: Sequence[Node], links: Sequence[Link]):
        self._name = name
        self._nodes: Dict[str, Node] = {n.name: n for n in nodes}
        if len(self._nodes) != len(nodes):
            raise TopologyError("duplicate node names in topology")
        self._links: List[Link] = list(links)
        for expected, link in enumerate(self._links):
            if link.link_id != expected:
                raise TopologyError(
                    f"link ids must be dense and ordered; got {link.link_id} at {expected}"
                )
        self._adj: Dict[str, Dict[str, Link]] = {n.name: {} for n in nodes}
        for link in self._links:
            if link.a not in self._nodes or link.b not in self._nodes:
                raise TopologyError(f"link {link.link_id} references unknown node")
            self._adj[link.a][link.b] = link
            self._adj[link.b][link.a] = link
        self._by_tier: Dict[str, List[Node]] = {}
        for node in nodes:
            self._by_tier.setdefault(node.tier, []).append(node)

    # ------------------------------------------------------------------ basic
    @property
    def name(self) -> str:
        return self._name

    @property
    def nodes(self) -> Mapping[str, Node]:
        return self._nodes

    @property
    def links(self) -> Sequence[Link]:
        return tuple(self._links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self._name}: {len(self._nodes)} nodes, "
            f"{len(self._links)} links>"
        )

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def link(self, link_id: int) -> Link:
        try:
            return self._links[link_id]
        except IndexError:
            raise TopologyError(f"unknown link id {link_id}") from None

    def link_between(self, a: str, b: str) -> Link:
        """Return the link connecting *a* and *b* (raises if absent)."""
        try:
            return self._adj[a][b]
        except KeyError:
            raise TopologyError(f"no link between {a!r} and {b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        return b in self._adj.get(a, {})

    def neighbors(self, name: str) -> List[str]:
        return sorted(self._adj[name])

    def links_of(self, name: str) -> List[Link]:
        """All links incident to node *name*."""
        return [self._adj[name][other] for other in sorted(self._adj[name])]

    def degree(self, name: str) -> int:
        return len(self._adj[name])

    # ------------------------------------------------------------------ tiers
    def nodes_in_tier(self, tier: str) -> List[Node]:
        return list(self._by_tier.get(tier, []))

    @property
    def switches(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.is_switch]

    @property
    def servers(self) -> List[Node]:
        return self.nodes_in_tier(Tier.SERVER)

    @property
    def tor_switches(self) -> List[Node]:
        """Top-of-rack switches: the attachment points of servers.

        Fattree calls these *edge* switches, VL2 calls them *ToR* switches.
        BCube is server-centric and has no ToR notion; an empty list is
        returned in that case.
        """
        tors = self.nodes_in_tier(Tier.EDGE) + self.nodes_in_tier(Tier.TOR)
        return sorted(tors, key=lambda n: n.index)

    def servers_under(self, tor_name: str) -> List[Node]:
        """Servers directly attached to the given ToR switch."""
        out = []
        for neighbor in self.neighbors(tor_name):
            node = self._nodes[neighbor]
            if node.is_server:
                out.append(node)
        return sorted(out, key=lambda n: n.index)

    def tor_of(self, server_name: str) -> Node:
        """The ToR switch a server hangs off."""
        server = self.node(server_name)
        if not server.is_server:
            raise TopologyError(f"{server_name!r} is not a server")
        for neighbor in self.neighbors(server_name):
            node = self._nodes[neighbor]
            if node.is_switch:
                return node
        raise TopologyError(f"server {server_name!r} has no switch neighbor")

    # ------------------------------------------------------------ link groups
    @property
    def switch_links(self) -> List[Link]:
        """Links whose both endpoints are switches.

        This is the link universe of the probe matrix: deTector focuses on
        localizing faults on inter-switch links (§3.1); server uplinks are
        monitored by intra-rack pings instead.
        """
        out = []
        for link in self._links:
            if self._nodes[link.a].is_switch and self._nodes[link.b].is_switch:
                out.append(link)
        return out

    @property
    def server_links(self) -> List[Link]:
        """Links with at least one server endpoint."""
        out = []
        for link in self._links:
            if self._nodes[link.a].is_server or self._nodes[link.b].is_server:
                out.append(link)
        return out

    def links_by_tier_pair(self) -> Dict[Tuple[str, str], List[Link]]:
        """Group links by the (sorted) tier pair of their endpoints."""
        groups: Dict[Tuple[str, str], List[Link]] = {}
        for link in self._links:
            groups.setdefault(link.tier_pair, []).append(link)
        return groups

    # ------------------------------------------------------------------ pods
    @property
    def pods(self) -> List[int]:
        pods = sorted({n.pod for n in self._nodes.values() if n.pod is not None})
        return pods

    def nodes_in_pod(self, pod: int) -> List[Node]:
        return sorted(
            (n for n in self._nodes.values() if n.pod == pod),
            key=lambda n: n.index,
        )

    # ------------------------------------------------------------ conversion
    def to_networkx(self, switches_only: bool = False):
        """Export to a :class:`networkx.Graph`.

        Parameters
        ----------
        switches_only:
            When ``True`` servers and their uplinks are omitted; this is the
            graph the probe matrix construction reasons about.
        """
        import networkx as nx

        graph = nx.Graph(name=self._name)
        for node in self._nodes.values():
            if switches_only and node.is_server:
                continue
            graph.add_node(node.name, tier=node.tier, pod=node.pod, index=node.index)
        for link in self._links:
            if switches_only and (
                self._nodes[link.a].is_server or self._nodes[link.b].is_server
            ):
                continue
            graph.add_edge(link.a, link.b, link_id=link.link_id)
        return graph

    def without_links(self, removed_link_ids: Iterable[int]) -> "Topology":
        """Return a copy of the topology with the given links removed.

        The controller uses this when the watchdog reports a failed link or
        switch: faulty links are dropped from the routing matrix so that no
        probe path is planned across them (§6.1 footnote 4).  Link ids are
        re-densified; the mapping between old and new ids is not preserved, so
        callers that need to correlate should work on endpoint names.
        """
        removed = set(removed_link_ids)
        kept = [l for l in self._links if l.link_id not in removed]
        relabeled = [
            Link(link_id=i, a=l.a, b=l.b, tier_pair=l.tier_pair)
            for i, l in enumerate(kept)
        ]
        return Topology(self._name, list(self._nodes.values()), relabeled)

    def without_node(self, node_name: str) -> "Topology":
        """Return a copy with a node (e.g. a failed switch) and its links removed."""
        self.node(node_name)  # validate
        nodes = [n for n in self._nodes.values() if n.name != node_name]
        kept = [l for l in self._links if not l.touches(node_name)]
        relabeled = [
            Link(link_id=i, a=l.a, b=l.b, tier_pair=l.tier_pair)
            for i, l in enumerate(kept)
        ]
        return Topology(self._name, nodes, relabeled)

    # --------------------------------------------------------------- summary
    def summary(self) -> Dict[str, int]:
        """Node/link counts, matching the columns of Table 2 in the paper."""
        return {
            "nodes": len(self._nodes),
            "links": len(self._links),
            "switches": len(self.switches),
            "servers": len(self.servers),
            "switch_links": len(self.switch_links),
            "server_links": len(self.server_links),
        }


class TopologyBuilder:
    """Incremental construction helper with dense, deterministic numbering."""

    def __init__(self, name: str):
        self._name = name
        self._nodes: List[Node] = []
        self._node_names: Dict[str, Node] = {}
        self._links: List[Link] = []
        self._link_keys: Dict[FrozenSet[str], Link] = {}

    def add_node(
        self,
        name: str,
        tier: str,
        pod: Optional[int] = None,
        **attrs: object,
    ) -> Node:
        if name in self._node_names:
            raise TopologyError(f"duplicate node name {name!r}")
        node = Node(
            name=name,
            tier=tier,
            index=len(self._nodes),
            pod=pod,
            attrs=tuple(sorted(attrs.items())),
        )
        self._nodes.append(node)
        self._node_names[name] = node
        return node

    def add_link(self, a: str, b: str) -> Link:
        if a not in self._node_names or b not in self._node_names:
            raise TopologyError(f"cannot link unknown nodes {a!r}, {b!r}")
        if a == b:
            raise TopologyError(f"self-loop on {a!r} is not allowed")
        key = frozenset((a, b))
        if key in self._link_keys:
            raise TopologyError(f"duplicate link between {a!r} and {b!r}")
        first, second = sorted((a, b))
        tier_pair = tuple(sorted((self._node_names[a].tier, self._node_names[b].tier)))
        link = Link(link_id=len(self._links), a=first, b=second, tier_pair=tier_pair)
        self._links.append(link)
        self._link_keys[key] = link
        return link

    def has_node(self, name: str) -> bool:
        return name in self._node_names

    def build(self) -> Topology:
        return Topology(self._name, self._nodes, self._links)
