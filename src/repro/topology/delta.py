"""Topology churn model: health snapshots and deltas between controller cycles.

The paper's controller recomputes the probe matrix from scratch every cycle
(10 minutes, §3.1).  In the motivating setting -- a data center with O(10^4)
links -- only a handful of devices change state between two cycles, so the
serving path can be made incremental: the watchdog keeps a
:class:`HealthSnapshot` of what is currently failed, and two snapshots
diff into a :class:`TopologyDelta` describing exactly which links, switches
and servers went down or recovered in between.

The delta is the unit of communication between the three incremental layers:

* the watchdog *emits* snapshots (``Watchdog.snapshot()``),
* ``Controller.run_incremental_cycle`` *consumes* the delta between the last
  applied snapshot and the current one, translating it into link-mask
  updates on the cached :class:`~repro.core.incidence.IncidenceIndex`, and
* ``ChurnSchedule`` (``simulation/failures.py``) *generates* synthetic delta
  sequences for benchmarks and differential tests.

Link ids always refer to the **original** (pristine) topology; deltas never
re-densify ids, which is what allows masks to be applied and reverted without
re-ingesting paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

__all__ = ["HealthSnapshot", "TopologyDelta"]


@dataclass(frozen=True)
class HealthSnapshot:
    """Immutable record of everything currently failed / unhealthy.

    Attributes
    ----------
    failed_link_ids:
        Links the watchdog knows to be down (original topology ids).
    failed_switches:
        Switches known to be down; all their incident links are treated as
        failed for probe planning.
    unhealthy_servers:
        Servers that must not be used as pingers or responders.
    """

    failed_link_ids: FrozenSet[int] = frozenset()
    failed_switches: FrozenSet[str] = frozenset()
    unhealthy_servers: FrozenSet[str] = frozenset()

    @property
    def is_pristine(self) -> bool:
        return not (self.failed_link_ids or self.failed_switches or self.unhealthy_servers)


@dataclass(frozen=True)
class TopologyDelta:
    """What changed between two :class:`HealthSnapshot`\\ s.

    ``failed_*`` lists elements that went down since the previous snapshot;
    ``recovered_*`` lists elements that came back.  All tuples are sorted so
    deltas compare and repr deterministically.
    """

    failed_links: Tuple[int, ...] = ()
    recovered_links: Tuple[int, ...] = ()
    failed_switches: Tuple[str, ...] = ()
    recovered_switches: Tuple[str, ...] = ()
    failed_servers: Tuple[str, ...] = ()
    recovered_servers: Tuple[str, ...] = ()

    @classmethod
    def between(cls, before: HealthSnapshot, after: HealthSnapshot) -> "TopologyDelta":
        """The delta that turns snapshot *before* into snapshot *after*."""
        return cls(
            failed_links=tuple(sorted(after.failed_link_ids - before.failed_link_ids)),
            recovered_links=tuple(sorted(before.failed_link_ids - after.failed_link_ids)),
            failed_switches=tuple(sorted(after.failed_switches - before.failed_switches)),
            recovered_switches=tuple(sorted(before.failed_switches - after.failed_switches)),
            failed_servers=tuple(sorted(after.unhealthy_servers - before.unhealthy_servers)),
            recovered_servers=tuple(sorted(before.unhealthy_servers - after.unhealthy_servers)),
        )

    @classmethod
    def of_failures(
        cls,
        links: Iterable[int] = (),
        switches: Iterable[str] = (),
        servers: Iterable[str] = (),
    ) -> "TopologyDelta":
        """Convenience constructor for pure-failure deltas (tests, schedules)."""
        return cls(
            failed_links=tuple(sorted(links)),
            failed_switches=tuple(sorted(switches)),
            failed_servers=tuple(sorted(servers)),
        )

    # ----------------------------------------------------------------- queries
    @property
    def churn(self) -> int:
        """Number of changed *network* elements (links + switches).

        Server health changes are excluded: they move pinger/responder
        placement, which every cycle recomputes anyway, but they never
        invalidate the probe matrix, so they do not count against the
        full-rebuild threshold.
        """
        return (
            len(self.failed_links)
            + len(self.recovered_links)
            + len(self.failed_switches)
            + len(self.recovered_switches)
        )

    @property
    def server_churn(self) -> int:
        return len(self.failed_servers) + len(self.recovered_servers)

    @property
    def is_empty(self) -> bool:
        return self.churn == 0 and self.server_churn == 0

    def describe(self) -> str:
        parts = []
        for label, values in (
            ("links down", self.failed_links),
            ("links up", self.recovered_links),
            ("switches down", self.failed_switches),
            ("switches up", self.recovered_switches),
            ("servers down", self.failed_servers),
            ("servers up", self.recovered_servers),
        ):
            if values:
                parts.append(f"{label}: {', '.join(str(v) for v in values)}")
        return "; ".join(parts) if parts else "no changes"
