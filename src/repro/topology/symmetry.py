"""Structural symmetry discovery for data-center topologies.

The third PMC speed-up (§4.3, Observation 3) exploits the fact that DCN
topologies are highly symmetric: once a probe path is selected, its
topologically isomorphic images are equally good choices, so the candidate
path set can be reduced and selections can be batched.

The paper relies on an external symmetry-discovery tool (O2).  This module
substitutes a *signature based* orbit computation tailored to the regular
structures deTector evaluates on (Fattree, VL2, BCube) and degree/tier based
signatures for arbitrary topologies:

* every node gets a *structural role*: its tier plus its position-within-pod
  style attributes, with pod identity erased,
* every link gets the unordered pair of its endpoint roles,
* every path gets the multiset of its link roles plus the role sequence of its
  node walk.

Two paths with equal signatures are in the same orbit of the (approximate)
automorphism group.  This is an over-approximation only in pathological
topologies; for the generated Fattree/VL2/BCube instances the signature
classes coincide with the true orbits of the natural automorphism group
(permuting pods, racks within a pod, core switches within a core group, ...).
PMC re-validates coverage and identifiability after construction, so an
over-merge can cost a few extra greedy iterations but never correctness.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

from .base import Link, Node, Tier, Topology

__all__ = [
    "node_role",
    "link_role",
    "path_signature",
    "PathOrbits",
    "link_orbits",
]


def node_role(topology: Topology, node_name: str) -> Tuple[Hashable, ...]:
    """Structural role of a node with instance identity erased.

    The role combines the tier, the degree and (for BCube) the switch level.
    Pod numbers, within-pod positions and core-group indices are deliberately
    *not* part of the role: the natural automorphism groups of Fattree/VL2/
    BCube permute them freely (e.g. swapping aggregation position 0 and 1 in
    every pod together with the two core groups is an automorphism), so two
    nodes differing only in those attributes are structurally interchangeable.
    """
    node = topology.node(node_name)
    level = node.attr("level")
    return (
        node.tier,
        topology.degree(node_name),
        level if level is not None else -1,
    )


def link_role(topology: Topology, link: Link) -> Tuple[Hashable, ...]:
    """Unordered pair of endpoint roles -- the structural class of a link."""
    role_a = node_role(topology, link.a)
    role_b = node_role(topology, link.b)
    return tuple(sorted((role_a, role_b)))


def link_orbits(topology: Topology, links: Iterable[Link]) -> Dict[Hashable, List[int]]:
    """Group link ids by structural role."""
    orbits: Dict[Hashable, List[int]] = defaultdict(list)
    for link in links:
        orbits[link_role(topology, link)].append(link.link_id)
    return dict(orbits)


def path_signature(topology: Topology, node_walk: Sequence[str]) -> Tuple[Hashable, ...]:
    """Structural signature of a probe path given as a node walk.

    Two paths are considered topologically isomorphic when

    * the sequences of node roles along the walk are equal,
    * the *relative pod pattern* is equal: the walk's pods, re-labelled in
      first-appearance order, form the same sequence (this distinguishes an
      intra-pod path from an inter-pod path even when the roles match), and
    * the *node revisit pattern* is equal: walk nodes re-labelled in
      first-appearance order, which distinguishes a path that bounces off a
      shared aggregation switch (revisiting it) from one that traverses four
      distinct switches.
    """
    roles = tuple(node_role(topology, name) for name in node_walk)
    pod_pattern: List[int] = []
    pod_relabel: Dict[int, int] = {}
    node_pattern: List[int] = []
    node_relabel: Dict[str, int] = {}
    for name in node_walk:
        pod = topology.node(name).pod
        if pod is None:
            pod_pattern.append(-1)
        else:
            if pod not in pod_relabel:
                pod_relabel[pod] = len(pod_relabel)
            pod_pattern.append(pod_relabel[pod])
        if name not in node_relabel:
            node_relabel[name] = len(node_relabel)
        node_pattern.append(node_relabel[name])
    return (roles, tuple(pod_pattern), tuple(node_pattern))


@dataclass
class PathOrbits:
    """Candidate paths grouped into structural-isomorphism classes.

    Attributes
    ----------
    signature_of:
        signature index for every path index.
    members:
        list of path-index lists, one per orbit, in first-appearance order.
    signatures:
        the signature value of each orbit.
    """

    signature_of: List[int]
    members: List[List[int]]
    signatures: List[Tuple[Hashable, ...]]

    @classmethod
    def from_walks(
        cls, topology: Topology, node_walks: Sequence[Sequence[str]]
    ) -> "PathOrbits":
        index_of: Dict[Tuple[Hashable, ...], int] = {}
        signature_of: List[int] = []
        members: List[List[int]] = []
        signatures: List[Tuple[Hashable, ...]] = []
        for path_index, walk in enumerate(node_walks):
            sig = path_signature(topology, walk)
            orbit = index_of.get(sig)
            if orbit is None:
                orbit = len(members)
                index_of[sig] = orbit
                members.append([])
                signatures.append(sig)
            signature_of.append(orbit)
            members[orbit].append(path_index)
        return cls(signature_of=signature_of, members=members, signatures=signatures)

    @property
    def num_orbits(self) -> int:
        return len(self.members)

    def orbit_of(self, path_index: int) -> int:
        return self.signature_of[path_index]

    def orbit_members(self, orbit: int) -> List[int]:
        return list(self.members[orbit])

    def representatives(self) -> List[int]:
        """One path index (the first seen) per orbit."""
        return [member[0] for member in self.members]

    def summary(self) -> Mapping[str, int]:
        return {
            "paths": len(self.signature_of),
            "orbits": self.num_orbits,
            "largest_orbit": max((len(m) for m in self.members), default=0),
        }
