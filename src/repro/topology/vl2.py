"""VL2 topology generator (Greenberg et al., SIGCOMM 2009).

The paper's notation ``VL2(d_a, d_i, t)`` is interpreted as:

* ``d_a / 2`` intermediate switches,
* ``d_i`` aggregation switches,
* ``d_a * d_i / 4`` ToR switches, each dual-homed to two aggregation switches,
* ``t`` servers per ToR,
* every aggregation switch connects to every intermediate switch.

These parameters reproduce the node and link counts reported in Table 2, e.g.
``VL2(20, 12, 20)`` has 1282 nodes and 1440 links, and ``VL2(140, 120, 100)``
has 424390 nodes and 436800 links.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Tier, Topology, TopologyBuilder, TopologyError

__all__ = ["VL2Topology", "build_vl2", "vl2_counts"]


def vl2_counts(d_a: int, d_i: int, servers_per_tor: int) -> Dict[str, int]:
    """Analytic node/link/path counts for ``VL2(d_a, d_i, t)``."""
    if d_a < 2 or d_a % 2 != 0:
        raise TopologyError("VL2 aggregate-switch degree d_a must be even and >= 2")
    if d_i < 1:
        raise TopologyError("VL2 d_i must be >= 1")
    if servers_per_tor < 0:
        raise TopologyError("servers_per_tor must be non-negative")
    num_int = d_a // 2
    num_agg = d_i
    num_tor = d_a * d_i // 4
    num_servers = num_tor * servers_per_tor
    tor_agg_links = num_tor * 2
    agg_int_links = num_agg * num_int
    # Candidate probe paths: ordered ToR pairs, each routed
    # ToR -> agg -> intermediate -> agg' -> ToR' with 2 choices of source
    # aggregation switch, ``num_int`` intermediates and 2 destination
    # aggregation switches.
    paths_per_pair = 2 * num_int * 2
    return {
        "d_a": d_a,
        "d_i": d_i,
        "servers_per_tor": servers_per_tor,
        "intermediate_switches": num_int,
        "aggregation_switches": num_agg,
        "tor_switches": num_tor,
        "servers": num_servers,
        "nodes": num_int + num_agg + num_tor + num_servers,
        "links": tor_agg_links + agg_int_links + num_servers,
        "switch_links": tor_agg_links + agg_int_links,
        "paths_per_tor_pair": paths_per_pair,
        "original_paths": num_tor * (num_tor - 1) * paths_per_pair,
    }


class VL2Topology(Topology):
    """A fully built VL2 network with structural accessors."""

    def __init__(self, d_a: int, d_i: int, servers_per_tor: int = 0):
        counts = vl2_counts(d_a, d_i, servers_per_tor)
        self._d_a = d_a
        self._d_i = d_i
        self._servers_per_tor = servers_per_tor

        builder = TopologyBuilder(f"VL2({d_a},{d_i},{servers_per_tor})")

        self._int_names: List[str] = []
        for i in range(counts["intermediate_switches"]):
            name = f"int{i}"
            builder.add_node(name, Tier.INTERMEDIATE, position=i)
            self._int_names.append(name)

        self._agg_names: List[str] = []
        for i in range(counts["aggregation_switches"]):
            name = f"agg{i}"
            builder.add_node(name, Tier.AGGREGATION, position=i)
            self._agg_names.append(name)

        # aggregation <-> intermediate complete bipartite graph
        for agg in self._agg_names:
            for inter in self._int_names:
                builder.add_link(agg, inter)

        # ToRs: ToR t is dual homed to aggregation switches (2t, 2t+1) modulo
        # the aggregation count, pairing consecutive aggregation switches as
        # in the original VL2 wiring.
        self._tor_names: List[str] = []
        num_agg = counts["aggregation_switches"]
        for t in range(counts["tor_switches"]):
            name = f"tor{t}"
            builder.add_node(name, Tier.TOR, position=t)
            self._tor_names.append(name)
            agg_a = self._agg_names[(2 * t) % num_agg]
            agg_b = self._agg_names[(2 * t + 1) % num_agg]
            builder.add_link(name, agg_a)
            builder.add_link(name, agg_b)
            for s in range(servers_per_tor):
                server = f"tor{t}_srv{s}"
                builder.add_node(server, Tier.SERVER, position=s)
                builder.add_link(server, name)

        built = builder.build()
        super().__init__(built.name, list(built.nodes.values()), list(built.links))

    @property
    def d_a(self) -> int:
        return self._d_a

    @property
    def d_i(self) -> int:
        return self._d_i

    @property
    def servers_per_tor(self) -> int:
        return self._servers_per_tor

    @property
    def intermediate_switch_names(self) -> List[str]:
        return list(self._int_names)

    @property
    def aggregation_switch_names(self) -> List[str]:
        return list(self._agg_names)

    @property
    def tor_switch_names(self) -> List[str]:
        return list(self._tor_names)

    def aggs_of_tor(self, tor_name: str) -> List[str]:
        """The two aggregation switches a ToR is dual-homed to."""
        node = self.node(tor_name)
        if node.tier != Tier.TOR:
            raise TopologyError(f"{tor_name!r} is not a VL2 ToR switch")
        return [n for n in self.neighbors(tor_name) if self.node(n).tier == Tier.AGGREGATION]

    def expected_counts(self) -> Dict[str, int]:
        return vl2_counts(self._d_a, self._d_i, self._servers_per_tor)


def build_vl2(d_a: int, d_i: int, servers_per_tor: int = 0) -> VL2Topology:
    """Convenience constructor mirroring the paper's ``VL2(d_a, d_i, t)`` notation."""
    return VL2Topology(d_a, d_i, servers_per_tor)
