"""Command line interface for the deTector reproduction.

Usage (after ``pip install -e .``)::

    python -m repro topology fattree --k 4
    python -m repro pmc fattree --k 6 --alpha 2 --beta 1 --symmetry
    python -m repro monitor --k 4 --windows 5 --failures 1 --seed 7
    python -m repro experiment table2

Sub-commands:

* ``topology``   -- build a topology and print its node/link summary,
* ``pmc``        -- construct a probe matrix and report its quality metrics,
* ``monitor``    -- run the full monitoring system against random failures,
* ``engine``     -- drive the discrete-event telemetry engine
  (``engine run --scenario flapping ...`` measures detection latency),
* ``experiment`` -- regenerate one of the paper's tables/figures,
* ``lint``       -- statically check the determinism/parallelism/observability
  invariants (rules REP001-REP007, see ``docs/INVARIANTS.md``).

Every stochastic sub-command derives all of its randomness (churn, failure
synthesis, packet loss, probe jitter, fault dynamics) from one ``--seed``
through named :class:`repro.simulation.SeededStreams`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="deTector (USENIX ATC 2017) reproduction -- topology-aware DCN monitoring",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    topology = subparsers.add_parser("topology", help="build a topology and print its summary")
    _add_topology_arguments(topology)

    pmc = subparsers.add_parser("pmc", help="construct a probe matrix with PMC")
    _add_topology_arguments(pmc)
    pmc.add_argument("--alpha", type=int, default=3, help="coverage target (default 3)")
    pmc.add_argument("--beta", type=int, default=1, help="identifiability target (default 1)")
    pmc.add_argument("--symmetry", action="store_true", help="enable symmetry reduction")
    pmc.add_argument(
        "--no-lazy", action="store_true", help="disable lazy (CELF) score updates"
    )
    pmc.add_argument(
        "--no-decomposition", action="store_true", help="disable problem decomposition"
    )
    pmc.add_argument(
        "--shard-by-pods", action="store_true",
        help="pod-sharded decomposition (one subproblem per pod + residual shard)",
    )
    pmc.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for subproblem solves (default: REPRO_JOBS or 1; "
        "selections are byte-identical at any setting)",
    )

    monitor = subparsers.add_parser("monitor", help="run the monitoring system end to end")
    monitor.add_argument("--k", type=int, default=4, help="Fattree radix (default 4)")
    monitor.add_argument("--alpha", type=int, default=3)
    monitor.add_argument("--beta", type=int, default=1)
    monitor.add_argument("--windows", type=int, default=5, help="number of 30 s windows to run")
    monitor.add_argument("--failures", type=int, default=1, help="concurrent failures per window")
    monitor.add_argument("--probes-per-second", type=float, default=10.0)
    monitor.add_argument("--seed", type=int, default=2017)
    monitor.add_argument(
        "--incremental",
        action="store_true",
        help="run churn-aware incremental controller cycles instead of full rebuilds",
    )
    monitor.add_argument(
        "--churn",
        type=float,
        default=0.0,
        metavar="MEAN",
        help="mean topology-churn events per cycle (0 disables churn; implies one "
        "controller cycle per window)",
    )
    monitor.add_argument(
        "--shard-by-pods", action="store_true",
        help="pod-sharded control plane: solve one PMC subproblem per pod "
        "(plus a residual shard) with per-pod warm caches",
    )
    monitor.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for PMC subproblem solves (default: REPRO_JOBS or 1)",
    )
    monitor.add_argument(
        "--intrapod-paths", action="store_true",
        help="also enumerate edge->agg->edge intra-pod candidate paths "
        "(gives the pod shards pod-local work on Fattree)",
    )

    engine = subparsers.add_parser(
        "engine", help="discrete-event telemetry engine (timed probes, fault dynamics)"
    )
    engine_sub = engine.add_subparsers(dest="engine_command", required=True)
    engine_run = engine_sub.add_parser(
        "run", help="simulate a fault scenario and report detection latency"
    )
    _add_engine_arguments(engine_run)
    engine_run.add_argument("--duration", type=float, default=300.0, help="simulated seconds")
    engine_serve = engine_sub.add_parser(
        "serve",
        help="stream aggregation windows continuously (long-running serve mode)",
    )
    _add_engine_arguments(engine_serve)
    engine_serve.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds to serve (default: unbounded)",
    )
    engine_serve.add_argument(
        "--windows", type=int, default=None, metavar="N",
        help="stop after N windows (default: unbounded; Ctrl-C to stop)",
    )
    engine_serve.add_argument(
        "--status-every", type=int, default=0, metavar="N",
        help="print a registry-sourced status line every N windows (0 = off)",
    )

    experiment = subparsers.add_parser("experiment", help="regenerate a table/figure of the paper")
    experiment.add_argument(
        "name",
        choices=[
            "table2",
            "table3",
            "table4",
            "table5",
            "figure4",
            "figure5",
            "figure6",
            "pll",
            "all",
        ],
        help="which experiment harness to run ('all' runs the quick suite)",
    )
    experiment.add_argument(
        "--output-dir",
        default=None,
        help="with 'all': directory to write per-experiment .txt/.csv results to",
    )
    experiment.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="with 'all': suite scale (quick ~ minutes, full ~ tens of minutes)",
    )
    experiment.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="with 'all': run experiments in N worker processes (default: "
        "REPRO_JOBS or 1; results are identical to --jobs 1, only wall-clock "
        "time changes)",
    )
    experiment.add_argument(
        "--seed",
        type=int,
        default=None,
        help="with 'all': root seed; per-experiment seeds are derived from it "
        "through named SeededStreams streams",
    )

    lint = subparsers.add_parser(
        "lint",
        help="statically check the determinism/parallelism/observability invariants",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--baseline",
        default="lint-baseline.json",
        help="baseline file of grandfathered findings (default: lint-baseline.json)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file entirely"
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current unsuppressed findings",
    )
    lint.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the findings as a JSON report to PATH ('-' for stdout)",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="repository root paths are relative to (default: current directory)",
    )
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by ``engine run`` and ``engine serve``."""
    parser.add_argument("--k", type=int, default=4, help="Fattree radix (default 4)")
    parser.add_argument(
        "--scenario",
        choices=["flapping", "congestion", "gray", "switch-outage", "static"],
        default="flapping",
        help="fault dynamics to inject (default flapping)",
    )
    parser.add_argument("--links", type=int, default=1, help="number of faulty links")
    parser.add_argument("--alpha", type=int, default=3)
    parser.add_argument("--beta", type=int, default=1)
    parser.add_argument("--window-seconds", type=float, default=30.0)
    parser.add_argument("--cycle-seconds", type=float, default=300.0)
    parser.add_argument(
        "--probe-rate", type=float, default=None, help="per-pinger probes/s (default: pinglist rate)"
    )
    parser.add_argument("--jitter", type=float, default=0.1, help="probe interval jitter fraction")
    parser.add_argument(
        "--flap-half-life", type=float, default=45.0, help="up/down state half-life (flapping)"
    )
    parser.add_argument(
        "--congestion-loss-rate", type=float, default=0.05, help="loss rate during congestion"
    )
    parser.add_argument(
        "--churn", type=float, default=0.0, metavar="MEAN",
        help="mean known-churn events replayed into the watchdog per controller cycle",
    )
    parser.add_argument(
        "--full-rebuilds", action="store_true",
        help="run full controller rebuilds instead of incremental cycles",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="disable coalesced (batched) probe-event scheduling",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="aggregator shard count (window reports are invariant in this)",
    )
    parser.add_argument(
        "--coalesce-horizon", type=float, default=10.0, metavar="SECONDS",
        help="max simulated time one coalesced drain may span",
    )
    parser.add_argument(
        "--bulk-threshold", type=int, default=64, metavar="ROWS",
        help="min probe-batch rows per drain before the columnar kernel engages",
    )
    parser.add_argument(
        "--shard-by-pods", action="store_true",
        help="pod-sharded control plane for the controller cycles",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for PMC subproblem solves (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--intrapod-paths", action="store_true",
        help="also enumerate edge->agg->edge intra-pod candidate paths",
    )
    parser.add_argument("--seed", type=int, default=2017)
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write metrics-registry snapshots to PATH (run: one final JSON "
        "document; serve: one JSON line per window)",
    )
    obs.add_argument(
        "--metrics-every", type=int, default=1, metavar="N",
        help="with serve --metrics-json: write every Nth window (default 1)",
    )
    obs.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable sim-time tracing and write the span tree as JSONL "
        "(also enabled by REPRO_TRACE=1)",
    )
    obs.add_argument(
        "--chrome-trace", default=None, metavar="PATH",
        help="enable tracing and write a chrome://tracing / Perfetto JSON file",
    )
    obs.add_argument(
        "--profile", default=None, metavar="OUT.pstats",
        help="cProfile exactly one aggregation window into OUT.pstats",
    )


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "kind", choices=["fattree", "vl2", "bcube"], help="topology family to build"
    )
    parser.add_argument("--k", type=int, default=4, help="Fattree radix (default 4)")
    parser.add_argument("--da", type=int, default=8, help="VL2 d_a parameter")
    parser.add_argument("--di", type=int, default=6, help="VL2 d_i parameter")
    parser.add_argument("--servers-per-tor", type=int, default=2, help="VL2 servers per ToR")
    parser.add_argument("--n", type=int, default=4, help="BCube port count")
    parser.add_argument("--levels", type=int, default=1, help="BCube level parameter k")


def _build_topology(args: argparse.Namespace):
    from repro import build_bcube, build_fattree, build_vl2

    if args.kind == "fattree":
        return build_fattree(args.k)
    if args.kind == "vl2":
        return build_vl2(args.da, args.di, args.servers_per_tor)
    return build_bcube(args.n, args.levels)


# ---------------------------------------------------------------------------
# sub-command handlers
# ---------------------------------------------------------------------------

def _cmd_topology(args: argparse.Namespace) -> int:
    topology = _build_topology(args)
    print(f"{topology.name}")
    for key, value in topology.summary().items():
        print(f"  {key:13s} {value}")
    return 0


def _cmd_pmc(args: argparse.Namespace) -> int:
    from repro import pmc_for_topology
    from repro.core import check_coverage, identifiability_level

    topology = _build_topology(args)
    result = pmc_for_topology(
        topology,
        alpha=args.alpha,
        beta=args.beta,
        use_symmetry=args.symmetry,
        use_lazy_update=not args.no_lazy,
        use_decomposition=not args.no_decomposition,
        shard_by_pods=args.shard_by_pods,
        jobs=args.jobs,
    )
    probe_matrix = result.probe_matrix
    print(f"{topology.name}: selected {result.num_paths} probe paths "
          f"for {probe_matrix.num_links} inter-switch links "
          f"in {result.stats.elapsed_seconds:.3f} s {result.options.label()}")
    print(f"  coverage >= {args.alpha}: {check_coverage(probe_matrix, args.alpha)}")
    achieved = identifiability_level(probe_matrix, max_beta=max(args.beta, 1))
    print(f"  achieved identifiability: {achieved} (target {args.beta})")
    summary = probe_matrix.summary()
    print(f"  link coverage min/mean/max: {summary['min_coverage']}/"
          f"{summary['mean_coverage']:.1f}/{summary['max_coverage']}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro import build_fattree
    from repro.localization import aggregate_metrics
    from repro.monitor import ControllerConfig, DetectorSystem
    from repro.simulation import ChurnSchedule, FailureGenerator, SeededStreams

    topology = build_fattree(args.k)
    # One seed, independent named streams: drawing an extra churn event can
    # never shift the packet-loss draws of a later window.
    streams = SeededStreams(args.seed)
    rng = streams.generator("probing")
    system = DetectorSystem(
        topology,
        rng,
        ControllerConfig(
            alpha=args.alpha,
            beta=args.beta,
            probes_per_second=args.probes_per_second,
            shard_by_pods=args.shard_by_pods,
            jobs=args.jobs,
            intrapod_paths=args.intrapod_paths,
        ),
    )
    schedule = (
        ChurnSchedule.generate(
            topology,
            streams.generator("churn"),
            num_cycles=args.windows,
            mean_events_per_cycle=args.churn,
        )
        if args.churn > 0
        else None
    )
    cycle = system.run_controller_cycle(incremental=args.incremental)
    print(
        f"controller: {cycle.probe_matrix.num_paths} probe paths, {cycle.num_pingers} pingers"
    )
    generator = FailureGenerator(topology, streams.generator("failures"))
    metrics = []
    for window in range(args.windows):
        if schedule is not None:
            system.watchdog.apply_delta(schedule[window])
            cycle = system.run_controller_cycle(incremental=args.incremental)
            print(
                f"cycle {cycle.version} [{cycle.mode}]: "
                f"{schedule[window].describe()} -> {cycle.probe_matrix.num_paths} paths"
            )
        scenario = generator.generate(args.failures)
        outcome = system.run_window(scenario)
        metrics.append(outcome.metrics)
        print(f"window {window}: injected {scenario.description}")
        if outcome.diagnosis.alerts:
            for alert in outcome.diagnosis.alerts:
                print(f"  ALERT {alert.describe()}")
        else:
            print("  no alerts")
    aggregated = aggregate_metrics(metrics)
    print(
        f"overall: accuracy {aggregated['accuracy']:.0%}, "
        f"false positives {aggregated['false_positive_ratio']:.0%} over {args.windows} windows"
    )
    return 0


def _build_engine_episodes(args: argparse.Namespace, topology, streams):
    """Translate an ``engine run`` scenario name into fault episodes."""
    from repro.engine import CongestionEpisode, FlappingLink, GrayFailure, SwitchOutage
    from repro.simulation import FailureScenario

    picker = streams.generator("fault-placement")
    links = [link.link_id for link in topology.switch_links]
    chosen = [int(links[i]) for i in picker.choice(len(links), size=args.links, replace=False)]
    start = args.window_seconds  # let one clean window establish the baseline
    # Fixed-length episodes need a horizon; an unbounded serve run sizes them
    # off the cycle length instead.
    duration = args.duration
    if duration is None:
        duration = 10.0 * max(args.cycle_seconds, args.window_seconds)

    if args.scenario == "flapping":
        return [
            FlappingLink(
                link_id=link,
                start_time=start,
                half_life_up_seconds=args.flap_half_life,
                half_life_down_seconds=args.flap_half_life,
            )
            for link in chosen
        ], None
    if args.scenario == "congestion":
        return [
            CongestionEpisode(
                link_id=link,
                start_time=start,
                duration_seconds=max(duration - 2 * start, args.window_seconds),
                loss_rate=args.congestion_loss_rate,
            )
            for link in chosen
        ], None
    if args.scenario == "gray":
        return [
            GrayFailure(link_id=link, start_time=start, salt=index)
            for index, link in enumerate(chosen)
        ], None
    if args.scenario == "switch-outage":
        switches = [node.name for node in topology.switches]
        switch = switches[int(picker.integers(0, len(switches)))]
        return [
            SwitchOutage(
                switch_name=switch,
                start_time=start,
                duration_seconds=max(duration - 2 * start, args.window_seconds),
            )
        ], None
    # static: a frozen scenario active from t=0, no dynamics.
    scenario = FailureScenario(description="static CLI scenario")
    from repro.simulation import LinkFailure, LossMode

    for link in chosen:
        scenario.add(LinkFailure(link_id=link, mode=LossMode.FULL))
    return [], scenario


def _build_engine(args: argparse.Namespace):
    """Build the (topology, engine) pair shared by ``run`` and ``serve``."""
    from repro import build_fattree
    from repro.engine import DynamicFaultModel, EngineConfig, TelemetryEngine
    from repro.monitor import ControllerConfig, DetectorSystem
    from repro.simulation import ChurnSchedule, SeededStreams

    topology = build_fattree(args.k)
    streams = SeededStreams(args.seed)
    system = DetectorSystem(
        topology,
        streams.generator("probing"),
        ControllerConfig(
            alpha=args.alpha,
            beta=args.beta,
            shard_by_pods=args.shard_by_pods,
            jobs=args.jobs,
            intrapod_paths=args.intrapod_paths,
        ),
    )
    episodes, static_scenario = _build_engine_episodes(args, topology, streams)
    config = EngineConfig(
        window_seconds=args.window_seconds,
        cycle_seconds=args.cycle_seconds,
        probes_per_second=args.probe_rate,
        jitter_fraction=args.jitter,
        incremental_cycles=not args.full_rebuilds,
        batched_scheduling=not args.no_batch,
        aggregator_shards=args.shards,
        coalesce_horizon_seconds=args.coalesce_horizon,
        bulk_batch_threshold=args.bulk_threshold,
    )
    churn_schedule = None
    if args.churn > 0:
        horizon = args.duration if args.duration else 10.0 * args.cycle_seconds
        num_cycles = max(1, int(horizon // args.cycle_seconds))
        churn_schedule = ChurnSchedule.generate(
            topology,
            streams.generator("churn"),
            num_cycles=num_cycles,
            mean_events_per_cycle=args.churn,
        )
    if static_scenario is not None:
        model = DynamicFaultModel.static(topology, static_scenario)
        model.churn_schedule = churn_schedule
    else:
        model = DynamicFaultModel(
            topology,
            episodes=episodes,
            rng=streams.generator("fault-dynamics"),
            churn_schedule=churn_schedule,
        )
    from repro.obs import Observability

    want_trace = bool(args.trace or args.chrome_trace)
    obs = Observability.create(
        tracing=True if want_trace else None,  # None defers to REPRO_TRACE
        profile_path=args.profile,
    )
    engine = TelemetryEngine(
        system, model, config, rng=streams.generator("probe-jitter"), obs=obs
    )
    return topology, engine


def _print_ignoring_broken_pipe(line: str) -> None:
    """Print the serve epilogue, tolerating a pipe reader killed by the
    same Ctrl-C (``... serve | head`` dies downstream first)."""
    import os
    import sys

    try:
        print(line)
        sys.stdout.flush()
    except BrokenPipeError:  # pragma: no cover - needs a dead pipe reader
        # Re-point stdout at devnull so the interpreter's exit-time flush
        # does not raise a second BrokenPipeError.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _export_observability(args: argparse.Namespace, engine) -> None:
    """Write the trace artifacts requested on the command line."""
    obs = engine.obs
    if obs.tracer is None:
        return
    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as fh:
            fh.write(obs.tracer.export_jsonl())
        _print_ignoring_broken_pipe(f"trace written to {args.trace}")
    if args.chrome_trace:
        import json

        from repro.obs import to_chrome_trace

        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            json.dump(to_chrome_trace(obs.tracer.finished_spans()), fh)
            fh.write("\n")
        _print_ignoring_broken_pipe(f"chrome trace written to {args.chrome_trace}")


def _cmd_engine_serve(args: argparse.Namespace) -> int:
    from repro.obs import MetricsJSONWriter, format_status_line

    topology, engine = _build_engine(args)
    registry = engine.obs.registry
    bound = f"{args.windows} windows" if args.windows else (
        f"{args.duration:.0f} s" if args.duration else "unbounded"
    )
    print(f"engine serve: {args.scenario} on {topology.name} ({bound}); Ctrl-C to stop")
    writer = (
        MetricsJSONWriter(args.metrics_json, every=args.metrics_every)
        if args.metrics_json
        else None
    )
    served = 0
    wall = 0.0
    control_wall = 0.0
    try:
        for window in engine.serve(max_windows=args.windows, duration=args.duration):
            served += 1
            wall += window.wall_seconds
            control_wall += window.control_wall_seconds
            report = window.report
            suspects = list(window.window.diagnosis.suspected_links)
            print(
                f"  window {report.index:>4} [{report.start:>8.1f}s, {report.end:>8.1f}s) "
                f"probes={window.probes_sent:>8} lost={window.probes_lost:>6} "
                f"late={window.rejected_events} "
                f"rate={window.probe_events_per_second:>12,.0f}/s "
                f"x{window.realtime_factor:,.0f} realtime "
                f"suspects={suspects if suspects else '[]'}"
            )
            if writer is not None:
                writer.write(report.index, report.end, registry)
            if args.status_every and served % args.status_every == 0:
                print(f"  {format_status_line(registry, served, wall)}")
    except KeyboardInterrupt:  # pragma: no cover - interactive escape hatch
        _print_ignoring_broken_pipe("  ... interrupted")
    finally:
        if writer is not None:
            writer.close()
        _export_observability(args, engine)
    # The final summary is sourced from the metrics registry -- the same
    # totals --metrics-json exports -- not from loop-local tallies, so it is
    # identical whether the loop finished cleanly or was interrupted.
    probes = int(registry.value("probes_sent"))
    lost = int(registry.value("probes_lost"))
    rejected = int(registry.value("aggregator_events_rejected"))
    cycles = int(registry.value("controller_cycles"))
    streaming_wall = max(wall - control_wall, 0.0)
    rate = probes / streaming_wall if streaming_wall > 0 else 0.0
    _print_ignoring_broken_pipe(
        f"served {served} windows: {probes} probes ({lost} lost, {rejected} late), "
        f"{cycles} cycles, wall {wall:.3f}s ({control_wall:.3f}s control), "
        f"{rate:,.0f} probe events/s"
    )
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    if args.engine_command == "serve":
        return _cmd_engine_serve(args)
    topology, engine = _build_engine(args)
    result = engine.run(args.duration)
    if args.metrics_json:
        from repro.obs import write_snapshot

        write_snapshot(args.metrics_json, engine.obs.registry)
        print(f"metrics snapshot written to {args.metrics_json}")
    _export_observability(args, engine)

    print(f"engine: {args.scenario} on {topology.name}, {args.duration:.0f} s simulated")
    for key, value in result.summary().items():
        print(f"  {key:28s} {value}")
    for record in result.detections:
        link = topology.link(record.link_id)
        detection = (
            f"detected +{record.detection_latency:.1f}s" if record.detected else "undetected"
        )
        localization = (
            f"localized +{record.localization_latency:.1f}s"
            if record.localized
            else "not localized"
        )
        print(
            f"  fault link {record.link_id} ({link.a} <-> {link.b}) "
            f"at t={record.fault_start:.1f}s: {detection}, {localization}"
        )
    for cycle in result.cycles:
        shards = (
            f" shards={list(cycle.touched_shards)}"
            if cycle.touched_shards is not None
            else ""
        )
        print(
            f"  cycle at t={cycle.time:.0f}s [{cycle.mode}] churn={cycle.churn} "
            f"wall={cycle.wall_seconds:.3f}s paths={cycle.num_paths}{shards}"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        default_suite,
        figure4,
        figure5,
        figure6,
        pll_comparison,
        run_all,
        table2,
        table3,
        table4,
        table5,
    )

    if args.name == "all":
        from repro.parallel import resolve_jobs

        run_all(
            default_suite(args.scale),
            output_dir=args.output_dir,
            jobs=resolve_jobs(args.jobs),
            seed=args.seed,
        )
        return 0

    modules = {
        "table2": table2,
        "table3": table3,
        "table4": table4,
        "table5": table5,
        "figure4": figure4,
        "figure5": figure5,
        "figure6": figure6,
        "pll": pll_comparison,
    }
    modules[args.name].main()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import main as lint_main

    argv: List[str] = list(args.paths)
    argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.json:
        argv += ["--json", args.json]
    if args.root:
        argv += ["--root", args.root]
    return lint_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` / ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "topology": _cmd_topology,
        "pmc": _cmd_pmc,
        "monitor": _cmd_monitor,
        "engine": _cmd_engine,
        "experiment": _cmd_experiment,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
