"""Command line interface for the deTector reproduction.

Usage (after ``pip install -e .``)::

    python -m repro topology fattree --k 4
    python -m repro pmc fattree --k 6 --alpha 2 --beta 1 --symmetry
    python -m repro monitor --k 4 --windows 5 --failures 1 --seed 7
    python -m repro experiment table2

Sub-commands:

* ``topology``   -- build a topology and print its node/link summary,
* ``pmc``        -- construct a probe matrix and report its quality metrics,
* ``monitor``    -- run the full monitoring system against random failures,
* ``experiment`` -- regenerate one of the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="deTector (USENIX ATC 2017) reproduction -- topology-aware DCN monitoring",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    topology = subparsers.add_parser("topology", help="build a topology and print its summary")
    _add_topology_arguments(topology)

    pmc = subparsers.add_parser("pmc", help="construct a probe matrix with PMC")
    _add_topology_arguments(pmc)
    pmc.add_argument("--alpha", type=int, default=3, help="coverage target (default 3)")
    pmc.add_argument("--beta", type=int, default=1, help="identifiability target (default 1)")
    pmc.add_argument("--symmetry", action="store_true", help="enable symmetry reduction")
    pmc.add_argument(
        "--no-lazy", action="store_true", help="disable lazy (CELF) score updates"
    )
    pmc.add_argument(
        "--no-decomposition", action="store_true", help="disable problem decomposition"
    )

    monitor = subparsers.add_parser("monitor", help="run the monitoring system end to end")
    monitor.add_argument("--k", type=int, default=4, help="Fattree radix (default 4)")
    monitor.add_argument("--alpha", type=int, default=3)
    monitor.add_argument("--beta", type=int, default=1)
    monitor.add_argument("--windows", type=int, default=5, help="number of 30 s windows to run")
    monitor.add_argument("--failures", type=int, default=1, help="concurrent failures per window")
    monitor.add_argument("--probes-per-second", type=float, default=10.0)
    monitor.add_argument("--seed", type=int, default=2017)
    monitor.add_argument(
        "--incremental",
        action="store_true",
        help="run churn-aware incremental controller cycles instead of full rebuilds",
    )
    monitor.add_argument(
        "--churn",
        type=float,
        default=0.0,
        metavar="MEAN",
        help="mean topology-churn events per cycle (0 disables churn; implies one "
        "controller cycle per window)",
    )

    experiment = subparsers.add_parser("experiment", help="regenerate a table/figure of the paper")
    experiment.add_argument(
        "name",
        choices=[
            "table2",
            "table3",
            "table4",
            "table5",
            "figure4",
            "figure5",
            "figure6",
            "pll",
            "all",
        ],
        help="which experiment harness to run ('all' runs the quick suite)",
    )
    experiment.add_argument(
        "--output-dir",
        default=None,
        help="with 'all': directory to write per-experiment .txt/.csv results to",
    )
    experiment.add_argument(
        "--scale",
        choices=["quick", "full"],
        default="quick",
        help="with 'all': suite scale (quick ~ minutes, full ~ tens of minutes)",
    )
    return parser


def _add_topology_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "kind", choices=["fattree", "vl2", "bcube"], help="topology family to build"
    )
    parser.add_argument("--k", type=int, default=4, help="Fattree radix (default 4)")
    parser.add_argument("--da", type=int, default=8, help="VL2 d_a parameter")
    parser.add_argument("--di", type=int, default=6, help="VL2 d_i parameter")
    parser.add_argument("--servers-per-tor", type=int, default=2, help="VL2 servers per ToR")
    parser.add_argument("--n", type=int, default=4, help="BCube port count")
    parser.add_argument("--levels", type=int, default=1, help="BCube level parameter k")


def _build_topology(args: argparse.Namespace):
    from repro import build_bcube, build_fattree, build_vl2

    if args.kind == "fattree":
        return build_fattree(args.k)
    if args.kind == "vl2":
        return build_vl2(args.da, args.di, args.servers_per_tor)
    return build_bcube(args.n, args.levels)


# ---------------------------------------------------------------------------
# sub-command handlers
# ---------------------------------------------------------------------------

def _cmd_topology(args: argparse.Namespace) -> int:
    topology = _build_topology(args)
    print(f"{topology.name}")
    for key, value in topology.summary().items():
        print(f"  {key:13s} {value}")
    return 0


def _cmd_pmc(args: argparse.Namespace) -> int:
    from repro import pmc_for_topology
    from repro.core import check_coverage, identifiability_level

    topology = _build_topology(args)
    result = pmc_for_topology(
        topology,
        alpha=args.alpha,
        beta=args.beta,
        use_symmetry=args.symmetry,
        use_lazy_update=not args.no_lazy,
        use_decomposition=not args.no_decomposition,
    )
    probe_matrix = result.probe_matrix
    print(f"{topology.name}: selected {result.num_paths} probe paths "
          f"for {probe_matrix.num_links} inter-switch links "
          f"in {result.stats.elapsed_seconds:.3f} s {result.options.label()}")
    print(f"  coverage >= {args.alpha}: {check_coverage(probe_matrix, args.alpha)}")
    achieved = identifiability_level(probe_matrix, max_beta=max(args.beta, 1))
    print(f"  achieved identifiability: {achieved} (target {args.beta})")
    summary = probe_matrix.summary()
    print(f"  link coverage min/mean/max: {summary['min_coverage']}/"
          f"{summary['mean_coverage']:.1f}/{summary['max_coverage']}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro import build_fattree
    from repro.localization import aggregate_metrics
    from repro.monitor import ControllerConfig, DetectorSystem
    from repro.simulation import ChurnSchedule, FailureGenerator

    topology = build_fattree(args.k)
    rng = np.random.default_rng(args.seed)
    system = DetectorSystem(
        topology,
        rng,
        ControllerConfig(
            alpha=args.alpha, beta=args.beta, probes_per_second=args.probes_per_second
        ),
    )
    schedule = (
        ChurnSchedule.generate(topology, rng, num_cycles=args.windows, mean_events_per_cycle=args.churn)
        if args.churn > 0
        else None
    )
    cycle = system.run_controller_cycle(incremental=args.incremental)
    print(
        f"controller: {cycle.probe_matrix.num_paths} probe paths, {cycle.num_pingers} pingers"
    )
    generator = FailureGenerator(topology, rng)
    metrics = []
    for window in range(args.windows):
        if schedule is not None:
            system.watchdog.apply_delta(schedule[window])
            cycle = system.run_controller_cycle(incremental=args.incremental)
            print(
                f"cycle {cycle.version} [{cycle.mode}]: "
                f"{schedule[window].describe()} -> {cycle.probe_matrix.num_paths} paths"
            )
        scenario = generator.generate(args.failures)
        outcome = system.run_window(scenario)
        metrics.append(outcome.metrics)
        print(f"window {window}: injected {scenario.description}")
        if outcome.diagnosis.alerts:
            for alert in outcome.diagnosis.alerts:
                print(f"  ALERT {alert.describe()}")
        else:
            print("  no alerts")
    aggregated = aggregate_metrics(metrics)
    print(
        f"overall: accuracy {aggregated['accuracy']:.0%}, "
        f"false positives {aggregated['false_positive_ratio']:.0%} over {args.windows} windows"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        default_suite,
        figure4,
        figure5,
        figure6,
        pll_comparison,
        run_all,
        table2,
        table3,
        table4,
        table5,
    )

    if args.name == "all":
        run_all(default_suite(args.scale), output_dir=args.output_dir)
        return 0

    modules = {
        "table2": table2,
        "table3": table3,
        "table4": table4,
        "table5": table5,
        "figure4": figure4,
        "figure5": figure5,
        "figure6": figure6,
        "pll": pll_comparison,
    }
    modules[args.name].main()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` / ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "topology": _cmd_topology,
        "pmc": _cmd_pmc,
        "monitor": _cmd_monitor,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
