"""Time-evolving fault models: gray failures, flaps, congestion, outages.

The static :class:`~repro.simulation.failures.FailureScenario` describes one
frozen instant; real fabrics fail *over time* -- links flap, congestion
episodes raise loss for a while, gray failures silently blackhole a slice of
the flow space, a whole switch goes dark.  :class:`DynamicFaultModel` owns a
live scenario object shared with the :class:`~repro.simulation.ProbeSimulator`
and mutates it through transition events on the engine's
:class:`~repro.engine.loop.EventLoop`, keeping a full transition history and
per-link fault intervals so detection latency can be measured against ground
truth.

None of these faults are reported to the watchdog -- they are exactly the
failures deTector exists to *detect* from probe losses.  Known control-plane
churn (maintenance, reported downs) rides separately on the existing
:class:`~repro.simulation.failures.ChurnSchedule`, which the model replays
into the watchdog one delta per controller cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import tracing
from ..simulation.failures import ChurnSchedule, FailureScenario, LinkFailure, LossMode
from ..simulation.rng import SeededStreams
from ..topology import Topology, TopologyDelta
from .loop import EventLoop

__all__ = [
    "FaultTransition",
    "FaultEpisode",
    "FlappingLink",
    "CongestionEpisode",
    "GrayFailure",
    "SwitchOutage",
    "DynamicFaultModel",
]

_LN2 = math.log(2.0)


@dataclass(frozen=True)
class FaultTransition:
    """One ground-truth state change of the fault model."""

    time: float
    link_id: int
    active: bool
    kind: str


class FaultEpisode:
    """Base class: one fault process over a set of links.

    Subclasses implement :meth:`install`, scheduling their transition events
    on the loop.  ``horizon`` is the engine's end of time; open-ended episodes
    simply never schedule a recovery before it.
    """

    kind = "fault"

    def install(self, model: "DynamicFaultModel", loop: EventLoop, horizon: float) -> None:
        raise NotImplementedError


@dataclass
class FlappingLink(FaultEpisode):
    """A link that alternates between healthy and lossy states.

    Dwell times are exponential: the state survives time ``t`` with
    probability ``2**(-t / half_life)``, so ``half_life_*_seconds`` is
    literally the state's half-life.  While down the link drops packets at
    ``down_loss_rate`` (1.0 = full loss).
    """

    link_id: int
    start_time: float = 0.0
    end_time: Optional[float] = None
    half_life_up_seconds: float = 60.0
    half_life_down_seconds: float = 20.0
    down_loss_rate: float = 1.0
    kind = "flap"

    def install(self, model: "DynamicFaultModel", loop: EventLoop, horizon: float) -> None:
        end = horizon if self.end_time is None else min(self.end_time, horizon)
        rng = model.rng

        def dwell(half_life: float) -> float:
            return float(rng.exponential(half_life / _LN2))

        def go_down() -> None:
            if loop.clock.now >= end:
                return
            model.activate(self.link_id, self._failure(), self.kind)
            loop.schedule_after(dwell(self.half_life_down_seconds), go_up)

        def go_up() -> None:
            model.deactivate(self.link_id, self.kind)
            if loop.clock.now < end:
                loop.schedule_after(dwell(self.half_life_up_seconds), go_down)

        first_down = self.start_time + dwell(self.half_life_up_seconds)
        if first_down < end:
            loop.schedule_at(first_down, go_down)

    def _failure(self) -> LinkFailure:
        if self.down_loss_rate >= 1.0:
            return LinkFailure(link_id=self.link_id, mode=LossMode.FULL)
        return LinkFailure(
            link_id=self.link_id,
            mode=LossMode.RANDOM_PARTIAL,
            loss_rate=self.down_loss_rate,
        )


@dataclass
class CongestionEpisode(FaultEpisode):
    """Elevated-but-not-total random loss on a link for a fixed duration.

    Models buffer-overflow loss (§6.2 "random partial loss"): probes drop
    with ``loss_rate`` (default 5%), far above noise yet far below link-down.
    """

    link_id: int
    start_time: float
    duration_seconds: float
    loss_rate: float = 0.05
    kind = "congestion"

    def install(self, model: "DynamicFaultModel", loop: EventLoop, horizon: float) -> None:
        if self.start_time >= horizon:
            return
        failure = LinkFailure(
            link_id=self.link_id, mode=LossMode.RANDOM_PARTIAL, loss_rate=self.loss_rate
        )
        loop.schedule_at(
            self.start_time, lambda: model.activate(self.link_id, failure, self.kind)
        )
        end = self.start_time + self.duration_seconds
        if end < horizon:
            loop.schedule_at(end, lambda: model.deactivate(self.link_id, self.kind))


@dataclass
class GrayFailure(FaultEpisode):
    """A silent blackhole: a fixed slice of the flow space is dropped.

    The deterministic-partial loss class of §6.2 -- packets whose 5-tuple
    hash lands in ``match_fraction`` of the flow space vanish, everything
    else is perfect.  Invisible to counters and to the watchdog; only pinned
    probes with port entropy can see it.  Persists until ``end_time`` (or the
    horizon).
    """

    link_id: int
    start_time: float = 0.0
    end_time: Optional[float] = None
    match_fraction: float = 0.125
    salt: int = 0
    kind = "gray"

    def install(self, model: "DynamicFaultModel", loop: EventLoop, horizon: float) -> None:
        if self.start_time >= horizon:
            return
        failure = LinkFailure(
            link_id=self.link_id,
            mode=LossMode.DETERMINISTIC_PARTIAL,
            match_fraction=self.match_fraction,
            salt=self.salt,
        )
        loop.schedule_at(
            self.start_time, lambda: model.activate(self.link_id, failure, self.kind)
        )
        if self.end_time is not None and self.end_time < horizon:
            loop.schedule_at(self.end_time, lambda: model.deactivate(self.link_id, self.kind))


@dataclass
class SwitchOutage(FaultEpisode):
    """A correlated switch-wide outage: every incident link drops everything.

    How the testbed emulates switch-down (§6.2).  The affected link set is
    resolved from the topology at install time.
    """

    switch_name: str
    start_time: float
    duration_seconds: float
    kind = "switch_outage"

    def install(self, model: "DynamicFaultModel", loop: EventLoop, horizon: float) -> None:
        if self.start_time >= horizon:
            return
        link_ids = [link.link_id for link in model.topology.links_of(self.switch_name)]

        def down() -> None:
            for link_id in link_ids:
                model.activate(link_id, LinkFailure(link_id=link_id, mode=LossMode.FULL), self.kind)

        def up() -> None:
            for link_id in link_ids:
                model.deactivate(link_id, self.kind)

        loop.schedule_at(self.start_time, down)
        end = self.start_time + self.duration_seconds
        if end < horizon:
            loop.schedule_at(end, up)


class DynamicFaultModel:
    """Evolves a live :class:`FailureScenario` through scheduled transitions.

    The model owns the scenario object the probe simulator reads on every
    probe, so activations/deactivations take effect mid-window, exactly like
    a real fault would.  ``fault_intervals`` records ground truth as
    ``link_id -> [[start, end-or-None], ...]`` for latency accounting, and an
    optional :class:`ChurnSchedule` supplies the *known* control-plane churn
    the engine replays into the watchdog at controller-cycle boundaries.
    """

    def __init__(
        self,
        topology: Topology,
        episodes: Sequence[FaultEpisode] = (),
        rng: Optional[np.random.Generator] = None,
        churn_schedule: Optional[ChurnSchedule] = None,
        scenario: Optional[FailureScenario] = None,
    ):
        self.topology = topology
        self.episodes = list(episodes)
        # Like the engine's probe-jitter stream, the default dwell-time
        # randomness comes from a named SeededStreams stream rather than a
        # bare ``default_rng`` (explicit callers pass
        # ``streams.generator("fault-dynamics")``).
        self.rng = rng if rng is not None else SeededStreams(0).generator("fault-dynamics")
        self.churn_schedule = churn_schedule
        self.scenario = scenario if scenario is not None else FailureScenario(
            description="dynamic fault model"
        )
        self.transitions: List[FaultTransition] = []
        self.fault_intervals: Dict[int, List[List[Optional[float]]]] = {}
        # Per-link count of episodes currently holding the link faulty:
        # overlapping episodes (e.g. two switch outages sharing a link, or a
        # flap inside an outage) compose -- the link only heals when the last
        # holder releases it.
        self._active_holds: Dict[int, int] = {}

    # ------------------------------------------------------------- factories
    @classmethod
    def static(cls, topology: Topology, scenario: FailureScenario) -> "DynamicFaultModel":
        """A frozen model: the given scenario, active from t=0, no dynamics."""
        model = cls(topology, episodes=(), scenario=scenario)
        for link_id in scenario.bad_link_ids:
            model.fault_intervals[link_id] = [[0.0, None]]
        return model

    # ------------------------------------------------------------- installing
    def install(self, loop: EventLoop, horizon: float) -> None:
        """Schedule every episode's transitions on the loop."""
        self._loop = loop
        for episode in self.episodes:
            episode.install(self, loop, horizon)

    # ------------------------------------------------------------ transitions
    def activate(self, link_id: int, failure: LinkFailure, kind: str) -> None:
        """Turn a fault on at the loop's current instant.

        Episode holds on a link are counted: a second episode activating an
        already-faulty link overrides the drop behaviour (latest failure
        wins) but the link stays faulty until *every* holder deactivates.
        """
        now = self._now()
        self.scenario.add(failure)
        holds = self._active_holds.get(link_id, 0)
        self._active_holds[link_id] = holds + 1
        if holds == 0:  # the transitions log records actual state changes only
            self.transitions.append(FaultTransition(now, link_id, True, kind))
            tracing.record("fault.transition", link=link_id, faulty=True, kind=kind)
        intervals = self.fault_intervals.setdefault(link_id, [])
        if not intervals or intervals[-1][1] is not None:
            intervals.append([now, None])

    def deactivate(self, link_id: int, kind: str) -> None:
        """Release one episode's hold; the fault clears with the last hold."""
        now = self._now()
        holds = self._active_holds.get(link_id, 0)
        if holds == 0:
            return
        self._active_holds[link_id] = holds - 1
        if holds > 1:
            return  # another episode still holds the link down
        del self._active_holds[link_id]
        self.transitions.append(FaultTransition(now, link_id, False, kind))
        tracing.record("fault.transition", link=link_id, faulty=False, kind=kind)
        self.scenario.remove(link_id)
        intervals = self.fault_intervals.get(link_id)
        if intervals and intervals[-1][1] is None:
            intervals[-1][1] = now

    def _now(self) -> float:
        loop = getattr(self, "_loop", None)
        return loop.clock.now if loop is not None else 0.0

    # ------------------------------------------------------------------ views
    def active_fault_links(self) -> List[int]:
        """Links currently dropping packets, sorted."""
        return sorted(self.scenario.failures)

    def faulty_links_before(self, time: float) -> List[int]:
        """Links whose first fault interval started before ``time``."""
        return sorted(
            link
            for link, intervals in self.fault_intervals.items()
            if intervals and intervals[0][0] < time
        )

    def fault_start(self, link_id: int) -> Optional[float]:
        """When the link first became faulty (ground truth), if ever."""
        intervals = self.fault_intervals.get(link_id)
        return intervals[0][0] if intervals else None

    def churn_delta(self, cycle_index: int) -> Optional[TopologyDelta]:
        """The known-churn delta for a controller cycle, if a schedule exists."""
        if self.churn_schedule is None or cycle_index >= len(self.churn_schedule):
            return None
        return self.churn_schedule[cycle_index]
