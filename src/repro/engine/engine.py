"""The telemetry engine: monitoring as a discrete-event simulation.

:class:`TelemetryEngine` wires a :class:`~repro.monitor.DetectorSystem` into
the event loop:

* a :class:`~repro.engine.probes.ProbeScheduler` fires per-pinger probe
  batches at configurable rates with jitter,
* a :class:`~repro.engine.dynamics.DynamicFaultModel` evolves the live
  failure scenario (flaps, congestion, gray failures, switch outages),
* a :class:`~repro.engine.aggregator.StreamAggregator` folds the outcome
  stream into per-path/per-link window counters,
* every ``window_seconds`` a window-close event diagnoses the window
  (pre-processing + PLL) and updates detection bookkeeping,
* every ``cycle_seconds`` a controller-cycle event replays known churn into
  the watchdog and re-plans -- incrementally by default -- re-arming the
  scheduler and aggregator with the new probe matrix.

What the paper's static evaluation cannot measure falls out of the timeline:
**time-to-detection** (first window whose per-link loss counters show losses
crossing the faulty link) and **time-to-localization** (first window whose
diagnosis names it), per fault, per scenario.

The legacy snapshot pipeline is the one-tick special case
(:meth:`TelemetryEngine.run_snapshot_window`): a frozen clock, every pinger's
whole window fired in one event, one window close.
``DetectorSystem.run_window`` delegates to it, so the static path and the
timed path share one implementation.
"""

from __future__ import annotations

import math
import time as _wall
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..contracts import informational_fields, informational_wall
from ..core.costmodel import CostModel
from ..core.incidence import resolve_backend, shm_telemetry
from ..obs import Observability, WindowProfiler, tracing
from ..parallel import pool_telemetry, resolve_jobs
from ..simulation.rng import SeededStreams
from .aggregator import StreamAggregator, WindowReport
from .dynamics import DynamicFaultModel
from .loop import EventLoop, SimClock
from .probes import (
    PRIORITY_CYCLE,
    PRIORITY_PROBE,
    PRIORITY_WINDOW,
    ProbeScheduler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..monitor.diagnoser import DiagnosisReport
    from ..monitor.pinger import PingerReport
    from ..monitor.system import DetectorSystem

__all__ = [
    "EngineConfig",
    "DetectionRecord",
    "CycleRecord",
    "EngineWindow",
    "EngineResult",
    "ServedWindow",
    "SnapshotWindow",
    "TelemetryEngine",
]


@dataclass(frozen=True)
class EngineConfig:
    """Timing knobs of a telemetry engine run.

    Attributes
    ----------
    window_seconds:
        Aggregation-window length (30 s in the paper).
    cycle_seconds:
        Controller re-planning period (600 s in the paper).  Must be a
        multiple of ``window_seconds`` so cycles land on window boundaries.
    probes_per_second:
        Per-pinger probe rate; ``None`` uses each pinglist's own rate.
    probe_batch_seconds:
        Simulated time between a pinger's probe events; each event spends the
        budget accrued since the last one, so smaller batches mean finer
        probe timestamps at more event overhead.
    jitter_fraction:
        Each probe interval is scaled by ``1 + U(-j, +j)`` -- pingers drift
        apart instead of firing in lockstep.
    incremental_cycles:
        Run churn-aware incremental controller cycles (PR 2) instead of full
        rebuilds at each cycle boundary.
    run_controller_cycles:
        Disable to keep one probe matrix for the whole run (no cycle events).
    history_windows:
        Depth of the aggregator's sliding per-link loss history.
    batched_scheduling:
        Coalesce probe firings: the scheduler becomes the loop's batch source
        and drains every firing falling before the next regular event in one
        vectorized pass.  Byte-identical to per-event scheduling in every
        deterministic observable (tested differentially); off reproduces the
        one-heap-event-per-firing behaviour.
    aggregator_shards:
        Number of :class:`~repro.engine.aggregator.StreamAggregator` shards;
        paths are keyed by the pod of their source node when the topology
        has pods.  Window reports are invariant in this knob.
    coalesce_horizon_seconds:
        Cap on the simulated-time span one coalesced drain may cover (bounds
        the latency of serve-mode output against huge event-free gaps).
    bulk_batch_threshold:
        Minimum probe-batch rows in a drain before the columnar numpy
        expansion engages; smaller drains take the scalar loop, which is
        faster below roughly this many rows.
    """

    window_seconds: float = 30.0
    cycle_seconds: float = 600.0
    probes_per_second: Optional[float] = None
    probe_batch_seconds: float = 1.0
    jitter_fraction: float = 0.1
    incremental_cycles: bool = True
    run_controller_cycles: bool = True
    history_windows: int = 4
    batched_scheduling: bool = True
    aggregator_shards: int = 1
    coalesce_horizon_seconds: float = 10.0
    bulk_batch_threshold: int = 64

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.cycle_seconds <= 0:
            raise ValueError("cycle_seconds must be positive")
        ratio = self.cycle_seconds / self.window_seconds
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError(
                "cycle_seconds must be an integer multiple of window_seconds "
                f"(got {self.cycle_seconds} / {self.window_seconds})"
            )
        if self.probe_batch_seconds <= 0:
            raise ValueError("probe_batch_seconds must be positive")
        if self.history_windows < 0:
            raise ValueError("history_windows must be non-negative")
        if self.aggregator_shards < 1:
            raise ValueError("aggregator_shards must be at least 1")
        if self.coalesce_horizon_seconds <= 0:
            raise ValueError("coalesce_horizon_seconds must be positive")
        if self.bulk_batch_threshold < 0:
            raise ValueError("bulk_batch_threshold must be non-negative")


@dataclass
class DetectionRecord:
    """Latency bookkeeping for one ground-truth faulty link."""

    link_id: int
    fault_start: float
    first_loss_time: Optional[float] = None
    localized_time: Optional[float] = None

    @property
    def detected(self) -> bool:
        return self.first_loss_time is not None

    @property
    def localized(self) -> bool:
        return self.localized_time is not None

    @property
    def detection_latency(self) -> Optional[float]:
        """Fault start -> first window close whose counters show its losses."""
        if self.first_loss_time is None:
            return None
        return self.first_loss_time - self.fault_start

    @property
    def localization_latency(self) -> Optional[float]:
        """Fault start -> first window close whose diagnosis names the link."""
        if self.localized_time is None:
            return None
        return self.localized_time - self.fault_start


@informational_fields("wall_seconds")
@dataclass
class CycleRecord:
    """One controller-cycle event: when, how, and how long it took (wall).

    ``touched_shards`` mirrors
    :attr:`~repro.monitor.controller.ControllerCycle.touched_shards`: the pod
    shards PMC actually re-solved this cycle (``None`` when the controller
    runs unsharded).
    """

    time: float
    mode: str
    churn: int
    wall_seconds: float
    num_paths: int
    touched_shards: Optional[Tuple[int, ...]] = None


@dataclass
class EngineWindow:
    """One closed window plus its diagnosis."""

    report: WindowReport
    diagnosis: "DiagnosisReport"


@informational_fields("wall_seconds")
@dataclass
class EngineResult:
    """Timeline and aggregates of one engine run."""

    config: EngineConfig
    duration: float
    windows: List[EngineWindow]
    cycles: List[CycleRecord]
    detections: List[DetectionRecord]
    probes_sent: int
    probes_lost: int
    events_processed: int
    wall_seconds: float
    #: Deterministic work counters of the run (aggregation folds, window
    #: closes, probe batches): byte-identical across backends and machines
    #: for a fixed seed, unlike ``wall_seconds`` (informational only).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock spent in the streaming plane: total run wall minus the
    #: controller cycles' wall.  Cycle latency is a control-plane metric
    #: reported separately (``cycles[*].wall_seconds``); dividing probes by
    #: total wall would let one slow re-plan mask the probe path's speed.
    probe_wall_seconds: float = 0.0

    @property
    def probe_events_per_second(self) -> float:
        """Streaming-plane probe throughput: probes per wall-clock second
        spent outside controller cycles."""
        wall = self.probe_wall_seconds if self.probe_wall_seconds > 0 else self.wall_seconds
        return self.probes_sent / wall if wall > 0 else 0.0

    def detection_latencies(self) -> List[float]:
        return [r.detection_latency for r in self.detections if r.detected]

    def localization_latencies(self) -> List[float]:
        return [r.localization_latency for r in self.detections if r.localized]

    def undetected_links(self) -> List[int]:
        """Faulty links whose losses were never observed in any window."""
        return sorted(r.link_id for r in self.detections if not r.detected)

    def unlocalized_links(self) -> List[int]:
        """Faulty links no window's diagnosis ever named (detected or not)."""
        return sorted(r.link_id for r in self.detections if not r.localized)

    def summary(self) -> Dict[str, float]:
        localization = self.localization_latencies()
        detection = self.detection_latencies()
        return {
            "sim_seconds": self.duration,
            "windows": len(self.windows),
            "cycles": len(self.cycles),
            "probes_sent": self.probes_sent,
            "probes_lost": self.probes_lost,
            "events_processed": self.events_processed,
            "wall_seconds": round(self.wall_seconds, 4),
            "probe_wall_seconds": round(self.probe_wall_seconds, 4),
            "probe_events_per_second": round(self.probe_events_per_second, 1),
            "faults": len(self.detections),
            "faults_detected": sum(1 for r in self.detections if r.detected),
            "faults_localized": sum(1 for r in self.detections if r.localized),
            "mean_detection_latency": (
                round(sum(detection) / len(detection), 3) if detection else None
            ),
            "mean_localization_latency": (
                round(sum(localization) / len(localization), 3) if localization else None
            ),
        }


@informational_fields("wall_seconds", "control_wall_seconds")
@dataclass
class ServedWindow:
    """One window streamed out of :meth:`TelemetryEngine.serve`.

    Counters are *deltas* over this window's span (the serve loop's unit of
    backpressure accounting), not run totals.
    """

    window: EngineWindow
    probes_sent: int
    probes_lost: int
    rejected_events: int
    events_processed: int
    wall_seconds: float
    control_wall_seconds: float

    @property
    def report(self) -> WindowReport:
        return self.window.report

    @property
    def probe_events_per_second(self) -> float:
        """Streaming-plane throughput over this window.

        Guarded against degenerate wall clocks: a window with no probes is
        ``0.0`` regardless of timing, and a positive probe count over a zero
        or sub-resolution wall delta (coarse timers, replayed traces) is
        ``inf`` -- never a ``ZeroDivisionError``.
        """
        if self.probes_sent <= 0:
            return 0.0
        wall = self.wall_seconds - self.control_wall_seconds
        if wall <= 0.0:
            return float("inf")
        return self.probes_sent / wall

    @property
    def realtime_factor(self) -> float:
        """Simulated seconds served per wall second (>1 means ahead of
        real time; <1 means the serve loop is falling behind).

        Same guards as :attr:`probe_events_per_second`: an empty window is
        ``0.0``, simulated progress over a zero wall delta is ``inf``.
        """
        if self.report.duration <= 0.0:
            return 0.0
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.report.duration / self.wall_seconds


@dataclass
class SnapshotWindow:
    """Result of the one-tick (frozen clock) engine run behind ``run_window``.

    ``window`` is ``None`` when the caller opted out of the stream fold
    (``fold_stream=False``): the legacy pipeline only needs reports and the
    diagnosis, so it skips the aggregator's per-link counter kernels.
    """

    reports: List["PingerReport"]
    diagnosis: "DiagnosisReport"
    window: Optional[WindowReport]


class TelemetryEngine:
    """Drives a :class:`DetectorSystem` through simulated time."""

    def __init__(
        self,
        system: "DetectorSystem",
        fault_model: DynamicFaultModel,
        config: Optional[EngineConfig] = None,
        rng: Optional[np.random.Generator] = None,
        obs: Optional[Observability] = None,
    ):
        self.system = system
        self.model = fault_model
        self.config = config or EngineConfig()
        # Default randomness flows through SeededStreams like every explicit
        # caller's does (`streams.generator("probe-jitter")`), never through a
        # bare ``default_rng`` -- one ``--seed`` governs every draw.
        self._rng = rng if rng is not None else SeededStreams(0).generator("probe-jitter")
        self.cost = CostModel()
        self.loop = EventLoop()
        system.watchdog.clock = self.loop.clock
        # The probe simulator reads the model's live scenario on every probe.
        system.inject_failures(fault_model.scenario)
        self._aggregator: Optional[StreamAggregator] = None
        self._scheduler = ProbeScheduler(
            self.loop,
            self._rng,
            probes_per_second=self.config.probes_per_second,
            batch_seconds=self.config.probe_batch_seconds,
            jitter_fraction=self.config.jitter_fraction,
            coalesce=self.config.batched_scheduling,
            coalesce_horizon=self.config.coalesce_horizon_seconds,
            bulk_batch_threshold=self.config.bulk_batch_threshold,
        )
        self._scheduler.sink = self._record_outcome
        if self.config.batched_scheduling:
            self._scheduler.sink_batch = self._record_outcome_batch
        self._windows: List[EngineWindow] = []
        self._cycles: List[CycleRecord] = []
        self._records: Dict[int, DetectionRecord] = {}
        self._cycle_index = 0
        self._control_wall = 0.0
        # ------------------------------------------------- observability plane
        self.obs = obs if obs is not None else Observability.from_env()
        self.obs.bind_clock(self.loop.clock)
        # Kernel counters retired with each controller re-arm (the new probe
        # matrix carries a fresh incidence index) are folded in here so the
        # ``kernels`` source stays a run-total.
        self._kernel_totals = CostModel()
        registry = self.obs.registry
        registry.register_source("engine_cost", self.cost.as_dict)
        registry.register_source("scheduler", self._scheduler.telemetry)
        registry.register_source("loop", self.loop.telemetry)
        registry.register_source("kernels", self._kernel_source)
        registry.register_source(
            "scheduler_drains", self._scheduler.drain_telemetry, informational=True
        )
        # Dispatch-plane visibility (informational: spawn/reuse balance and
        # payload bytes vary with jobs, pool persistence and shm settings,
        # never with the workload's deterministic outcome).
        registry.register_source("dispatch_pool", pool_telemetry, informational=True)
        registry.register_source("shm_plane", shm_telemetry, informational=True)
        self._h_detection = registry.histogram(
            "detection_latency_seconds",
            help="fault start -> first window whose counters show the losses",
        )
        self._h_localization = registry.histogram(
            "localization_latency_seconds",
            help="fault start -> first window whose diagnosis names the link",
        )
        self._c_windows = registry.counter(
            "windows_closed", help="aggregation windows closed by the engine"
        )
        self._c_detected = registry.counter(
            "faults_detected", help="ground-truth faults whose losses were observed"
        )
        self._c_localized = registry.counter(
            "faults_localized", help="ground-truth faults a window diagnosis named"
        )
        self._c_cycles = registry.counter(
            "controller_cycles", help="controller-cycle events, labelled by mode"
        )
        self._g_cache = registry.gauge(
            "pmc_shard_cache_hit_ratio",
            help="fraction of pod shards replayed from cache in the last cycle",
        )
        self._g_rate = registry.gauge(
            "probe_events_per_second",
            help="streaming-plane probe throughput (wall clock; informational)",
            informational=True,
        )
        registry.gauge(
            "build_info", help="execution environment of this run", informational=True
        ).set(
            1,
            backend=resolve_backend().value,
            jobs=resolve_jobs(getattr(system.controller.config, "jobs", None)),
        )
        self._profiler = (
            WindowProfiler(self.obs.profile_path) if self.obs.profile_path else None
        )

    # --------------------------------------------------------------- plumbing
    def _record_outcome(self, path_index: int, time: float, sent: int, lost: int) -> None:
        self._aggregator.record(path_index, time, sent, lost)

    def _record_outcome_batch(self, paths, times, sent, lost) -> None:
        self._aggregator.record_batch(paths, times, sent, lost)

    def _kernel_source(self) -> Dict[str, int]:
        """Run-total backend-kernel counters, ``kernel_``-prefixed.

        Live counters of the current incidence index plus the totals retired
        by past controller re-arms; deterministic across backends and jobs
        (worker deltas are folded back into the parent index by the PMC pool
        dispatch).
        """
        totals = CostModel(self._kernel_totals.as_dict())
        if self._aggregator is not None:
            totals.merge(self._aggregator.incidence.counters.cost)
        return {f"kernel_{name}": count for name, count in totals.as_dict().items()}

    def _shard_assignment(self) -> Optional[List[int]]:
        """Pod-keyed shard of each probe path (source node's pod, when the
        topology has pods; round-robin otherwise)."""
        shards = self.config.aggregator_shards
        if shards <= 1:
            return None
        assignment: List[int] = []
        topology = self.system.topology
        for i, path in enumerate(self.system.probe_matrix.paths):
            node = topology.node(path.src)
            pod = getattr(node, "pod", None)
            assignment.append(int(pod) % shards if pod is not None else i % shards)
        return assignment

    def _rearm(self) -> None:
        """Point scheduler + aggregator at the current controller cycle."""
        if (
            self._aggregator is not None
            and self._aggregator.incidence is not self.system.probe_matrix.incidence
        ):
            # The outgoing cycle's incidence index retires with its kernel
            # counters; fold them into the run totals (identity-guarded so a
            # replayed probe matrix is never double-counted).
            self._kernel_totals.merge(self._aggregator.incidence.counters.cost)
        if self.config.batched_scheduling:
            # The bulk probing kernel needs the path table primed up front.
            self.system.simulator.prime_paths(self.system.probe_matrix.paths)
        self._aggregator = StreamAggregator(
            self.system.probe_matrix.incidence,
            self.config.window_seconds,
            start_time=self.loop.clock.now,
            history_windows=self.config.history_windows,
            cost=self.cost,  # counters accumulate across controller re-arms
            num_shards=self.config.aggregator_shards,
            shard_of_path=self._shard_assignment(),
        )
        self._scheduler.set_pingers(self.system.build_pingers())

    # ----------------------------------------------------------------- events
    def _close_window(self, end_time: Optional[float] = None) -> None:
        aggregator = self._aggregator
        # The span is opened at close time but backdated to the window's open,
        # so its extent covers the simulated interval the window aggregated.
        with tracing.span(
            "engine.window",
            start=aggregator.window_start,
            index=aggregator.window_index,
        ):
            report = aggregator.close_window(end_time)
            with tracing.span("pll.diagnose", window=report.index):
                diagnosis = self.system.diagnoser.diagnose(
                    report.observations, report.probes_sent
                )
        self._windows.append(EngineWindow(report=report, diagnosis=diagnosis))
        self._c_windows.inc()
        self._update_detections(report, diagnosis)
        if self._profiler is not None:
            self._profiler.dump()  # the profile brackets exactly one window

    def _update_detections(self, report: WindowReport, diagnosis: "DiagnosisReport") -> None:
        # Ground truth: every link whose first fault interval opened before
        # this window's end gets a record the first time we see it.
        for link_id in self.model.faulty_links_before(report.end):
            if link_id not in self._records:
                self._records[link_id] = DetectionRecord(
                    link_id=link_id, fault_start=self.model.fault_start(link_id)
                )
        index = self._aggregator.incidence
        suspected = set(diagnosis.suspected_links)
        for record in self._records.values():
            if record.first_loss_time is None and index.contains_link(record.link_id):
                position = index.position(record.link_id)
                if report.link_lost[position] > 0:
                    record.first_loss_time = report.end
                    self._observe_detection(record)
            if record.localized_time is None and record.link_id in suspected:
                record.localized_time = report.end
                if record.first_loss_time is None:
                    # Localization implies its losses were observed this window.
                    record.first_loss_time = report.end
                    self._observe_detection(record)
                self._c_localized.inc()
                self._h_localization.observe(record.localization_latency)

    def _observe_detection(self, record: DetectionRecord) -> None:
        self._c_detected.inc()
        self._h_detection.observe(record.detection_latency)

    @informational_wall("CycleRecord.wall_seconds is informational; cycle gates use counters")
    def _run_controller_cycle(self) -> None:
        self._cycle_index += 1
        with tracing.span("controller.cycle", index=self._cycle_index) as cycle_span:
            delta = self.model.churn_delta(self._cycle_index - 1)
            if delta is not None:
                self.system.watchdog.apply_delta(delta)
            started = _wall.perf_counter()
            cycle = self.system.run_controller_cycle(
                incremental=self.config.incremental_cycles
            )
            wall = _wall.perf_counter() - started
            if cycle_span is not None:
                cycle_span.labels.update(
                    mode=cycle.mode, paths=cycle.probe_matrix.num_paths
                )
                cycle_span.wall_seconds = wall
        self._control_wall += wall
        self._cycles.append(
            CycleRecord(
                time=self.loop.clock.now,
                mode=cycle.mode,
                churn=cycle.delta.churn if cycle.delta is not None else 0,
                wall_seconds=wall,
                num_paths=cycle.probe_matrix.num_paths,
                touched_shards=cycle.touched_shards,
            )
        )
        self._observe_cycle(cycle)
        self._rearm()

    def _observe_cycle(self, cycle) -> None:
        """Fold one controller cycle's control-plane work into the registry."""
        registry = self.obs.registry
        self._c_cycles.inc(mode=cycle.mode)
        for name, count in cycle.pmc_result.stats.cost_counters().items():
            registry.counter(f"pmc_{name}").inc(count)
        shards = cycle.pmc_result.shards
        if shards:
            reused = sum(1 for shard in shards if shard.reused)
            registry.counter("pmc_shards_reused").inc(reused)
            registry.counter("pmc_shards_solved").inc(len(shards) - reused)
            self._g_cache.set(reused / len(shards))

    # -------------------------------------------------------------------- run
    def run(self, duration: float) -> EngineResult:
        """Simulate ``duration`` seconds of monitoring; returns the timeline."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        with tracing.activated(self.obs.tracer):
            return self._run(duration)

    @informational_wall("EngineResult wall fields are informational; gates use EngineResult.counters")
    def _run(self, duration: float) -> EngineResult:
        config = self.config
        if self.system.cycle is None or self.system.diagnoser is None:
            self.system.run_controller_cycle(incremental=config.incremental_cycles)
        start = self.loop.clock.now
        horizon = start + duration
        self._rearm()
        self.model.install(self.loop, horizon)

        # Window closes on the fixed grid; a trailing partial window (when the
        # horizon is not a multiple of the window) closes at the horizon.
        num_windows = int(math.floor(duration / config.window_seconds + 1e-9))
        for k in range(1, num_windows + 1):
            self.loop.schedule_at(
                start + k * config.window_seconds, self._close_window, PRIORITY_WINDOW
            )
        trailing = duration - num_windows * config.window_seconds
        if trailing > 1e-9:
            self.loop.schedule_at(
                horizon, lambda: self._close_window(horizon), PRIORITY_WINDOW
            )

        if config.run_controller_cycles:
            cycles = int(math.floor(duration / config.cycle_seconds + 1e-9))
            for k in range(1, cycles + 1):
                at = start + k * config.cycle_seconds
                if at >= horizon:  # a cycle exactly at the horizon plans nothing
                    break
                self.loop.schedule_at(at, self._run_controller_cycle, PRIORITY_CYCLE)

        control_before = self._control_wall
        if self._profiler is not None:
            self._profiler.arm()
        wall_started = _wall.perf_counter()
        self.loop.run_until(horizon)
        wall = _wall.perf_counter() - wall_started
        control = self._control_wall - control_before
        return self.build_result(duration, wall, max(wall - control, 0.0))

    def build_result(
        self, duration: float, wall_seconds: float, probe_wall_seconds: float = 0.0
    ) -> EngineResult:
        """Snapshot the engine's timeline into an :class:`EngineResult`
        (shared by :meth:`run` and serve-mode callers)."""
        counters = CostModel(self.cost.as_dict())
        counters.add("probe_batches_fired", self._scheduler.batches_fired)
        counters.add("probes_sent", self._scheduler.probes_sent)
        counters.add("probes_lost", self._scheduler.probes_lost)
        counters.add("events_processed", self.loop.events_processed)
        if wall_seconds > 0:
            self._g_rate.set(
                self._scheduler.probes_sent
                / (probe_wall_seconds if probe_wall_seconds > 0 else wall_seconds)
            )
        return EngineResult(
            config=self.config,
            duration=duration,
            windows=list(self._windows),
            cycles=list(self._cycles),
            detections=sorted(self._records.values(), key=lambda r: (r.fault_start, r.link_id)),
            probes_sent=self._scheduler.probes_sent,
            probes_lost=self._scheduler.probes_lost,
            events_processed=self.loop.events_processed,
            wall_seconds=wall_seconds,
            counters=counters.as_dict(),
            probe_wall_seconds=probe_wall_seconds,
        )

    # ------------------------------------------------------------------ serve
    def serve(
        self,
        max_windows: Optional[int] = None,
        duration: Optional[float] = None,
    ):
        """Stream closed windows as they happen (the long-running serve mode).

        A generator of :class:`ServedWindow`: each ``next()`` advances
        simulated time to the next window boundary -- probes, fault
        transitions, and controller cycles all fire on the way, exactly as in
        :meth:`run` -- and yields that window plus its per-window
        backpressure deltas (probes folded, events rejected as late, wall
        spent).  With neither bound the stream is indefinite: windows keep
        closing until the consumer stops iterating.  ``duration`` bounds the
        simulated horizon (a trailing partial window closes there, matching
        :meth:`run`); ``max_windows`` bounds the number of windows yielded.
        """
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        if max_windows is not None and max_windows < 1:
            raise ValueError("max_windows must be at least 1")
        config = self.config
        # Setup runs under the tracer (the bootstrap cycle emits PMC spans);
        # the activation is NOT held across yields -- each window re-activates
        # in _serve_one, so a suspended serve loop never leaks its tracer.
        with tracing.activated(self.obs.tracer):
            if self.system.cycle is None or self.system.diagnoser is None:
                self.system.run_controller_cycle(incremental=config.incremental_cycles)
            start = self.loop.clock.now
            horizon = None if duration is None else start + duration
            self._rearm()
            self.model.install(self.loop, math.inf if horizon is None else horizon)

            if config.run_controller_cycles:
                # Cycles self-reschedule one ahead on the same fixed grid as
                # run() (identical float arithmetic, so identical timestamps).
                def schedule_cycle(k: int) -> None:
                    at = start + k * config.cycle_seconds
                    if horizon is not None and at >= horizon:
                        return

                    def fire() -> None:
                        self._run_controller_cycle()
                        schedule_cycle(k + 1)

                    self.loop.schedule_at(at, fire, PRIORITY_CYCLE)

                schedule_cycle(1)

        num_windows = None
        trailing = False
        if duration is not None:
            num_windows = int(math.floor(duration / config.window_seconds + 1e-9))
            trailing = duration - num_windows * config.window_seconds > 1e-9

        served = 0
        k = 1
        while max_windows is None or served < max_windows:
            if num_windows is not None and k > num_windows:
                if trailing:
                    yield self._serve_one(horizon, partial=True)
                break
            yield self._serve_one(start + k * config.window_seconds)
            served += 1
            k += 1

    @informational_wall("ServedWindow wall/backpressure stats are informational")
    def _serve_one(self, target: float, partial: bool = False) -> ServedWindow:
        probes_before = self._scheduler.probes_sent
        lost_before = self._scheduler.probes_lost
        events_before = self.loop.events_processed
        # The shared cost model survives controller re-arms; the aggregator's
        # own total does not (a mid-window cycle replaces the aggregator).
        rejected_before = self.cost.get("aggregator_events_rejected")
        control_before = self._control_wall
        if partial:
            self.loop.schedule_at(
                target, lambda: self._close_window(target), PRIORITY_WINDOW
            )
        else:
            self.loop.schedule_at(target, self._close_window, PRIORITY_WINDOW)
        if self._profiler is not None:
            self._profiler.arm()
        started = _wall.perf_counter()
        with tracing.activated(self.obs.tracer):
            self.loop.run_until(target)
        wall = _wall.perf_counter() - started
        served = ServedWindow(
            window=self._windows[-1],
            probes_sent=self._scheduler.probes_sent - probes_before,
            probes_lost=self._scheduler.probes_lost - lost_before,
            rejected_events=self.cost.get("aggregator_events_rejected") - rejected_before,
            events_processed=self.loop.events_processed - events_before,
            wall_seconds=wall,
            control_wall_seconds=self._control_wall - control_before,
        )
        rate = served.probe_events_per_second
        if math.isfinite(rate):  # keep the informational export strict JSON
            self._g_rate.set(rate)
        return served

    # ------------------------------------------------------------- snapshot
    @classmethod
    def run_snapshot_window(
        cls,
        system: "DetectorSystem",
        window_seconds: Optional[float] = None,
        fold_stream: bool = True,
    ) -> SnapshotWindow:
        """The legacy static pipeline as a one-tick engine run.

        A frozen clock, one probe event firing every healthy pinger's whole
        window budget (in pinglist order, through the same scalar probing loop
        the pre-engine code used, so random draws are consumed identically),
        and one window-close event running the diagnoser.  This *is* the
        implementation of ``DetectorSystem.run_window``; the timed engine is
        the same dataflow with real intervals between the events.

        ``fold_stream=False`` skips the aggregator fold (and its per-link
        counter kernels) when the caller only needs reports + diagnosis.
        """
        clock = SimClock(0.0)
        clock.freeze()
        loop = EventLoop(clock)
        window = window_seconds or system.controller.config.report_interval_seconds
        aggregator = (
            StreamAggregator(
                system.probe_matrix.incidence, window_seconds=window, start_time=0.0
            )
            if fold_stream
            else None
        )
        reports: List["PingerReport"] = []
        state: Dict[str, object] = {"window": None}

        def probe_event() -> None:
            for report in system.iter_pinger_reports():
                reports.append(report)
                if aggregator is not None:
                    aggregator.ingest_report(report, 0.0)
                system.diagnoser.ingest(report)

        def close_event() -> None:
            if aggregator is not None:
                state["window"] = aggregator.close_window(0.0)
            state["diagnosis"] = system.diagnoser.run_window()

        loop.schedule_at(0.0, probe_event, PRIORITY_PROBE)
        loop.schedule_at(0.0, close_event, PRIORITY_PROBE + 1)
        loop.run()
        return SnapshotWindow(
            reports=reports, diagnosis=state["diagnosis"], window=state["window"]
        )
