"""Simulated time and the binary-heap event loop.

The paper's monitoring system is inherently temporal: pingers probe
continuously, the diagnoser closes a 30-second aggregation window, the
controller re-plans every 10 minutes.  :class:`SimClock` carries the current
simulated time and :class:`EventLoop` orders callbacks on a binary heap keyed
by ``(time, priority, sequence)`` -- the sequence counter makes processing
order fully deterministic, which is what lets a seeded engine run reproduce
byte-identical detection timelines.

A *frozen* clock turns the loop into a zero-duration executor: events may be
scheduled and run at the current instant but any attempt to advance time
raises.  The legacy snapshot pipeline (``DetectorSystem.run_window``) runs as
exactly that -- a one-tick engine run on a frozen clock.

Two throughput features serve the streaming engine:

* :meth:`EventLoop.schedule_every` installs a *recurring* event backed by one
  persistent callable (no per-firing closure allocation); the callback stops
  the recurrence by returning ``False`` and :meth:`RecurringEvent.cancel`
  stops it from outside.
* a *batch source* (:meth:`EventLoop.set_batch_source`) is a coalescing timer
  tier for homogeneous high-rate events (the probe streams).  The loop asks
  it for its next due time and, whenever that precedes every regular heap
  event, lets it drain **all** firings due before the next regular event in
  one vectorized pass instead of N heap pops + N callbacks.  Because every
  regular engine event (fault transition, window close, controller cycle)
  outranks probes at equal timestamps, draining strictly up to the next
  regular event preserves the ``(time, priority, sequence)`` ordering
  contract exactly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Protocol, Union

__all__ = ["SimClock", "EventHandle", "RecurringEvent", "BatchEventSource", "EventLoop"]


class SimClock:
    """Monotonic simulated time, optionally frozen at the current instant."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._frozen = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Pin the clock: advancing past the current instant becomes an error."""
        self._frozen = True

    def advance(self, to: float) -> None:
        if to < self._now:
            raise ValueError(f"cannot rewind simulated time from {self._now} to {to}")
        if self._frozen and to > self._now:
            raise RuntimeError(
                f"frozen clock cannot advance from {self._now} to {to}; "
                "snapshot runs must schedule every event at the current instant"
            )
        self._now = to


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("time", "priority", "_cancelled", "_loop")

    def __init__(self, time: float, priority: int, loop: Optional["EventLoop"] = None):
        self.time = time
        self.priority = priority
        self._cancelled = False
        self._loop = loop

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        if self._loop is not None:
            self._loop._note_cancelled()


class RecurringEvent:
    """Handle for a :meth:`EventLoop.schedule_every` recurrence.

    One instance -- and one bound ``_fire`` callable -- serves every firing of
    the recurrence; nothing is allocated per firing.  The recurrence ends when
    the callback returns ``False`` or :meth:`cancel` is called.
    """

    __slots__ = ("_loop", "_interval", "_callback", "_priority", "_handle", "_stopped")

    def __init__(
        self,
        loop: "EventLoop",
        interval: Union[float, Callable[[], float]],
        callback: Callable[[], object],
        priority: int,
    ):
        self._loop = loop
        self._interval = interval
        self._callback = callback
        self._priority = priority
        self._handle: Optional[EventHandle] = None
        self._stopped = False

    @property
    def active(self) -> bool:
        return not self._stopped

    def cancel(self) -> None:
        """Stop the recurrence; the pending firing (if any) is dropped."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        interval = self._interval
        return float(interval()) if callable(interval) else float(interval)

    def _fire(self) -> None:
        if self._stopped:
            return
        if self._callback() is False:
            self._stopped = True
            self._handle = None
            return
        self._handle = self._loop.schedule_at(
            self._loop.clock.now + self._next_delay(), self._fire, self._priority
        )


class BatchEventSource(Protocol):
    """A coalescing tier of homogeneous timed events (duck-typed protocol).

    ``next_time()`` returns the earliest pending firing time (``None`` when
    idle); ``drain(until, strict=..., limit=...)`` processes every firing with
    time ``< until`` (``<= until`` when ``strict`` is false), advancing the
    loop's clock and ``events_processed`` itself, and returns the number of
    logical firings processed.
    """

    def next_time(self) -> Optional[float]:  # pragma: no cover - protocol
        ...

    def drain(
        self, until: float, strict: bool = False, limit: Optional[int] = None
    ) -> int:  # pragma: no cover - protocol
        ...


class EventLoop:
    """Deterministic discrete-event scheduler over a :class:`SimClock`.

    Events due at the same simulated time run in ascending ``priority`` order
    (fault transitions before window closes before probe batches, by the
    engine's convention) and, within a priority, in scheduling order.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: List[tuple] = []
        self._sequence = itertools.count()
        self._cancelled = 0
        self._batch_source: Optional[BatchEventSource] = None
        self.events_processed = 0

    # -------------------------------------------------------------- schedule
    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule an event at {time} before the current time {self.clock.now}"
            )
        handle = EventHandle(time, priority, self)
        heapq.heappush(self._heap, (time, priority, next(self._sequence), handle, callback))
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.clock.now + delay, callback, priority)

    def schedule_every(
        self,
        interval: Union[float, Callable[[], float]],
        callback: Callable[[], object],
        priority: int = 0,
        first_delay: Optional[float] = None,
    ) -> RecurringEvent:
        """Schedule ``callback`` repeatedly, ``interval`` seconds apart.

        ``interval`` may be a number or a zero-argument callable drawn after
        each firing (jittered recurrences).  ``first_delay`` overrides the
        delay to the first firing (default: one interval).  The callback stops
        the recurrence by returning ``False``; one persistent callable backs
        every firing, so recurring events allocate nothing per firing.
        """
        recurring = RecurringEvent(self, interval, callback, priority)
        delay = first_delay if first_delay is not None else recurring._next_delay()
        if delay < 0:
            raise ValueError("delay must be non-negative")
        recurring._handle = self.schedule_at(self.clock.now + delay, recurring._fire, priority)
        return recurring

    # ------------------------------------------------------------------ state
    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap.

        O(1): a live counter tracks cancellations instead of scanning the
        heap on every call.
        """
        return len(self._heap) - self._cancelled

    def telemetry(self) -> dict:
        """Loop counters for a metrics-registry source.

        ``loop_events_processed`` is deterministic (pinned across backends by
        the streaming differential tests); ``loop_pending_events`` reflects
        heap occupancy at snapshot time, which is also deterministic because
        snapshots are taken at window boundaries of the sim timeline.
        """
        return {
            "loop_events_processed": self.events_processed,
            "loop_pending_events": self.pending,
        }

    def next_event_time(self) -> Optional[float]:
        self._drop_cancelled()
        regular = self._heap[0][0] if self._heap else None
        if self._batch_source is not None:
            batch = self._batch_source.next_time()
            if batch is not None and (regular is None or batch < regular):
                return batch
        return regular

    def set_batch_source(self, source: Optional[BatchEventSource]) -> None:
        """Install (or clear) the loop's coalescing batch-event tier."""
        self._batch_source = source

    def _note_cancelled(self) -> None:
        # Eagerly compact once cancelled entries outnumber live ones: the
        # generation-invalidated probe streams of each controller cycle must
        # not linger in the heap until their (far-future) times surface.
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap):
            self._heap = [entry for entry in self._heap if not entry[3].cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1

    # -------------------------------------------------------------------- run
    def step(self) -> bool:
        """Run the next event; returns ``False`` when nothing is pending.

        When the batch source's next firing precedes every regular event it
        is drained one logical firing at a time, so single-stepping remains
        exact under coalescing.
        """
        self._drop_cancelled()
        regular = self._heap[0][0] if self._heap else None
        if self._batch_source is not None:
            batch = self._batch_source.next_time()
            if batch is not None and (regular is None or batch < regular):
                return self._batch_source.drain(batch, strict=False, limit=1) > 0
        if not self._heap:
            return False
        time, _, _, handle, callback = heapq.heappop(self._heap)
        handle._loop = None  # a later cancel() must not desync the counter
        self.clock.advance(time)
        self.events_processed += 1
        callback()
        return True

    def run_until(self, deadline: float) -> int:
        """Run every event due at or before ``deadline``; returns events run.

        The clock is left at ``deadline`` (or its starting point, if later)
        even when the last event fired earlier, so back-to-back ``run_until``
        calls partition simulated time cleanly.

        With a batch source installed, all of its firings falling strictly
        before the next regular heap event are drained in one pass.  The
        strict bound is what keeps coalescing exact: probe firings at the
        *same* timestamp as a fault transition / window close / controller
        cycle must run after it (higher priority value), against the state
        that event installs.
        """
        processed = 0
        source = self._batch_source
        while True:
            self._drop_cancelled()
            regular = self._heap[0][0] if self._heap else None
            if source is not None:
                batch = source.next_time()
                if (
                    batch is not None
                    and batch <= deadline
                    and (regular is None or batch < regular)
                ):
                    if regular is None or regular > deadline:
                        processed += source.drain(deadline, strict=False)
                    else:
                        processed += source.drain(regular, strict=True)
                    continue
            if regular is None or regular > deadline:
                break
            time, _, _, handle, callback = heapq.heappop(self._heap)
            handle._loop = None  # a later cancel() must not desync the counter
            self.clock.advance(time)
            self.events_processed += 1
            callback()
            processed += 1
        if deadline > self.clock.now:
            self.clock.advance(deadline)
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the heap (bounded by ``max_events`` when given)."""
        processed = 0
        while (max_events is None or processed < max_events) and self.step():
            processed += 1
        return processed
