"""Simulated time and the binary-heap event loop.

The paper's monitoring system is inherently temporal: pingers probe
continuously, the diagnoser closes a 30-second aggregation window, the
controller re-plans every 10 minutes.  :class:`SimClock` carries the current
simulated time and :class:`EventLoop` orders callbacks on a binary heap keyed
by ``(time, priority, sequence)`` -- the sequence counter makes processing
order fully deterministic, which is what lets a seeded engine run reproduce
byte-identical detection timelines.

A *frozen* clock turns the loop into a zero-duration executor: events may be
scheduled and run at the current instant but any attempt to advance time
raises.  The legacy snapshot pipeline (``DetectorSystem.run_window``) runs as
exactly that -- a one-tick engine run on a frozen clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

__all__ = ["SimClock", "EventHandle", "EventLoop"]


class SimClock:
    """Monotonic simulated time, optionally frozen at the current instant."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._frozen = False

    @property
    def now(self) -> float:
        return self._now

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Pin the clock: advancing past the current instant becomes an error."""
        self._frozen = True

    def advance(self, to: float) -> None:
        if to < self._now:
            raise ValueError(f"cannot rewind simulated time from {self._now} to {to}")
        if self._frozen and to > self._now:
            raise RuntimeError(
                f"frozen clock cannot advance from {self._now} to {to}; "
                "snapshot runs must schedule every event at the current instant"
            )
        self._now = to


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("time", "priority", "_cancelled")

    def __init__(self, time: float, priority: int):
        self.time = time
        self.priority = priority
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True


class EventLoop:
    """Deterministic discrete-event scheduler over a :class:`SimClock`.

    Events due at the same simulated time run in ascending ``priority`` order
    (fault transitions before window closes before probe batches, by the
    engine's convention) and, within a priority, in scheduling order.
    """

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: List[tuple] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    # -------------------------------------------------------------- schedule
    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule an event at {time} before the current time {self.clock.now}"
            )
        handle = EventHandle(time, priority)
        heapq.heappush(self._heap, (time, priority, next(self._sequence), handle, callback))
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.clock.now + delay, callback, priority)

    # ------------------------------------------------------------------ state
    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap."""
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    def next_event_time(self) -> Optional[float]:
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)

    # -------------------------------------------------------------------- run
    def step(self) -> bool:
        """Run the next event; returns ``False`` when the heap is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        time, _, _, _, callback = heapq.heappop(self._heap)
        self.clock.advance(time)
        self.events_processed += 1
        callback()
        return True

    def run_until(self, deadline: float) -> int:
        """Run every event due at or before ``deadline``; returns events run.

        The clock is left at ``deadline`` (or its starting point, if later)
        even when the last event fired earlier, so back-to-back ``run_until``
        calls partition simulated time cleanly.
        """
        processed = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0][0] > deadline:
                break
            self.step()
            processed += 1
        if deadline > self.clock.now:
            self.clock.advance(deadline)
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the heap (bounded by ``max_events`` when given)."""
        processed = 0
        while (max_events is None or processed < max_events) and self.step():
            processed += 1
        return processed
