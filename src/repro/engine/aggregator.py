"""Sliding-window aggregation of probe outcome streams.

The diagnoser of §3.1 consumes 30-second aggregation windows; under the
discrete-event engine those windows are no longer "whatever one call to
``Pinger.run_window`` produced" but a *stream* of timestamped probe batches
arriving from many pingers.  :class:`StreamAggregator` folds that stream into
flat per-path counters and, through the vectorized
:class:`~repro.core.incidence.IncidenceIndex` kernels, into per-link
sent/lost/lossy-path counters -- the quantities detection latency is defined
over.

Window semantics:

* events are *tumbling-window* bucketed: an event belongs to the window whose
  ``[start, start + window_seconds)`` interval contains its timestamp;
* late events (timestamp before the open window's start) are **rejected** and
  counted -- a pinger report delayed past its window must not corrupt a later
  one (§5.1 discards such data during pre-processing);
* events timestamped at or past the open window's end are an engine ordering
  bug and raise: the engine closes windows before delivering later probes;
* :meth:`close_window` emits a :class:`WindowReport` (observations plus
  per-link counter snapshots) and opens the next window;
* an optional ``history_windows``-deep deque of per-link lost counters
  provides *sliding* multi-window loss counts
  (:meth:`sliding_link_loss_counts`) for trend detectors.

On a frozen clock with every event at the window start, one fold plus one
:meth:`close_window` reproduces the merged observation set of the legacy
snapshot path exactly (tested in ``tests/test_engine.py``).

**Sharding.**  With ``num_shards > 1`` the open window's per-path counters
are split across shards (the serve-mode analogue of running one aggregator
per pod): each accepted event folds into the shard owning its path, and the
shards merge deterministically -- in shard order ``0..N-1`` -- when the
window closes.  Because the per-path counters are plain integer sums and
the per-link kernels run exactly once on the *merged* arrays, every window
report, observation set, and kernel-invocation counter is invariant in the
shard count (tested in ``tests/test_engine_streaming.py``).
:meth:`record_batch` folds whole columnar outcome batches from the
coalescing probe tier with the same acceptance semantics and cost-counter
totals as the equivalent sequence of :meth:`record` calls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..core.costmodel import CostModel
from ..core.incidence import Backend, IncidenceIndex
from ..localization import ObservationSet
from ..obs import tracing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (monitor imports engine)
    from ..monitor.pinger import PingerReport

__all__ = ["WindowReport", "StreamAggregator"]


@dataclass
class WindowReport:
    """Everything one closed aggregation window produced.

    Per-link vectors are positional over ``link_ids`` (the incidence
    universe): ``link_sent[i]`` / ``link_lost[i]`` count probes through link
    ``link_ids[i]``, ``link_lossy_paths[i]`` the distinct lossy paths crossing
    it.
    """

    index: int
    start: float
    end: float
    observations: ObservationSet
    probes_sent: int
    probes_lost: int
    rejected_events: int
    link_ids: Sequence[int]
    link_sent: Sequence[int]
    link_lost: Sequence[int]
    link_lossy_paths: Sequence[int]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def loss_rate(self) -> float:
        return self.probes_lost / self.probes_sent if self.probes_sent else 0.0

    def lossy_links(self) -> List[int]:
        """Links crossed by at least one lossy path this window."""
        return [
            link
            for link, lossy in zip(self.link_ids, self.link_lossy_paths)
            if lossy > 0
        ]


class StreamAggregator:
    """Folds timestamped probe outcomes into per-path and per-link counters."""

    def __init__(
        self,
        incidence: IncidenceIndex,
        window_seconds: float,
        start_time: float = 0.0,
        history_windows: int = 0,
        cost: Optional[CostModel] = None,
        num_shards: int = 1,
        shard_of_path: Optional[Sequence[int]] = None,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if history_windows < 0:
            raise ValueError("history_windows must be non-negative")
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        # Deterministic work counters (events folded/rejected, windows
        # closed, probes aggregated).  A caller-supplied model keeps
        # accumulating across aggregator rollovers -- the telemetry engine
        # passes its own so one run's counters survive controller re-arms.
        self.cost = cost if cost is not None else CostModel()
        self._index = incidence
        self._kernels = incidence.kernels
        self.window_seconds = float(window_seconds)
        self.num_shards = num_shards
        if num_shards > 1:
            if shard_of_path is None:
                # Default assignment: contiguous round-robin over paths.
                shard_of_path = [i % num_shards for i in range(incidence.num_paths)]
            if len(shard_of_path) != incidence.num_paths:
                raise ValueError("shard_of_path must assign every path a shard")
            self._shard_of = np.asarray(shard_of_path, dtype=np.int64)
            if len(self._shard_of) and (
                int(self._shard_of.min()) < 0 or int(self._shard_of.max()) >= num_shards
            ):
                raise ValueError("shard_of_path values must lie in [0, num_shards)")
        else:
            self._shard_of = None
        self._window_index = 0
        self._window_start = float(start_time)
        self._shard_sent: List = []
        self._shard_lost: List = []
        self._reset_counters()
        self._probes_sent = 0
        self._probes_lost = 0
        self._rejected = 0
        self.total_rejected = 0
        self._history: Deque[Sequence[int]] = deque(maxlen=history_windows or None)
        self._history_windows = history_windows

    def _reset_counters(self) -> None:
        self._shard_sent = [
            self._kernels.int_zeros(self._index.num_paths) for _ in range(self.num_shards)
        ]
        self._shard_lost = [
            self._kernels.int_zeros(self._index.num_paths) for _ in range(self.num_shards)
        ]

    # Deterministic shard merge: integer sums folded in shard order 0..N-1.
    # With one shard this is the shard array itself (no copy).
    def _merged(self, shards: List):
        if self.num_shards == 1:
            return shards[0]
        if self._index.backend is Backend.NUMPY:
            total = shards[0].copy()
            for arr in shards[1:]:
                total += arr
            return total
        total = list(shards[0])
        for arr in shards[1:]:
            for i, value in enumerate(arr):
                total[i] += value
        return total

    def _merged_sent(self):
        return self._merged(self._shard_sent)

    def _merged_lost(self):
        return self._merged(self._shard_lost)

    # ------------------------------------------------------------------ state
    @property
    def incidence(self) -> IncidenceIndex:
        return self._index

    @property
    def window_index(self) -> int:
        return self._window_index

    @property
    def window_start(self) -> float:
        return self._window_start

    @property
    def window_end(self) -> float:
        return self._window_start + self.window_seconds

    @property
    def open_probes_sent(self) -> int:
        """Probes folded into the currently open window so far."""
        return self._probes_sent

    # ----------------------------------------------------------------- folding
    def record(self, path_index: int, time: float, sent: int = 1, lost: int = 0) -> bool:
        """Fold one probe outcome batch; returns ``False`` when rejected.

        ``time`` is the outcome's timestamp.  Late events (before the open
        window) are rejected and counted; events past the window's end raise,
        because the engine guarantees window-close events run first.
        """
        if time < self._window_start:
            self._rejected += 1
            self.total_rejected += 1
            self.cost.add("aggregator_events_rejected")
            return False
        if time >= self.window_end:
            raise ValueError(
                f"event at t={time} belongs to a later window than "
                f"[{self._window_start}, {self.window_end}); close the window first"
            )
        if not 0 <= path_index < self._index.num_paths:
            raise IndexError(f"path index {path_index} outside the probe matrix")
        if lost > sent:
            raise ValueError("lost exceeds sent")
        shard = 0 if self._shard_of is None else int(self._shard_of[path_index])
        self._shard_sent[shard][path_index] += sent
        self._shard_lost[shard][path_index] += lost
        self._probes_sent += sent
        self._probes_lost += lost
        self.cost.add("aggregator_events_accepted")
        self.cost.add("aggregator_probes_folded", sent)
        return True

    def record_batch(self, path_indices, times, sent, lost) -> int:
        """Fold a columnar batch of probe outcomes; returns events accepted.

        Semantically identical to calling :meth:`record` once per row (same
        acceptance/rejection decisions, same raised errors, same cost-counter
        totals), but the accepted rows fold into the shard counters as
        ``bincount`` scatter-adds.  On the pure-python backend the batch
        simply loops the scalar path.
        """
        n = len(path_indices)
        if n == 0:
            return 0
        if self._index.backend is not Backend.NUMPY:
            accepted = 0
            for i in range(n):
                if self.record(
                    int(path_indices[i]), float(times[i]), int(sent[i]), int(lost[i])
                ):
                    accepted += 1
            return accepted
        path_indices = np.asarray(path_indices, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        sent = np.asarray(sent, dtype=np.int64)
        lost = np.asarray(lost, dtype=np.int64)
        future = times >= self.window_end
        if future.any():
            bad = float(times[future][0])
            raise ValueError(
                f"event at t={bad} belongs to a later window than "
                f"[{self._window_start}, {self.window_end}); close the window first"
            )
        num_paths = self._index.num_paths
        if ((path_indices < 0) | (path_indices >= num_paths)).any():
            bad_path = int(path_indices[(path_indices < 0) | (path_indices >= num_paths)][0])
            raise IndexError(f"path index {bad_path} outside the probe matrix")
        if (lost > sent).any():
            raise ValueError("lost exceeds sent")
        late = times < self._window_start
        num_late = int(late.sum())
        if num_late:
            self._rejected += num_late
            self.total_rejected += num_late
            self.cost.add("aggregator_events_rejected", num_late)
            keep = ~late
            path_indices = path_indices[keep]
            sent = sent[keep]
            lost = lost[keep]
        accepted = n - num_late
        if accepted == 0:
            return 0
        if self._shard_of is None:
            self._fold(0, path_indices, sent, lost, num_paths)
        else:
            shard_ids = self._shard_of[path_indices]
            for shard in range(self.num_shards):
                mask = shard_ids == shard
                if mask.any():
                    self._fold(shard, path_indices[mask], sent[mask], lost[mask], num_paths)
        total_sent = int(sent.sum())
        self._probes_sent += total_sent
        self._probes_lost += int(lost.sum())
        self.cost.add("aggregator_events_accepted", accepted)
        self.cost.add("aggregator_probes_folded", total_sent)
        return accepted

    def _fold(self, shard: int, idx, sent, lost, num_paths: int) -> None:
        # bincount-with-weights returns float64; the sums are exact well past
        # any realistic probe volume (2**53), so the int64 cast is lossless.
        self._shard_sent[shard] += np.bincount(
            idx, weights=sent, minlength=num_paths
        ).astype(np.int64)
        self._shard_lost[shard] += np.bincount(
            idx, weights=lost, minlength=num_paths
        ).astype(np.int64)

    def ingest_report(self, report: "PingerReport", time: float) -> int:
        """Fold a whole legacy pinger report at one timestamp; returns #accepted."""
        self.cost.add("aggregator_reports_ingested")
        accepted = 0
        for obs in report.observations:
            if self.record(obs.path_index, time, obs.sent, obs.lost):
                accepted += 1
        return accepted

    # ------------------------------------------------------------ link kernels
    # Each kernel runs exactly once on the *merged* per-path arrays, so the
    # kernel-invocation counters are invariant in the shard count.
    def _lossy_mask(self):
        lost = self._merged_lost()
        if self._index.backend is Backend.NUMPY:
            return lost > 0
        return [count > 0 for count in lost]

    def link_sent_counts(self):
        """Per-link probes sent this window (positional over the universe)."""
        return self._index.weighted_col_counts(self._merged_sent())

    def link_loss_counts(self):
        """Per-link probes lost this window (positional over the universe)."""
        return self._index.weighted_col_counts(self._merged_lost())

    def link_lossy_path_counts(self):
        """Per-link count of distinct lossy paths this window."""
        return self._index.masked_col_counts(self._lossy_mask())

    def sliding_link_loss_counts(self):
        """Per-link lost probes summed over the open window plus up to
        ``history_windows`` previously closed ones (the sliding counter)."""
        totals = self.link_loss_counts()
        for past in self._history:
            if self._index.backend is Backend.NUMPY:
                totals = totals + past
            else:
                totals = [a + b for a, b in zip(totals, past)]
        return totals

    # ---------------------------------------------------------------- rollover
    def close_window(self, end_time: Optional[float] = None) -> WindowReport:
        """Emit the open window's report and roll over to the next window.

        ``end_time`` defaults to the nominal window end; passing the engine's
        horizon closes a final partial window.
        """
        end = self.window_end if end_time is None else float(end_time)
        if end < self._window_start:
            raise ValueError("window cannot end before it starts")
        self.cost.add("aggregator_windows_closed")
        with tracing.span(
            "aggregator.close",
            window=self._window_index,
            shards=self.num_shards,
            events=self.cost.get("aggregator_events_accepted"),
        ):
            merged_sent = self._merged_sent()
            merged_lost = self._merged_lost()
            link_lost = self._index.weighted_col_counts(merged_lost)
            if self._index.backend is Backend.NUMPY:
                lossy_mask = merged_lost > 0
            else:
                lossy_mask = [count > 0 for count in merged_lost]
            report = WindowReport(
                index=self._window_index,
                start=self._window_start,
                end=end,
                observations=ObservationSet.from_counters(merged_sent, merged_lost),
                probes_sent=self._probes_sent,
                probes_lost=self._probes_lost,
                rejected_events=self._rejected,
                link_ids=self._index.link_ids,
                link_sent=self._index.weighted_col_counts(merged_sent),
                link_lost=link_lost,
                link_lossy_paths=self._index.masked_col_counts(lossy_mask),
            )
        if self._history_windows:
            self._history.append(link_lost)
        self._window_index += 1
        self._window_start = max(end, self.window_end)
        self._reset_counters()
        self._probes_sent = 0
        self._probes_lost = 0
        self._rejected = 0
        return report
