"""Timed probe emission: per-pinger probe events at configurable rates.

Each pinger of the current controller cycle becomes a *stream*: a recurring
event that, every ``batch_seconds`` of simulated time (jittered so the fleet
does not fire in lockstep, exactly like staggered real pingers), spends the
probe budget accrued since its last firing.  The budget is
``probes_per_second * elapsed`` with fractional carry, distributed round-robin
over the pinger's pinglist entries from a persistent cursor -- over time every
entry receives its fair share, matching the paper's "loop over the pinglist"
behaviour (§3.1) at any rate.

Outcomes are pushed as ``(path_index, time, sent, lost)`` batches into a sink
(the engine wires the :class:`~repro.engine.aggregator.StreamAggregator`
here).  Batches use the vectorized
:meth:`~repro.simulation.ProbeSimulator.probe_path_batch` kernel, so
failure-free paths -- the vast majority -- cost one dictionary lookup each.

Two scheduling regimes share the stream model, byte-identical in every
observable (probe outcomes, random draws, counters):

* **per-event** -- each stream is a :meth:`~repro.engine.loop.EventLoop.schedule_every`
  recurrence: one heap event and one Python callback per firing.  One
  persistent callable (the stream object itself) serves every firing; no
  closures are allocated on the hot path.
* **coalesced** (``coalesce=True``) -- the scheduler registers itself as the
  loop's *batch source* and keeps the streams in a private mini-heap keyed
  ``(time, tie)``.  The loop lets it drain every firing falling strictly
  before the next regular event in one pass: budgets and jitter are drawn
  per firing in pop order (reproducing the per-event sequence exactly), but
  the round-robin expansion to ``(path, count, start_sequence)`` rows, the
  sequence-counter bumps, and the probing itself run as columnar numpy
  passes through :meth:`~repro.simulation.ProbeSimulator.probe_paths_bulk`.
  Below ``bulk_batch_threshold`` rows the expansion falls back to the scalar
  per-entry loop (same arrays, same order, same bytes).

When the controller installs a new cycle the engine calls
:meth:`ProbeScheduler.set_pingers`; the previous cycle's streams are retired
immediately (recurrences cancelled / tier heap rebuilt) with a generation
counter as backstop, and fresh streams start at the current instant.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Mapping, Optional, TYPE_CHECKING

import numpy as np

from .loop import EventLoop, RecurringEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..monitor.pinger import Pinger
    from ..simulation.network import ProbeSimulator

__all__ = ["ProbeScheduler"]

# Priority convention of the engine's event classes at equal timestamps:
# fault transitions run first (the loop default, 0), then window closes, then
# controller cycles, then probe batches -- so a probe fired exactly at a
# boundary lands in the *new* window, against the *new* pinglists.
PRIORITY_FAULT = 0
PRIORITY_WINDOW = 10
PRIORITY_CYCLE = 20
PRIORITY_PROBE = 30


class _PingerStream:
    """Per-pinger probing state: budget carry, entry cursor, sequence counters.

    The stream object itself is the recurring event's callable -- calling it
    fires one probe batch -- so the per-event path allocates no closure per
    firing.  ``generation`` backstops retirement: a stale stream returns
    ``False``, stopping its recurrence.
    """

    __slots__ = (
        "scheduler",
        "pinger",
        "entries",
        "config",
        "confirm_losses",
        "rate",
        "carry",
        "cursor",
        "sequence",
        "last_fired",
        "generation",
        "slice_start",
    )

    def __init__(
        self, scheduler: "ProbeScheduler", pinger: "Pinger", start_time: float, generation: int
    ):
        self.scheduler = scheduler
        self.pinger = pinger
        self.entries = list(pinger.pinglist.entries)
        self.config = pinger.probe_config()
        self.confirm_losses = pinger.confirm_losses
        self.rate = 0.0
        self.carry = 0.0
        self.cursor = 0
        # Per-entry next probe sequence (drives source-port/DSCP entropy).
        # The coalesced tier uses the scheduler's shared columnar array
        # instead (``slice_start`` locates this stream's slice).
        self.sequence: List[int] = [0] * len(self.entries)
        self.last_fired = start_time
        self.generation = generation
        self.slice_start = 0

    def __call__(self) -> Optional[bool]:
        scheduler = self.scheduler
        if self.generation != scheduler._generation:
            return False  # a newer controller cycle replaced this stream
        scheduler._fire(self)
        return None


class ProbeScheduler:
    """Fires per-pinger probe batches at a configurable rate with jitter."""

    def __init__(
        self,
        loop: EventLoop,
        rng: np.random.Generator,
        probes_per_second: Optional[float] = None,
        batch_seconds: float = 1.0,
        jitter_fraction: float = 0.1,
        batched: bool = True,
        coalesce: bool = False,
        coalesce_horizon: Optional[float] = None,
        bulk_batch_threshold: int = 64,
    ):
        if batch_seconds <= 0:
            raise ValueError("batch_seconds must be positive")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must lie in [0, 1)")
        if probes_per_second is not None and probes_per_second <= 0:
            raise ValueError("probes_per_second must be positive")
        if coalesce_horizon is not None and coalesce_horizon <= 0:
            raise ValueError("coalesce_horizon must be positive")
        if bulk_batch_threshold < 0:
            raise ValueError("bulk_batch_threshold must be non-negative")
        self._loop = loop
        self._rng = rng
        self._rate_override = probes_per_second
        self.batch_seconds = float(batch_seconds)
        self.jitter_fraction = float(jitter_fraction)
        self._batched = batched
        self._coalesce = coalesce
        self.coalesce_horizon = coalesce_horizon
        self.bulk_batch_threshold = int(bulk_batch_threshold)
        self._streams: Dict[str, _PingerStream] = {}
        self._recurring: List[RecurringEvent] = []
        self._generation = 0
        # Coalesced-tier state: a private (time, tie, stream) mini-heap plus
        # columnar per-entry tables shared by all streams of one generation.
        self._tier_heap: List[tuple] = []
        self._tie = itertools.count()
        self._entry_paths = np.zeros(0, dtype=np.int64)
        self._entry_seq = np.zeros(0, dtype=np.int64)
        self._simulator: Optional["ProbeSimulator"] = None
        self.sink: Optional[Callable[[int, float, int, int], None]] = None
        self.sink_batch: Optional[
            Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]
        ] = None
        self.probes_sent = 0
        self.probes_lost = 0
        self.batches_fired = 0
        # Informational drain statistics (not part of the deterministic cost
        # counters: they differ between scheduling regimes by design).
        self.drains = 0
        self.drain_rows_total = 0
        self.drain_rows_max = 0
        if coalesce:
            loop.set_batch_source(self)

    # ------------------------------------------------------------- pinger set
    def set_pingers(self, pingers: Mapping[str, "Pinger"]) -> None:
        """Install the pingers of a (new) controller cycle.

        Streams of the previous cycle are retired immediately: per-event
        recurrences are cancelled (the loop compacts their heap entries) and
        the coalesced tier's heap is rebuilt, with the generation counter as
        backstop.  Every new stream's first firing lands one jittered batch
        interval from now, staggered per pinger.
        """
        self._generation += 1
        generation = self._generation
        now = self._loop.clock.now
        for recurring in self._recurring:
            recurring.cancel()
        self._recurring = []
        streams: Dict[str, _PingerStream] = {}
        for name, pinger in pingers.items():
            if not pinger.pinglist.entries:
                continue
            stream = _PingerStream(self, pinger, now, generation)
            stream.rate = self._rate_for(stream)
            streams[name] = stream
        self._streams = streams
        if self._coalesce:
            self._tier_heap = []
            offset = 0
            paths: List[int] = []
            for stream in streams.values():
                stream.slice_start = offset
                offset += len(stream.entries)
                paths.extend(entry.path_index for entry in stream.entries)
            self._entry_paths = np.asarray(paths, dtype=np.int64)
            self._entry_seq = np.zeros(offset, dtype=np.int64)
            self._simulator = (
                next(iter(streams.values())).pinger.simulator if streams else None
            )
            for stream in streams.values():
                heapq.heappush(
                    self._tier_heap,
                    (now + self._jittered_interval(), next(self._tie), stream),
                )
        else:
            for stream in streams.values():
                self._recurring.append(
                    self._loop.schedule_every(
                        self._jittered_interval,
                        stream,
                        PRIORITY_PROBE,
                        first_delay=self._jittered_interval(),
                    )
                )

    def _rate_for(self, stream: _PingerStream) -> float:
        if self._rate_override is not None:
            return self._rate_override
        return stream.pinger.pinglist.probes_per_second

    def _jittered_interval(self) -> float:
        jitter = self.jitter_fraction
        if jitter == 0.0:
            return self.batch_seconds
        return self.batch_seconds * (1.0 + jitter * float(self._rng.uniform(-1.0, 1.0)))

    # ------------------------------------------------- per-event firing path
    def _fire(self, stream: _PingerStream) -> None:
        now = self._loop.clock.now
        elapsed = now - stream.last_fired
        stream.last_fired = now
        budget = stream.carry + stream.rate * elapsed
        probes = int(budget)
        stream.carry = budget - probes
        if probes <= 0 or not stream.entries:
            return
        self.batches_fired += 1
        num_entries = len(stream.entries)
        # Round-robin from the persistent cursor: the first (probes % n)
        # entries after the cursor get one extra probe.
        base, extra = divmod(probes, num_entries)
        send = stream.pinger.probe_entry_batched if self._batched else stream.pinger.probe_entry
        for offset in range(num_entries):
            count = base + (1 if offset < extra else 0)
            if count == 0:
                break
            position = (stream.cursor + offset) % num_entries
            entry = stream.entries[position]
            sent, lost = send(entry, count, stream.sequence[position], stream.config)
            stream.sequence[position] += count
            self.probes_sent += sent
            self.probes_lost += lost
            if self.sink is not None:
                self.sink(entry.path_index, now, sent, lost)
        stream.cursor = (stream.cursor + extra) % num_entries if num_entries else 0

    # ------------------------------------------------- coalesced (batch) tier
    def next_time(self) -> Optional[float]:
        """Earliest pending probe firing (the loop's batch-source protocol)."""
        return self._tier_heap[0][0] if self._tier_heap else None

    def drain(self, until: float, strict: bool = False, limit: Optional[int] = None) -> int:
        """Process every stream firing due before ``until`` in one pass.

        Budget, carry, cursor, and jitter draws are computed per firing in
        mini-heap pop order -- exactly the order the per-event path fires in
        -- but nothing probes until the end of the drain, when all accumulated
        firings expand into one columnar ``(path, count, start_sequence)``
        batch.  ``strict`` excludes firings at exactly ``until`` (used by the
        loop to stop before a regular event at that timestamp);
        ``coalesce_horizon`` caps a single drain's time span.
        """
        heap = self._tier_heap
        if not heap:
            return 0
        bound = until
        inclusive = not strict
        if self.coalesce_horizon is not None:
            cap = heap[0][0] + self.coalesce_horizon
            if cap < bound:
                bound, inclusive = cap, True
        loop = self._loop
        clock = loop.clock
        generation = self._generation
        fired = 0
        f_streams: List[_PingerStream] = []
        f_times: List[float] = []
        f_base: List[int] = []
        f_extra: List[int] = []
        f_cursor: List[int] = []
        while heap:
            head = heap[0][0]
            if head > bound or (not inclusive and head == bound):
                break
            if limit is not None and fired >= limit:
                break
            time, _, stream = heapq.heappop(heap)
            clock.advance(time)
            loop.events_processed += 1
            fired += 1
            if stream.generation != generation:
                continue  # backstop; set_pingers rebuilds the tier heap
            elapsed = time - stream.last_fired
            stream.last_fired = time
            budget = stream.carry + stream.rate * elapsed
            probes = int(budget)
            stream.carry = budget - probes
            if probes > 0:
                self.batches_fired += 1
                num_entries = len(stream.entries)
                base, extra = divmod(probes, num_entries)
                f_streams.append(stream)
                f_times.append(time)
                f_base.append(base)
                f_extra.append(extra)
                f_cursor.append(stream.cursor)
                stream.cursor = (stream.cursor + extra) % num_entries
            heapq.heappush(
                heap, (time + self._jittered_interval(), next(self._tie), stream)
            )
        if f_streams:
            self._emit(f_streams, f_times, f_base, f_extra, f_cursor)
        return fired

    def _emit(
        self,
        streams: List[_PingerStream],
        times: List[float],
        bases: List[int],
        extras: List[int],
        cursors: List[int],
    ) -> None:
        """Expand accumulated firings into one columnar probe batch."""
        num_firings = len(streams)
        n_entries = np.fromiter((len(s.entries) for s in streams), np.int64, num_firings)
        base = np.fromiter(bases, np.int64, num_firings)
        extra = np.fromiter(extras, np.int64, num_firings)
        # A firing touches all n entries when every entry's share is >= 1,
        # otherwise only the `extra` entries after the cursor (the per-entry
        # loop breaks at the first zero count).
        rows_per_firing = np.where(base > 0, n_entries, extra)
        total_rows = int(rows_per_firing.sum())
        self.drains += 1
        self.drain_rows_total += total_rows
        if total_rows > self.drain_rows_max:
            self.drain_rows_max = total_rows
        if total_rows < self.bulk_batch_threshold:
            self._emit_scalar(streams, times, bases, extras, cursors)
            return
        cursor = np.fromiter(cursors, np.int64, num_firings)
        t_arr = np.fromiter(times, np.float64, num_firings)
        firing_of_row = np.repeat(np.arange(num_firings), rows_per_firing)
        row_start = np.cumsum(rows_per_firing) - rows_per_firing
        offset = np.arange(total_rows, dtype=np.int64) - row_start[firing_of_row]
        count = base[firing_of_row] + (offset < extra[firing_of_row])
        position = (cursor[firing_of_row] + offset) % n_entries[firing_of_row]
        slice_start = np.fromiter((s.slice_start for s in streams), np.int64, num_firings)
        entry_index = slice_start[firing_of_row] + position
        # Start sequences: rows hitting the same entry within one drain must
        # chain (each starts where the previous left off).  Group rows by
        # entry (stable, so firing order is preserved inside a group) and
        # prefix-sum the counts within each group.
        order = np.argsort(entry_index, kind="stable")
        entry_sorted = entry_index[order]
        count_sorted = count[order]
        before = np.cumsum(count_sorted) - count_sorted
        group_first = np.ones(total_rows, dtype=bool)
        group_first[1:] = entry_sorted[1:] != entry_sorted[:-1]
        # `before` is globally non-decreasing, so propagating each group's
        # first value with a running maximum yields the group baseline.
        group_base = np.maximum.accumulate(np.where(group_first, before, -1))
        start_seq = np.empty(total_rows, dtype=np.int64)
        start_seq[order] = self._entry_seq[entry_sorted] + (before - group_base)
        num_entries_total = len(self._entry_seq)
        self._entry_seq += np.bincount(
            entry_index, weights=count, minlength=num_entries_total
        ).astype(np.int64)
        path_indices = self._entry_paths[entry_index]
        sent, lost = self._simulator.probe_paths_bulk(
            path_indices,
            count,
            start_seq,
            configs=[s.config for s in streams],
            config_of=firing_of_row,
            confirms=[s.confirm_losses for s in streams],
        )
        self._deliver(path_indices, t_arr[firing_of_row], sent, lost)

    def _emit_scalar(
        self,
        streams: List[_PingerStream],
        times: List[float],
        bases: List[int],
        extras: List[int],
        cursors: List[int],
    ) -> None:
        """Small-drain fallback: the per-entry loop over the shared tables.

        Byte-identical to :meth:`_emit` (same row order, same sequence
        arrays, same probing kernel) -- only the expansion is scalar.
        """
        row_paths: List[int] = []
        row_times: List[float] = []
        row_sent: List[int] = []
        row_lost: List[int] = []
        entry_seq = self._entry_seq
        for stream, time, base, extra, cursor in zip(streams, times, bases, extras, cursors):
            num_entries = len(stream.entries)
            config = stream.config
            for offset in range(num_entries):
                count = base + (1 if offset < extra else 0)
                if count == 0:
                    break
                position = (cursor + offset) % num_entries
                entry_index = stream.slice_start + position
                entry = stream.entries[position]
                sent, lost = stream.pinger.probe_entry_batched(
                    entry, count, int(entry_seq[entry_index]), config
                )
                entry_seq[entry_index] += count
                row_paths.append(entry.path_index)
                row_times.append(time)
                row_sent.append(sent)
                row_lost.append(lost)
        self._deliver(
            np.asarray(row_paths, dtype=np.int64),
            np.asarray(row_times, dtype=np.float64),
            np.asarray(row_sent, dtype=np.int64),
            np.asarray(row_lost, dtype=np.int64),
        )

    def _deliver(
        self, paths: np.ndarray, times: np.ndarray, sent: np.ndarray, lost: np.ndarray
    ) -> None:
        self.probes_sent += int(sent.sum())
        self.probes_lost += int(lost.sum())
        if self.sink_batch is not None:
            self.sink_batch(paths, times, sent, lost)
        elif self.sink is not None:
            sink = self.sink
            for i in range(len(paths)):
                sink(int(paths[i]), float(times[i]), int(sent[i]), int(lost[i]))

    # ------------------------------------------------------------------ views
    @property
    def num_streams(self) -> int:
        return len(self._streams)

    def telemetry(self) -> Dict[str, int]:
        """Deterministic probe counters, shaped for a metrics-registry source.

        Byte-identical across backends, jobs counts and machines for a fixed
        seed and scheduling regime (the same contract as the engine's cost
        model, which these join in
        :meth:`~repro.engine.TelemetryEngine.build_result`).
        """
        return {
            "probes_sent": self.probes_sent,
            "probes_lost": self.probes_lost,
            "probe_batches_fired": self.batches_fired,
        }

    def drain_telemetry(self) -> Dict[str, int]:
        """Informational coalescing statistics (regime-dependent by design)."""
        return {
            "coalesced_drains": self.drains,
            "coalesced_rows_total": self.drain_rows_total,
            "coalesced_rows_max": self.drain_rows_max,
        }
