"""Timed probe emission: per-pinger probe events at configurable rates.

Each pinger of the current controller cycle becomes a *stream*: a recurring
event that, every ``batch_seconds`` of simulated time (jittered so the fleet
does not fire in lockstep, exactly like staggered real pingers), spends the
probe budget accrued since its last firing.  The budget is
``probes_per_second * elapsed`` with fractional carry, distributed round-robin
over the pinger's pinglist entries from a persistent cursor -- over time every
entry receives its fair share, matching the paper's "loop over the pinglist"
behaviour (§3.1) at any rate.

Outcomes are pushed as ``(path_index, time, sent, lost)`` batches into a sink
(the engine wires the :class:`~repro.engine.aggregator.StreamAggregator`
here).  Batches use the vectorized
:meth:`~repro.simulation.ProbeSimulator.probe_path_batch` kernel, so
failure-free paths -- the vast majority -- cost one dictionary lookup each.

When the controller installs a new cycle the engine calls
:meth:`ProbeScheduler.set_pingers`; live streams from the previous cycle are
invalidated through a generation counter (their already-scheduled events
become no-ops) and fresh streams start at the current instant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, TYPE_CHECKING

import numpy as np

from .loop import EventLoop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..monitor.pinger import Pinger

__all__ = ["ProbeScheduler"]

# Priority convention of the engine's event classes at equal timestamps:
# fault transitions run first (the loop default, 0), then window closes, then
# controller cycles, then probe batches -- so a probe fired exactly at a
# boundary lands in the *new* window, against the *new* pinglists.
PRIORITY_FAULT = 0
PRIORITY_WINDOW = 10
PRIORITY_CYCLE = 20
PRIORITY_PROBE = 30


class _PingerStream:
    """Per-pinger probing state: budget carry, entry cursor, sequence counters."""

    __slots__ = ("pinger", "entries", "config", "carry", "cursor", "sequence", "last_fired")

    def __init__(self, pinger: "Pinger", start_time: float):
        self.pinger = pinger
        self.entries = list(pinger.pinglist.entries)
        self.config = pinger.probe_config()
        self.carry = 0.0
        self.cursor = 0
        # Per-entry next probe sequence (drives source-port/DSCP entropy).
        self.sequence: List[int] = [0] * len(self.entries)
        self.last_fired = start_time


class ProbeScheduler:
    """Fires per-pinger probe batches at a configurable rate with jitter."""

    def __init__(
        self,
        loop: EventLoop,
        rng: np.random.Generator,
        probes_per_second: Optional[float] = None,
        batch_seconds: float = 1.0,
        jitter_fraction: float = 0.1,
        batched: bool = True,
    ):
        if batch_seconds <= 0:
            raise ValueError("batch_seconds must be positive")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must lie in [0, 1)")
        if probes_per_second is not None and probes_per_second <= 0:
            raise ValueError("probes_per_second must be positive")
        self._loop = loop
        self._rng = rng
        self._rate_override = probes_per_second
        self.batch_seconds = float(batch_seconds)
        self.jitter_fraction = float(jitter_fraction)
        self._batched = batched
        self._streams: Dict[str, _PingerStream] = {}
        self._generation = 0
        self.sink: Optional[Callable[[int, float, int, int], None]] = None
        self.probes_sent = 0
        self.probes_lost = 0
        self.batches_fired = 0

    # ------------------------------------------------------------- pinger set
    def set_pingers(self, pingers: Mapping[str, "Pinger"]) -> None:
        """Install the pingers of a (new) controller cycle.

        Streams of the previous cycle are invalidated -- their pending events
        no-op through the generation check -- and every new stream's first
        firing is scheduled one jittered batch interval from now, staggered
        per pinger.
        """
        self._generation += 1
        generation = self._generation
        now = self._loop.clock.now
        self._streams = {
            name: _PingerStream(pinger, now)
            for name, pinger in pingers.items()
            if pinger.pinglist.entries
        }
        for name in self._streams:
            self._loop.schedule_after(
                self._jittered_interval(), self._make_event(name, generation), PRIORITY_PROBE
            )

    def _rate_for(self, stream: _PingerStream) -> float:
        if self._rate_override is not None:
            return self._rate_override
        return stream.pinger.pinglist.probes_per_second

    def _jittered_interval(self) -> float:
        jitter = self.jitter_fraction
        if jitter == 0.0:
            return self.batch_seconds
        return self.batch_seconds * (1.0 + jitter * float(self._rng.uniform(-1.0, 1.0)))

    def _make_event(self, name: str, generation: int) -> Callable[[], None]:
        def fire() -> None:
            if generation != self._generation:
                return  # a newer controller cycle replaced this stream
            self._fire(name)
            self._loop.schedule_after(
                self._jittered_interval(), self._make_event(name, generation), PRIORITY_PROBE
            )

        return fire

    # ---------------------------------------------------------------- firing
    def _fire(self, name: str) -> None:
        stream = self._streams[name]
        now = self._loop.clock.now
        elapsed = now - stream.last_fired
        stream.last_fired = now
        budget = stream.carry + self._rate_for(stream) * elapsed
        probes = int(budget)
        stream.carry = budget - probes
        if probes <= 0 or not stream.entries:
            return
        self.batches_fired += 1
        num_entries = len(stream.entries)
        # Round-robin from the persistent cursor: the first (probes % n)
        # entries after the cursor get one extra probe.
        base, extra = divmod(probes, num_entries)
        send = stream.pinger.probe_entry_batched if self._batched else stream.pinger.probe_entry
        for offset in range(num_entries):
            count = base + (1 if offset < extra else 0)
            if count == 0:
                break
            position = (stream.cursor + offset) % num_entries
            entry = stream.entries[position]
            sent, lost = send(
                entry, count, stream.sequence[position], stream.config
            )
            stream.sequence[position] += count
            self.probes_sent += sent
            self.probes_lost += lost
            if self.sink is not None:
                self.sink(entry.path_index, now, sent, lost)
        stream.cursor = (stream.cursor + extra) % num_entries if num_entries else 0

    # ------------------------------------------------------------------ views
    @property
    def num_streams(self) -> int:
        return len(self._streams)
