"""Discrete-event telemetry engine: timed probe streams over simulated time.

The static layers (PMC, PLL, the monitoring loop) evaluate *snapshots*; this
package adds the missing dimension -- time -- so detection and localization
*latency* become measurable, the axis systems like Pingmesh are actually
compared on.  See `ARCHITECTURE.md` ("The telemetry engine") for the event
dataflow and `docs/TUNING.md` for the knobs.
"""

from .aggregator import StreamAggregator, WindowReport
from .dynamics import (
    CongestionEpisode,
    DynamicFaultModel,
    FaultEpisode,
    FaultTransition,
    FlappingLink,
    GrayFailure,
    SwitchOutage,
)
from .engine import (
    CycleRecord,
    DetectionRecord,
    EngineConfig,
    EngineResult,
    EngineWindow,
    ServedWindow,
    SnapshotWindow,
    TelemetryEngine,
)
from .loop import BatchEventSource, EventHandle, EventLoop, RecurringEvent, SimClock
from .probes import ProbeScheduler

__all__ = [
    "SimClock",
    "EventLoop",
    "EventHandle",
    "RecurringEvent",
    "BatchEventSource",
    "ProbeScheduler",
    "StreamAggregator",
    "WindowReport",
    "FaultTransition",
    "FaultEpisode",
    "FlappingLink",
    "CongestionEpisode",
    "GrayFailure",
    "SwitchOutage",
    "DynamicFaultModel",
    "EngineConfig",
    "DetectionRecord",
    "CycleRecord",
    "EngineWindow",
    "EngineResult",
    "ServedWindow",
    "SnapshotWindow",
    "TelemetryEngine",
]
