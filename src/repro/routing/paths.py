"""Probe-path model and per-topology path enumeration.

A *path* is the unit of probing in deTector: a walk between two ToR switches
(or BCube servers) whose exact hops are pinned by source routing (IP-in-IP in
the paper, explicit path objects here).  The link universe of the probe matrix
is the set of inter-switch links; the path keeps

* the full node walk (needed for symmetry signatures, pinger placement and
  the latency model), and
* the *set* of switch-link ids it traverses (needed by PMC and PLL -- both
  reason about paths purely as link sets).

The candidate path sets implemented here reproduce the "# of original paths"
column of Table 2:

* Fattree(k): every ordered ToR pair has one candidate path per core switch
  (``k**2/4`` of them) -- ``T*(T-1)*k**2/4`` paths for ``T = k**2/2`` ToRs.
* VL2(d_a, d_i, t): every ordered ToR pair has ``2 * d_a/2 * 2`` candidate
  paths (source aggregation switch x intermediate switch x destination
  aggregation switch).
* BCube(n, k): every ordered server pair has ``k+1`` parallel paths built with
  the digit-correcting ``BuildPathSet`` construction of the BCube paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..topology import (
    BCubeTopology,
    FatTreeTopology,
    Tier,
    Topology,
    TopologyError,
    VL2Topology,
)

__all__ = [
    "Path",
    "walk_to_link_ids",
    "walk_link_sequence",
    "enumerate_fattree_paths",
    "enumerate_vl2_paths",
    "enumerate_bcube_paths",
    "enumerate_candidate_paths",
    "enumerate_shortest_paths",
]


@dataclass(frozen=True)
class Path:
    """A pinned probe path between two endpoints.

    Attributes
    ----------
    path_id:
        Dense index inside the owning candidate set / routing matrix.
    nodes:
        The switch-level node walk, source first.  A node may appear twice
        (an intra-pod path bounced off a core switch revisits its aggregation
        switch), which is why ``link_ids`` is a set, not a sequence.
    link_ids:
        Frozen set of inter-switch link ids traversed (in either direction).
    src, dst:
        Endpoints (ToR switches for Fattree/VL2, servers for BCube).
    via:
        The pinned waypoint that disambiguates ECMP choices (core switch,
        intermediate switch, or the digit-permutation label for BCube).
    """

    path_id: int
    nodes: Tuple[str, ...]
    link_ids: frozenset
    src: str
    dst: str
    via: str = ""

    def __len__(self) -> int:
        return len(self.link_ids)

    @property
    def hop_count(self) -> int:
        return len(self.nodes) - 1

    def reversed(self, new_id: Optional[int] = None) -> "Path":
        """The same physical walk traversed in the opposite direction."""
        return Path(
            path_id=self.path_id if new_id is None else new_id,
            nodes=tuple(reversed(self.nodes)),
            link_ids=self.link_ids,
            src=self.dst,
            dst=self.src,
            via=self.via,
        )


def walk_to_link_ids(topology: Topology, nodes: Sequence[str]) -> frozenset:
    """Translate a node walk into the set of link ids it traverses."""
    ids = set()
    for a, b in zip(nodes, nodes[1:]):
        ids.add(topology.link_between(a, b).link_id)
    return frozenset(ids)


def walk_link_sequence(topology: Topology, nodes: Sequence[str]) -> List[int]:
    """The ordered list of link ids along a node walk (hops in order).

    Unlike :func:`walk_to_link_ids` duplicates are preserved; traceroute-style
    tools (fbtracert) need the hop order to attribute loss onset to a link.
    """
    return [
        topology.link_between(a, b).link_id for a, b in zip(nodes, nodes[1:])
    ]


# --------------------------------------------------------------------------
# Fattree
# --------------------------------------------------------------------------

def enumerate_fattree_paths(
    topology: FatTreeTopology,
    ordered: bool = True,
    include_intrapod_agg: bool = False,
) -> List[Path]:
    """Candidate probe paths between every pair of ToR (edge) switches.

    Parameters
    ----------
    ordered:
        When ``True`` (paper counting) both ``(A, B)`` and ``(B, A)`` appear;
        their link sets are identical, so PMC typically runs with
        ``ordered=False`` and the counting experiments with ``ordered=True``.
    include_intrapod_agg:
        Also include the two-hop ``edge -> agg -> edge`` paths between ToRs of
        the same pod.  The paper's path counting routes every pair through a
        core switch, but the short paths are how production ECMP would route
        intra-pod traffic, so they are available as an option.
    """
    paths: List[Path] = []
    tors = [n.name for n in topology.tor_switches]
    core_names = topology.core_switch_names()

    def pair_iter() -> Iterator[Tuple[str, str]]:
        for i, src in enumerate(tors):
            for j, dst in enumerate(tors):
                if i == j:
                    continue
                if not ordered and i > j:
                    continue
                yield src, dst

    for src, dst in pair_iter():
        src_pod = topology.node(src).pod
        dst_pod = topology.node(dst).pod
        for core in core_names:
            src_agg = topology.agg_for_core(src_pod, core)
            dst_agg = topology.agg_for_core(dst_pod, core)
            if src_pod == dst_pod:
                walk = (src, src_agg, core, dst_agg, dst)
            else:
                walk = (src, src_agg, core, dst_agg, dst)
            paths.append(
                Path(
                    path_id=len(paths),
                    nodes=walk,
                    link_ids=walk_to_link_ids(topology, walk),
                    src=src,
                    dst=dst,
                    via=core,
                )
            )
        if include_intrapod_agg and src_pod == dst_pod:
            for agg in topology.aggregation_switches_in_pod(src_pod):
                walk = (src, agg, dst)
                paths.append(
                    Path(
                        path_id=len(paths),
                        nodes=walk,
                        link_ids=walk_to_link_ids(topology, walk),
                        src=src,
                        dst=dst,
                        via=agg,
                    )
                )
    return paths


# --------------------------------------------------------------------------
# VL2
# --------------------------------------------------------------------------

def enumerate_vl2_paths(topology: VL2Topology, ordered: bool = True) -> List[Path]:
    """Candidate probe paths between every pair of VL2 ToR switches.

    Each path is ``ToR -> agg -> intermediate -> agg' -> ToR'`` pinned by the
    triple (source aggregation switch, intermediate switch, destination
    aggregation switch).
    """
    paths: List[Path] = []
    tors = topology.tor_switch_names
    intermediates = topology.intermediate_switch_names

    for i, src in enumerate(tors):
        src_aggs = topology.aggs_of_tor(src)
        for j, dst in enumerate(tors):
            if i == j:
                continue
            if not ordered and i > j:
                continue
            dst_aggs = topology.aggs_of_tor(dst)
            for src_agg in src_aggs:
                for inter in intermediates:
                    for dst_agg in dst_aggs:
                        walk = (src, src_agg, inter, dst_agg, dst)
                        paths.append(
                            Path(
                                path_id=len(paths),
                                nodes=walk,
                                link_ids=walk_to_link_ids(topology, walk),
                                src=src,
                                dst=dst,
                                via=f"{src_agg}|{inter}|{dst_agg}",
                            )
                        )
    return paths


# --------------------------------------------------------------------------
# BCube
# --------------------------------------------------------------------------

def enumerate_bcube_paths(topology: BCubeTopology, ordered: bool = True) -> List[Path]:
    """The ``k+1`` parallel paths between every pair of BCube servers.

    Implements ``BuildPathSet`` from the BCube paper: path ``i`` corrects the
    address digits in the cyclic order ``i, i-1, ..., 0, k, ..., i+1``.  When
    source and destination already agree on digit ``i``, the altered variant
    detours through a level-``i`` neighbor of the source so that the path set
    keeps ``k+1`` members (and stays parallel).
    """
    paths: List[Path] = []
    servers = topology.server_node_names()
    k = topology.k

    for i, src in enumerate(servers):
        for j, dst in enumerate(servers):
            if i == j:
                continue
            if not ordered and i > j:
                continue
            for start_level in range(k, -1, -1):
                walk = _bcube_path_walk(topology, src, dst, start_level)
                paths.append(
                    Path(
                        path_id=len(paths),
                        nodes=tuple(walk),
                        link_ids=walk_to_link_ids(topology, walk),
                        src=src,
                        dst=dst,
                        via=f"level{start_level}",
                    )
                )
    return paths


def _bcube_path_walk(
    topology: BCubeTopology, src: str, dst: str, start_level: int
) -> List[str]:
    """Node walk of the BCube parallel path that starts by fixing ``start_level``."""
    k = topology.k
    src_addr = list(topology.server_address(src))
    dst_addr = topology.server_address(dst)
    order = [(start_level - offset) % (k + 1) for offset in range(k + 1)]

    walk = [src]
    current = list(src_addr)

    def hop(level: int, new_digit: int) -> None:
        """Move to the server whose digit ``level`` equals ``new_digit`` via the shared switch."""
        position = k - level
        if current[position] == new_digit:
            return
        switch = topology.switch_for(current, level)
        current[position] = new_digit
        next_server = topology.server_name(current)
        walk.append(switch)
        walk.append(next_server)

    first_level = order[0]
    first_position = k - first_level
    detour_digit: Optional[int] = None
    if src_addr[first_position] == dst_addr[first_position]:
        # Altered path: detour through a level-``first_level`` neighbor so this
        # path stays link-disjoint from the ones that correct other digits
        # first (AltDCRouting in the BCube paper).
        detour_digit = (src_addr[first_position] + 1) % topology.n
        if detour_digit == dst_addr[first_position]:
            detour_digit = (detour_digit + 1) % topology.n
        if detour_digit != src_addr[first_position]:
            hop(first_level, detour_digit)
    else:
        hop(first_level, dst_addr[first_position])

    for level in order[1:]:
        hop(level, dst_addr[k - level])

    # Undo the detour (or finish correcting the first digit) last.
    hop(first_level, dst_addr[first_position])
    return walk


# --------------------------------------------------------------------------
# Generic
# --------------------------------------------------------------------------

def enumerate_candidate_paths(topology: Topology, ordered: bool = True, **kwargs) -> List[Path]:
    """Dispatch to the topology-specific enumerator.

    Falls back to ECMP shortest paths between ToR switches for topologies
    without a specialised enumerator.
    """
    if isinstance(topology, FatTreeTopology):
        return enumerate_fattree_paths(topology, ordered=ordered, **kwargs)
    if isinstance(topology, VL2Topology):
        return enumerate_vl2_paths(topology, ordered=ordered, **kwargs)
    if isinstance(topology, BCubeTopology):
        return enumerate_bcube_paths(topology, ordered=ordered, **kwargs)
    tors = [n.name for n in topology.tor_switches]
    if not tors:
        raise TopologyError(
            f"no specialised path enumerator for {topology.name!r} and no ToR switches found"
        )
    pairs = []
    for i, src in enumerate(tors):
        for j, dst in enumerate(tors):
            if i == j:
                continue
            if not ordered and i > j:
                continue
            pairs.append((src, dst))
    return enumerate_shortest_paths(topology, pairs)


def enumerate_shortest_paths(
    topology: Topology,
    pairs: Iterable[Tuple[str, str]],
    max_paths_per_pair: Optional[int] = None,
) -> List[Path]:
    """All shortest switch-level paths for the given endpoint pairs.

    Used for arbitrary topologies (and in tests as an oracle for the
    specialised enumerators).  Paths are discovered with
    :func:`networkx.all_shortest_paths` on the switches-only graph.
    """
    import networkx as nx

    graph = topology.to_networkx(switches_only=True)
    paths: List[Path] = []
    for src, dst in pairs:
        found = 0
        for walk in nx.all_shortest_paths(graph, src, dst):
            paths.append(
                Path(
                    path_id=len(paths),
                    nodes=tuple(walk),
                    link_ids=walk_to_link_ids(topology, walk),
                    src=src,
                    dst=dst,
                    via=walk[len(walk) // 2] if len(walk) > 2 else "",
                )
            )
            found += 1
            if max_paths_per_pair is not None and found >= max_paths_per_pair:
                break
    return paths
