"""ECMP path selection for systems that do *not* pin probe paths.

Pingmesh and NetNORAD treat the network as a black box: their probes are
ordinary 5-tuple flows and the switches hash them onto one of the equal-cost
paths.  deTector's motivation section (§2) hinges on this behaviour -- a
low-rate loss on one of the ``k**2/4`` parallel paths is diluted by ECMP and
therefore hard to detect end-to-end.

:class:`ECMPRouter` reproduces the behaviour deterministically: the chosen
path is a stable hash of the flow 5-tuple over the candidate paths between the
two endpoints, mirroring per-flow ECMP hashing in commodity switches.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from .paths import Path

__all__ = ["FlowKey", "ECMPRouter"]


FlowKey = Tuple[str, str, int, int, int]
"""A flow 5-tuple: (src endpoint, dst endpoint, src port, dst port, protocol)."""


class ECMPRouter:
    """Deterministic per-flow ECMP over a fixed candidate path set.

    Parameters
    ----------
    paths:
        Candidate paths.  They are grouped by their ``(src, dst)`` endpoints;
        a flow between two endpoints is hashed onto one member of its group.
    seed:
        Mixed into the hash so that different simulated switches (or different
        experiment repetitions) can realise different hash functions.
    """

    def __init__(self, paths: Sequence[Path], seed: int = 0):
        self._seed = seed
        self._groups: Dict[Tuple[str, str], List[int]] = {}
        self._paths = list(paths)
        for index, path in enumerate(self._paths):
            self._groups.setdefault((path.src, path.dst), []).append(index)

    @property
    def seed(self) -> int:
        return self._seed

    def endpoints(self) -> List[Tuple[str, str]]:
        return sorted(self._groups)

    def candidates(self, src: str, dst: str) -> List[int]:
        """Indices of candidate paths from *src* to *dst* (empty if none)."""
        return list(self._groups.get((src, dst), []))

    def path_at(self, index: int) -> Path:
        """The path object behind a candidate index."""
        return self._paths[index]

    def route(self, flow: FlowKey) -> Optional[Path]:
        """Pick the path this flow's packets will take, or ``None`` if unknown pair."""
        index = self.route_index(flow)
        return None if index is None else self._paths[index]

    def route_index(self, flow: FlowKey) -> Optional[int]:
        src, dst, sport, dport, protocol = flow
        group = self._groups.get((src, dst))
        if not group:
            return None
        digest = zlib.crc32(
            f"{self._seed}|{src}|{dst}|{sport}|{dport}|{protocol}".encode("utf-8")
        )
        return group[digest % len(group)]

    def spread(self, src: str, dst: str, flows: Sequence[FlowKey]) -> Dict[int, int]:
        """How many of the given flows hash onto each candidate path.

        Useful to quantify the ECMP dilution effect: with ``f`` flows and
        ``p`` parallel paths, a single bad path only carries about ``f/p`` of
        the probes.
        """
        counts: Dict[int, int] = {}
        for flow in flows:
            if flow[0] != src or flow[1] != dst:
                raise ValueError("flow endpoints do not match the requested pair")
            index = self.route_index(flow)
            if index is not None:
                counts[index] = counts.get(index, 0) + 1
        return counts
