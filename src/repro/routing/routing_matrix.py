"""The routing matrix ``R``: candidate probe paths x inter-switch links.

§4.1 of the paper defines ``R`` as an ``m x n`` 0/1 matrix where ``R[i, j] = 1``
iff link ``j`` lies on path ``i``.  At data-center scale a dense matrix is not
an option (Fattree(64) has ~4.3e9 candidate paths), so :class:`RoutingMatrix`
keeps the incidence in one shared CSR/CSC structure -- the
:class:`~repro.core.incidence.IncidenceIndex` -- and exposes the two legacy
query views on top of it:

* ``links_on(path)``   -- the frozen set of link ids of each path, and
* ``paths_through(l)`` -- the sorted tuple of path indices crossing link ``l``

while PMC, PLL and the decomposition work on the flat arrays directly (via
:attr:`incidence`).  A :mod:`scipy.sparse` matrix is only materialised on
demand (useful for the OMP localization baseline and for tests).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.incidence import Backend, IncidenceIndex
from ..topology import Topology
from .paths import Path

__all__ = ["RoutingMatrix"]


class RoutingMatrix:
    """Candidate probe paths over a fixed link universe.

    Parameters
    ----------
    topology:
        The topology the paths live in.
    paths:
        Candidate :class:`~repro.routing.paths.Path` objects.  Their
        ``path_id`` fields are ignored; the position in this sequence is the
        canonical path index.
    link_ids:
        The link universe.  Defaults to all inter-switch links of the
        topology, which is what deTector's probe matrix targets (§3.1).
    backend:
        Incidence backend (:class:`~repro.core.incidence.Backend`, its string
        value, or ``None`` for the ``REPRO_BACKEND``/auto default).
    """

    def __init__(
        self,
        topology: Topology,
        paths: Sequence[Path],
        link_ids: Optional[Iterable[int]] = None,
        backend: Optional[Backend] = None,
    ):
        self._topology = topology
        self._paths: Tuple[Path, ...] = tuple(paths)
        if link_ids is None:
            universe = [link.link_id for link in topology.switch_links]
        else:
            universe = sorted(set(link_ids))
        self._index = IncidenceIndex(
            [path.link_ids for path in self._paths], universe, backend=backend
        )

    # ------------------------------------------------------------------ views
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def incidence(self) -> IncidenceIndex:
        """The shared CSR/CSC incidence index (the array-facing API)."""
        return self._index

    @property
    def backend(self) -> Backend:
        return self._index.backend

    @property
    def paths(self) -> Tuple[Path, ...]:
        return self._paths

    @property
    def num_paths(self) -> int:
        return len(self._paths)

    @property
    def link_ids(self) -> Tuple[int, ...]:
        return self._index.link_ids

    @property
    def num_links(self) -> int:
        return self._index.num_links

    def path(self, index: int) -> Path:
        return self._paths[index]

    def links_on(self, path_index: int) -> FrozenSet[int]:
        """Link ids (restricted to the universe) traversed by a path."""
        return self._index.row_link_set(path_index)

    def paths_through(self, link_id: int) -> Tuple[int, ...]:
        """Indices of paths that traverse the link."""
        try:
            return self._index.paths_through(link_id)
        except KeyError:
            raise KeyError(f"link {link_id} is not in the routing-matrix universe") from None

    def contains_link(self, link_id: int) -> bool:
        return self._index.contains_link(link_id)

    # ------------------------------------------------------------ diagnostics
    def covered_links(self) -> List[int]:
        """Links crossed by at least one candidate path."""
        counts = self._index.coverage_counts()
        return [l for col, l in enumerate(self.link_ids) if counts[col]]

    def uncovered_links(self) -> List[int]:
        """Links no candidate path can probe (PMC can never cover these)."""
        counts = self._index.coverage_counts()
        return [l for col, l in enumerate(self.link_ids) if not counts[col]]

    def coverage_histogram(self) -> Dict[int, int]:
        """Map ``link_id -> number of candidate paths`` through it."""
        return self._index.coverage_histogram()

    def summary(self) -> Mapping[str, int]:
        histogram = self.coverage_histogram()
        values = list(histogram.values())
        return {
            "paths": self.num_paths,
            "links": self.num_links,
            "uncovered_links": sum(1 for v in values if v == 0),
            "min_link_coverage": min(values) if values else 0,
            "max_link_coverage": max(values) if values else 0,
        }

    # ------------------------------------------------------------ conversions
    def column_index(self) -> Dict[int, int]:
        """Map from link id to column position in :meth:`to_sparse`."""
        return {link_id: column for column, link_id in enumerate(self.link_ids)}

    def to_sparse(self):
        """Export as a ``scipy.sparse.csr_matrix`` of shape (paths, links)."""
        return self._index.to_scipy_csr()

    def to_dense(self):
        """Dense ``numpy`` export (small instances / tests only)."""
        return self.to_sparse().toarray()

    def subset(self, path_indices: Sequence[int]) -> "RoutingMatrix":
        """A new routing matrix restricted to the given paths (same universe)."""
        selected = [self._paths[i] for i in path_indices]
        return RoutingMatrix(
            self._topology, selected, link_ids=self.link_ids, backend=self.backend
        )
