"""The routing matrix ``R``: candidate probe paths x inter-switch links.

§4.1 of the paper defines ``R`` as an ``m x n`` 0/1 matrix where ``R[i, j] = 1``
iff link ``j`` lies on path ``i``.  At data-center scale a dense matrix is not
an option (Fattree(64) has ~4.3e9 candidate paths), so :class:`RoutingMatrix`
keeps the incidence as

* ``links_on(path)``   -- the frozen set of link ids of each path, and
* ``paths_through(l)`` -- the sorted tuple of path indices crossing link ``l``

and only materialises a :mod:`scipy.sparse` matrix on demand (useful for the
OMP localization baseline and for tests).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..topology import Topology
from .paths import Path

__all__ = ["RoutingMatrix"]


class RoutingMatrix:
    """Candidate probe paths over a fixed link universe.

    Parameters
    ----------
    topology:
        The topology the paths live in.
    paths:
        Candidate :class:`~repro.routing.paths.Path` objects.  Their
        ``path_id`` fields are ignored; the position in this sequence is the
        canonical path index.
    link_ids:
        The link universe.  Defaults to all inter-switch links of the
        topology, which is what deTector's probe matrix targets (§3.1).
    """

    def __init__(
        self,
        topology: Topology,
        paths: Sequence[Path],
        link_ids: Optional[Iterable[int]] = None,
    ):
        self._topology = topology
        self._paths: List[Path] = list(paths)
        if link_ids is None:
            universe = [link.link_id for link in topology.switch_links]
        else:
            universe = sorted(set(link_ids))
        self._link_ids: Tuple[int, ...] = tuple(universe)
        universe_set = frozenset(universe)
        self._universe_set = universe_set

        self._links_on: List[FrozenSet[int]] = []
        paths_through: Dict[int, List[int]] = {link_id: [] for link_id in universe}
        for index, path in enumerate(self._paths):
            on_universe = frozenset(l for l in path.link_ids if l in universe_set)
            self._links_on.append(on_universe)
            for link_id in on_universe:
                paths_through[link_id].append(index)
        self._paths_through: Dict[int, Tuple[int, ...]] = {
            link_id: tuple(indices) for link_id, indices in paths_through.items()
        }

    # ------------------------------------------------------------------ views
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def paths(self) -> Sequence[Path]:
        return tuple(self._paths)

    @property
    def num_paths(self) -> int:
        return len(self._paths)

    @property
    def link_ids(self) -> Tuple[int, ...]:
        return self._link_ids

    @property
    def num_links(self) -> int:
        return len(self._link_ids)

    def path(self, index: int) -> Path:
        return self._paths[index]

    def links_on(self, path_index: int) -> FrozenSet[int]:
        """Link ids (restricted to the universe) traversed by a path."""
        return self._links_on[path_index]

    def paths_through(self, link_id: int) -> Tuple[int, ...]:
        """Indices of paths that traverse the link."""
        try:
            return self._paths_through[link_id]
        except KeyError:
            raise KeyError(f"link {link_id} is not in the routing-matrix universe") from None

    def contains_link(self, link_id: int) -> bool:
        return link_id in self._universe_set

    # ------------------------------------------------------------ diagnostics
    def covered_links(self) -> List[int]:
        """Links crossed by at least one candidate path."""
        return [l for l in self._link_ids if self._paths_through[l]]

    def uncovered_links(self) -> List[int]:
        """Links no candidate path can probe (PMC can never cover these)."""
        return [l for l in self._link_ids if not self._paths_through[l]]

    def coverage_histogram(self) -> Dict[int, int]:
        """Map ``link_id -> number of candidate paths`` through it."""
        return {l: len(self._paths_through[l]) for l in self._link_ids}

    def summary(self) -> Mapping[str, int]:
        histogram = self.coverage_histogram()
        values = list(histogram.values())
        return {
            "paths": self.num_paths,
            "links": self.num_links,
            "uncovered_links": len(self.uncovered_links()),
            "min_link_coverage": min(values) if values else 0,
            "max_link_coverage": max(values) if values else 0,
        }

    # ------------------------------------------------------------ conversions
    def column_index(self) -> Dict[int, int]:
        """Map from link id to column position in :meth:`to_sparse`."""
        return {link_id: column for column, link_id in enumerate(self._link_ids)}

    def to_sparse(self):
        """Export as a ``scipy.sparse.csr_matrix`` of shape (paths, links)."""
        from scipy import sparse

        columns = self.column_index()
        data: List[int] = []
        row_indices: List[int] = []
        col_indices: List[int] = []
        for row, links in enumerate(self._links_on):
            for link_id in links:
                row_indices.append(row)
                col_indices.append(columns[link_id])
                data.append(1)
        return sparse.csr_matrix(
            (data, (row_indices, col_indices)),
            shape=(self.num_paths, self.num_links),
            dtype=float,
        )

    def to_dense(self):
        """Dense ``numpy`` export (small instances / tests only)."""
        return self.to_sparse().toarray()

    def subset(self, path_indices: Sequence[int]) -> "RoutingMatrix":
        """A new routing matrix restricted to the given paths (same universe)."""
        selected = [self._paths[i] for i in path_indices]
        return RoutingMatrix(self._topology, selected, link_ids=self._link_ids)
