"""Source-routing encapsulation model (IP-in-IP pinning of probe paths).

The real system wraps each probe in an outer IP header addressed to the pinned
core switch; the core decapsulates and forwards the inner packet to the true
destination (§3.2).  In this reproduction the "wire format" is a plain data
object: the simulator honours the pinned walk exactly, which is precisely the
guarantee encapsulation provides.  The module still models the encapsulation /
decapsulation steps explicitly so that the pinger and the examples exercise
the same conceptual pipeline as the paper's implementation, including the
packet-entropy fields (ports, DSCP) discussed in §6.1 and §7.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..topology import Topology, TopologyError
from .paths import Path

__all__ = ["ProbePacket", "EncapsulatedProbe", "SourceRouter"]


@dataclass(frozen=True)
class ProbePacket:
    """The inner UDP probe packet a pinger emits.

    The fields mirror the packet-entropy knobs of the implementation section:
    pingers loop over a port range and vary the DSCP value so that packets
    exercise different forwarding behaviours (different QoS queues, different
    hash buckets on a misbehaving ASIC).
    """

    src_server: str
    dst_server: str
    src_port: int
    dst_port: int
    dscp: int = 0
    protocol: int = 17  # UDP
    size_bytes: int = 850  # average probe size reported in §6.1
    sequence: int = 0

    def flow_key(self) -> Tuple[str, str, int, int, int]:
        return (self.src_server, self.dst_server, self.src_port, self.dst_port, self.protocol)


@dataclass(frozen=True)
class EncapsulatedProbe:
    """An IP-in-IP wrapped probe pinned to an explicit path."""

    inner: ProbePacket
    path: Path
    outer_destination: str  # the pinned waypoint (core / intermediate switch)

    @property
    def total_size_bytes(self) -> int:
        # Outer IPv4 header adds 20 bytes.
        return self.inner.size_bytes + 20


class SourceRouter:
    """Builds and unwraps encapsulated probes for pinned paths."""

    def __init__(self, topology: Topology):
        self._topology = topology

    def encapsulate(self, packet: ProbePacket, path: Path) -> EncapsulatedProbe:
        """Wrap *packet* so that it follows *path*.

        Raises :class:`~repro.topology.TopologyError` when the path's walk is
        not realisable in the topology (a hop without a link), which protects
        the simulator from stale probe matrices after a topology change.
        """
        for a, b in zip(path.nodes, path.nodes[1:]):
            if not self._topology.has_link(a, b):
                raise TopologyError(
                    f"path {path.path_id} hop {a!r} -> {b!r} does not exist in "
                    f"{self._topology.name}"
                )
        waypoint = path.via or path.nodes[len(path.nodes) // 2]
        return EncapsulatedProbe(inner=packet, path=path, outer_destination=waypoint)

    def decapsulate(self, probe: EncapsulatedProbe) -> ProbePacket:
        """The packet the destination responder sees after the waypoint strips the outer header."""
        return probe.inner

    def response_for(self, probe: EncapsulatedProbe) -> ProbePacket:
        """The echo packet a responder sends back (same content, endpoints swapped)."""
        inner = probe.inner
        return replace(
            inner,
            src_server=inner.dst_server,
            dst_server=inner.src_server,
            src_port=inner.dst_port,
            dst_port=inner.src_port,
        )
