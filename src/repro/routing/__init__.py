"""Routing substrate: candidate path enumeration, routing matrix, ECMP, source routing."""

from .ecmp import ECMPRouter, FlowKey
from .paths import (
    Path,
    enumerate_bcube_paths,
    enumerate_candidate_paths,
    enumerate_fattree_paths,
    enumerate_shortest_paths,
    enumerate_vl2_paths,
    walk_link_sequence,
    walk_to_link_ids,
)
from .routing_matrix import RoutingMatrix
from .source_routing import EncapsulatedProbe, ProbePacket, SourceRouter

__all__ = [
    "Path",
    "walk_to_link_ids",
    "walk_link_sequence",
    "enumerate_fattree_paths",
    "enumerate_vl2_paths",
    "enumerate_bcube_paths",
    "enumerate_candidate_paths",
    "enumerate_shortest_paths",
    "RoutingMatrix",
    "ECMPRouter",
    "FlowKey",
    "ProbePacket",
    "EncapsulatedProbe",
    "SourceRouter",
]
