"""Deterministic cost-model counters: machine-independent work accounting.

Wall-clock timings of sub-second micro-runs measure the scheduler of the CI
box more than the algorithm, so every gate the benchmark harnesses enforce is
expressed over *work counters* instead: exact integer counts of the algorithmic
operations the paper's complexity claims are about (greedy candidate
evaluations, lazy-update skips, partition refinements, symmetry batch
selections, aggregation-window folds).  Two invariants make them gateable:

* **backend invariance** -- a counter has the same value under
  ``REPRO_BACKEND=numpy`` and ``REPRO_BACKEND=python``.  Counters therefore
  count *semantic* operations (one logical candidate evaluation, one window
  fold), never per-backend micro-ops like chunk overshoot or per-element
  gathers, which legitimately differ between the vectorized and scalar
  implementations of the same kernel;
* **machine independence** -- counters are pure functions of the inputs, so
  ten consecutive runs (or runs on two different CI boxes) agree byte for
  byte, and any drift is a real algorithmic regression rather than noise.

:class:`CostModel` is the accumulator those counters live in;
:class:`KernelCounters` is the incidence-layer instance counting semantic
kernel invocations on an :class:`~repro.core.incidence.IncidenceIndex`.
Wall-clock time remains *informational* (it still appears in tables and BENCH
JSON) -- it is just never asserted on.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = ["CostModel", "KernelCounters"]


class CostModel:
    """Accumulator of named integer work counters.

    A thin, deterministic ``Dict[str, int]`` wrapper: counters are created on
    first :meth:`add`, values are exact Python ints, and :meth:`as_dict`
    renders them in sorted key order so two equal cost models serialize to
    byte-identical JSON.
    """

    __slots__ = ("_counts",)

    def __init__(self, initial: Optional[Mapping[str, int]] = None):
        self._counts: Dict[str, int] = {}
        if initial:
            for name, amount in initial.items():
                self.add(name, amount)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (created at zero)."""
        self._counts[name] = self._counts.get(name, 0) + int(amount)

    def get(self, name: str, default: int = 0) -> int:
        return self._counts.get(name, default)

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CostModel):
            return self._counts == other._counts
        if isinstance(other, Mapping):
            return self._counts == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"CostModel({inner})"

    def merge(self, other: "CostModel") -> None:
        """Add every counter of *other* into this model."""
        for name, amount in other._counts.items():
            self.add(name, amount)

    def as_dict(self) -> Dict[str, int]:
        """Plain ``{name: int}`` view in sorted key order (JSON-stable)."""
        return {name: int(self._counts[name]) for name in sorted(self._counts)}

    def delta_since(self, before: Mapping[str, int]) -> Dict[str, int]:
        """Sparse counter delta relative to an earlier :meth:`as_dict` snapshot.

        Only counters that moved appear, in sorted key order -- the shape the
        per-shard kernel gates compare (``ShardOutcome.kernel_cost``), where a
        replayed shard must show exactly ``{}``.
        """
        return {
            name: self._counts[name] - before.get(name, 0)
            for name in sorted(self._counts)
            if self._counts[name] != before.get(name, 0)
        }

    def clear(self) -> None:
        self._counts.clear()


class KernelCounters:
    """Semantic kernel-invocation counters of one incidence index.

    Ticked by :class:`~repro.core.incidence.IncidenceIndex` on every
    *semantic* kernel call -- one per-link coverage histogram, one weighted
    column fold, one component decomposition -- together with the element
    volume the call touched (columns scanned, entries visited).  Both numbers
    are identical across backends because they describe the question asked,
    not how the backend answered it.
    """

    __slots__ = ("cost",)

    def __init__(self, cost: Optional[CostModel] = None):
        self.cost = cost if cost is not None else CostModel()

    def tick(self, kernel: str, elements: int = 0) -> None:
        """Record one invocation of *kernel* over *elements* items."""
        self.cost.add(f"{kernel}_calls")
        if elements:
            self.cost.add(f"{kernel}_elements", elements)

    def calls(self, kernel: str) -> int:
        return self.cost.get(f"{kernel}_calls")

    def elements(self, kernel: str) -> int:
        return self.cost.get(f"{kernel}_elements")

    def as_dict(self) -> Dict[str, int]:
        return self.cost.as_dict()

    def clear(self) -> None:
        self.cost.clear()
