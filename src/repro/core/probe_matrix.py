"""The probe matrix ``P``: the set of probe paths deTector actually sends.

A probe matrix is a subset of the routing matrix rows (§4.1).  It is the
artifact the controller distributes to pingers and the structure the PLL
localization algorithm reasons over, so it carries the same link-incidence
queries as :class:`~repro.routing.routing_matrix.RoutingMatrix` (both are
views over one :class:`~repro.core.incidence.IncidenceIndex`) plus the
quality metrics the paper optimises:

* *coverage*  -- every inter-switch link is crossed by at least ``alpha`` probe
  paths,
* *identifiability* -- any combination of at most ``beta`` failed links
  produces a distinct loss syndrome (set of lossy paths),
* *evenness* -- probe load is spread evenly across links.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..topology import Topology
from .incidence import Backend, IncidenceIndex

if TYPE_CHECKING:  # imported lazily at runtime to avoid a routing<->core cycle
    from ..routing import Path, RoutingMatrix

__all__ = ["ProbeMatrix"]


class ProbeMatrix:
    """Selected probe paths over the inter-switch link universe."""

    def __init__(
        self,
        topology: Topology,
        paths: Sequence["Path"],
        link_ids: Optional[Iterable[int]] = None,
        backend: Optional[Backend] = None,
    ):
        from ..routing import RoutingMatrix

        self._matrix = RoutingMatrix(topology, paths, link_ids=link_ids, backend=backend)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_selection(
        cls, routing_matrix: "RoutingMatrix", selected_indices: Sequence[int]
    ) -> "ProbeMatrix":
        """Build a probe matrix from selected rows of a routing matrix."""
        paths = [routing_matrix.path(i) for i in selected_indices]
        return cls(
            routing_matrix.topology,
            paths,
            link_ids=routing_matrix.link_ids,
            backend=routing_matrix.backend,
        )

    # ------------------------------------------------------------------ views
    @property
    def topology(self) -> Topology:
        return self._matrix.topology

    @property
    def incidence(self) -> IncidenceIndex:
        """The shared CSR/CSC incidence index (the array-facing API)."""
        return self._matrix.incidence

    @property
    def backend(self) -> Backend:
        return self._matrix.backend

    @property
    def paths(self) -> Sequence["Path"]:
        return self._matrix.paths

    @property
    def num_paths(self) -> int:
        return self._matrix.num_paths

    @property
    def link_ids(self) -> Tuple[int, ...]:
        return self._matrix.link_ids

    @property
    def num_links(self) -> int:
        return self._matrix.num_links

    def path(self, index: int) -> "Path":
        return self._matrix.path(index)

    def links_on(self, path_index: int) -> FrozenSet[int]:
        return self._matrix.links_on(path_index)

    def paths_through(self, link_id: int) -> Tuple[int, ...]:
        return self._matrix.paths_through(link_id)

    def contains_link(self, link_id: int) -> bool:
        return self._matrix.contains_link(link_id)

    def as_routing_matrix(self) -> "RoutingMatrix":
        return self._matrix

    def to_sparse(self):
        return self._matrix.to_sparse()

    # ---------------------------------------------------------------- quality
    def link_coverage(self) -> Dict[int, int]:
        """Number of probe paths crossing each link of the universe."""
        return self._matrix.coverage_histogram()

    def min_coverage(self) -> int:
        counts = self.incidence.coverage_counts()
        return int(min(counts)) if len(counts) else 0

    def max_coverage(self) -> int:
        counts = self.incidence.coverage_counts()
        return int(max(counts)) if len(counts) else 0

    def coverage_gap(self) -> int:
        """Max minus min link coverage -- the evenness metric of §4.2."""
        counts = self.incidence.coverage_counts()
        if not len(counts):
            return 0
        return int(max(counts)) - int(min(counts))

    def uncovered_links(self) -> List[int]:
        return self._matrix.uncovered_links()

    def satisfies_coverage(self, alpha: int) -> bool:
        """``True`` when every link is crossed by at least ``alpha`` paths."""
        if alpha <= 0:
            return True
        return self.min_coverage() >= alpha

    def syndrome(self, failed_links: Iterable[int]) -> FrozenSet[int]:
        """The set of probe-path indices that traverse at least one failed link.

        Under full packet loss this is exactly the set of lossy paths an
        operator observes, so distinct syndromes for distinct failure sets is
        the identifiability property (§4.1).
        """
        return frozenset(self.incidence.rows_touching_links(failed_links))

    # ------------------------------------------------------------ bookkeeping
    def paths_by_source(self) -> Dict[str, List[int]]:
        """Group path indices by source endpoint (for pinglist construction)."""
        groups: Dict[str, List[int]] = {}
        for index, path in enumerate(self.paths):
            groups.setdefault(path.src, []).append(index)
        return groups

    def summary(self) -> Mapping[str, float]:
        histogram = self.link_coverage()
        values = list(histogram.values())
        mean = sum(values) / len(values) if values else 0.0
        return {
            "paths": self.num_paths,
            "links": self.num_links,
            "min_coverage": min(values) if values else 0,
            "max_coverage": max(values) if values else 0,
            "mean_coverage": mean,
            "uncovered_links": sum(1 for v in values if v == 0),
        }

    # ----------------------------------------------------------- serialization
    def to_json(self) -> str:
        """Serialize for the controller -> pinger hand-off (pinglists embed this)."""
        payload = {
            "topology": self.topology.name,
            "link_ids": list(self.link_ids),
            "paths": [
                {
                    "nodes": list(path.nodes),
                    "src": path.src,
                    "dst": path.dst,
                    "via": path.via,
                }
                for path in self.paths
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, topology: Topology, payload: str) -> "ProbeMatrix":
        from ..routing.paths import Path, walk_to_link_ids

        data = json.loads(payload)
        if data.get("topology") != topology.name:
            raise ValueError(
                f"probe matrix was built for {data.get('topology')!r}, "
                f"not {topology.name!r}"
            )
        paths = []
        for i, entry in enumerate(data["paths"]):
            nodes = tuple(entry["nodes"])
            paths.append(
                Path(
                    path_id=i,
                    nodes=nodes,
                    link_ids=walk_to_link_ids(topology, nodes),
                    src=entry["src"],
                    dst=entry["dst"],
                    via=entry.get("via", ""),
                )
            )
        return cls(topology, paths, link_ids=data["link_ids"])
