"""Link-set partition maintained by the PMC greedy (§4.2, second paragraph).

The construction for 1-identifiability keeps a partition of the (extended)
link set.  Initially there is a single cell containing every link.  Each
selected path splits every cell it touches into "links on the path" and
"links not on the path"; when every cell is a singleton, the set of selected
paths traversing each link is unique and the matrix is 1-identifiable (over
the extended link space, hence ``beta``-identifiable over physical links).

:class:`LinkSetPartition` implements exactly this refinement, with the two
queries the greedy needs:

* :meth:`cells_touched` -- how many cells contain at least one link of a path
  (the "# of link sets on path" term of the score, Eq. 1), and
* :meth:`split` -- refine the partition by a selected path, returning how many
  new cells the split created (the actual marginal progress, used both for
  the stop condition and for discarding useless candidate paths).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

__all__ = ["LinkSetPartition"]


class LinkSetPartition:
    """Refinable partition over a dense universe ``0 .. n-1`` of (extended) links."""

    def __init__(self, num_links: int):
        if num_links < 0:
            raise ValueError("num_links must be non-negative")
        self._num_links = num_links
        # cell id -> set of member link ids; cells are never removed, only split.
        self._cells: Dict[int, Set[int]] = {}
        self._cell_of: List[int] = [0] * num_links
        if num_links:
            self._cells[0] = set(range(num_links))
        self._next_cell_id = 1
        self._singletons = 1 if num_links == 1 else 0

    # ------------------------------------------------------------------ sizes
    @property
    def num_links(self) -> int:
        return self._num_links

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def num_singletons(self) -> int:
        return self._singletons

    @property
    def fully_refined(self) -> bool:
        """True when every cell is a singleton -- the identifiability target."""
        return self.num_cells == self._num_links

    # ---------------------------------------------------------------- queries
    def cell_of(self, link: int) -> int:
        return self._cell_of[link]

    def cell_members(self, cell_id: int) -> Set[int]:
        return set(self._cells[cell_id])

    def cells(self) -> Dict[int, Set[int]]:
        return {cell: set(members) for cell, members in self._cells.items()}

    def same_cell(self, link_a: int, link_b: int) -> bool:
        return self._cell_of[link_a] == self._cell_of[link_b]

    def cells_touched(self, links: Iterable[int]) -> int:
        """Number of distinct cells containing at least one of the given links."""
        return len({self._cell_of[link] for link in links})

    def splits_gained(self, links: Iterable[int]) -> int:
        """How many *new* cells :meth:`split` would create for this link set.

        A cell produces a new cell only when the link set hits some but not
        all of its members.  This is the exact marginal refinement a path
        provides, used to discard candidates that can no longer help.
        """
        link_set = set(links)
        touched: Dict[int, int] = {}
        for link in link_set:
            cell = self._cell_of[link]
            touched[cell] = touched.get(cell, 0) + 1
        gained = 0
        for cell, inside in touched.items():
            if inside < len(self._cells[cell]):
                gained += 1
        return gained

    # ----------------------------------------------------------------- update
    def split(self, links: Iterable[int]) -> int:
        """Refine the partition with the given link set; return number of new cells."""
        link_set = set(links)
        by_cell: Dict[int, Set[int]] = {}
        for link in link_set:
            cell = self._cell_of[link]
            by_cell.setdefault(cell, set()).add(link)
        created = 0
        for cell, inside in by_cell.items():
            members = self._cells[cell]
            if len(inside) == len(members):
                continue  # the whole cell is on the path: nothing to split
            # Move the smaller side into a new cell to bound the work.
            new_cell = self._next_cell_id
            self._next_cell_id += 1
            outside = members - inside
            moved = inside if len(inside) <= len(outside) else outside
            remaining_count = len(members) - len(moved)
            if len(members) == 1:
                # already singleton; cannot happen because inside < members
                continue
            for link in moved:
                members.discard(link)
                self._cell_of[link] = new_cell
            self._cells[new_cell] = set(moved)
            created += 1
            # Singleton bookkeeping: the original cell was not a singleton
            # (it had members both inside and outside); after the split either
            # side may have become one.
            if len(moved) == 1:
                self._singletons += 1
            if remaining_count == 1:
                self._singletons += 1
        return created

    # ------------------------------------------------------------------ debug
    def signature(self) -> Dict[int, int]:
        """Map every link to a canonical cell label (for equality in tests)."""
        canonical: Dict[int, int] = {}
        labels: Dict[int, int] = {}
        for link in range(self._num_links):
            cell = self._cell_of[link]
            if cell not in labels:
                labels[cell] = len(labels)
            canonical[link] = labels[cell]
        return canonical
