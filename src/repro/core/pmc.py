"""Probe Matrix Construction (PMC) -- Algorithm 1 of the paper.

Given the routing matrix ``R`` (every candidate probe path the routing
protocol allows), PMC greedily selects a minimal set of paths such that the
resulting probe matrix

* covers every inter-switch link at least ``alpha`` times,
* is ``beta``-identifiable (every combination of at most ``beta`` failed links
  yields a unique loss syndrome), and
* spreads probe load evenly across links.

The greedy repeatedly picks the candidate path with the lowest score

    score(path) = sum_{link on path} w[link]  -  (# of link sets on path)   (Eq. 1)

where ``w[link]`` counts how many selected paths already cross the link and
the "link sets" are the cells of the refinement partition described in §4.2
(over the extended link space that includes virtual links for ``beta >= 2``).

Three optional optimisations reproduce §4.3:

* **decomposition** -- split into independent subproblems (connected
  components of the path/link bipartite graph) and solve each separately,
* **lazy update** -- CELF-style deferred re-scoring via a min-heap,
* **symmetry** -- when a path is selected, also select link-disjoint
  topologically isomorphic images of it that still provide gain (the
  green/purple path example of Observation 3), which slashes the number of
  greedy iterations on symmetric fabrics.

Independent of the score, a popped candidate that can no longer refine any
link set nor cover an under-covered link is discarded permanently: by
submodularity its marginal gain can only shrink, so it will never become
useful.  This keeps the selection minimal when the requested identifiability
is unachievable (e.g. ``beta = 2`` in a 4-ary Fattree, §6.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..routing import Path, RoutingMatrix
from ..topology import PathOrbits, Topology
from .decomposition import Subproblem, decompose_routing_matrix
from .lazy_greedy import LazyMinHeap
from .link_partition import LinkSetPartition
from .probe_matrix import ProbeMatrix
from .virtual_links import ExtendedLinkSpace

__all__ = ["PMCOptions", "PMCStats", "PMCResult", "construct_probe_matrix", "pmc_for_topology"]


@dataclass
class PMCOptions:
    """Tuning knobs of the PMC algorithm.

    Attributes
    ----------
    alpha:
        Coverage target: every link must lie on at least ``alpha`` selected
        paths (links that no candidate path crosses are reported as
        uncoverable instead of looping forever).
    beta:
        Identifiability target; ``beta = 0`` requests pure coverage.
    use_decomposition / use_lazy_update / use_symmetry:
        The three speed-ups of §4.3.  All disabled reproduces the strawman
        column of Table 2.
    skip_zero_gain:
        Discard popped candidates with no marginal gain (default).  Turning
        this off reproduces the textbook greedy exactly but may select
        useless paths when the identifiability target is unachievable.
    max_paths:
        Optional hard cap on the number of selected paths (safety valve for
        experiments; ``None`` means unlimited).
    """

    alpha: int = 1
    beta: int = 1
    use_decomposition: bool = True
    use_lazy_update: bool = True
    use_symmetry: bool = False
    skip_zero_gain: bool = True
    max_paths: Optional[int] = None

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")

    def label(self) -> str:
        """Short human readable tag, e.g. ``(alpha=2, beta=1, lazy+sym)``."""
        opts = []
        if self.use_decomposition:
            opts.append("decomp")
        if self.use_lazy_update:
            opts.append("lazy")
        if self.use_symmetry:
            opts.append("sym")
        tag = "+".join(opts) if opts else "strawman"
        return f"(alpha={self.alpha}, beta={self.beta}, {tag})"


@dataclass
class PMCStats:
    """Bookkeeping produced while constructing a probe matrix."""

    iterations: int = 0
    candidates_scored: int = 0
    candidates_discarded: int = 0
    symmetry_batch_selections: int = 0
    subproblems: int = 1
    elapsed_seconds: float = 0.0
    fully_refined: bool = False
    coverage_satisfied: bool = False
    uncoverable_links: Tuple[int, ...] = ()

    def merge(self, other: "PMCStats") -> None:
        self.iterations += other.iterations
        self.candidates_scored += other.candidates_scored
        self.candidates_discarded += other.candidates_discarded
        self.symmetry_batch_selections += other.symmetry_batch_selections
        self.fully_refined = self.fully_refined and other.fully_refined
        self.coverage_satisfied = self.coverage_satisfied and other.coverage_satisfied
        self.uncoverable_links = tuple(
            sorted(set(self.uncoverable_links) | set(other.uncoverable_links))
        )


@dataclass
class PMCResult:
    """Outcome of a PMC run: the probe matrix plus provenance."""

    probe_matrix: ProbeMatrix
    selected_indices: Tuple[int, ...]
    options: PMCOptions
    stats: PMCStats

    @property
    def num_paths(self) -> int:
        return len(self.selected_indices)


def construct_probe_matrix(
    routing_matrix: RoutingMatrix,
    options: Optional[PMCOptions] = None,
    orbits: Optional[PathOrbits] = None,
) -> PMCResult:
    """Run PMC over a routing matrix and return the constructed probe matrix.

    Parameters
    ----------
    routing_matrix:
        The candidate paths and the link universe.
    options:
        :class:`PMCOptions`; defaults to ``alpha=1, beta=1`` with
        decomposition and lazy updates enabled.
    orbits:
        Precomputed :class:`~repro.topology.PathOrbits` over the routing
        matrix's paths; required when ``options.use_symmetry`` is set (the
        convenience wrapper :func:`pmc_for_topology` computes it).
    """
    options = options or PMCOptions()
    if options.use_symmetry and orbits is None:
        orbits = PathOrbits.from_walks(
            routing_matrix.topology, [p.nodes for p in routing_matrix.paths]
        )

    start = time.perf_counter()
    stats = PMCStats(fully_refined=True, coverage_satisfied=True)

    if options.use_decomposition:
        subproblems = decompose_routing_matrix(routing_matrix)
    else:
        subproblems = [
            Subproblem(
                link_ids=tuple(routing_matrix.link_ids),
                path_indices=tuple(range(routing_matrix.num_paths)),
            )
        ]
    stats.subproblems = len(subproblems)

    selected: List[int] = []
    for subproblem in subproblems:
        sub_selected, sub_stats = _solve_subproblem(
            routing_matrix, subproblem, options, orbits
        )
        selected.extend(sub_selected)
        stats.merge(sub_stats)
        if options.max_paths is not None and len(selected) >= options.max_paths:
            selected = selected[: options.max_paths]
            break

    stats.elapsed_seconds = time.perf_counter() - start
    selected_tuple = tuple(selected)
    probe_matrix = ProbeMatrix.from_selection(routing_matrix, selected_tuple)
    return PMCResult(
        probe_matrix=probe_matrix,
        selected_indices=selected_tuple,
        options=options,
        stats=stats,
    )


def pmc_for_topology(
    topology: Topology,
    alpha: int = 1,
    beta: int = 1,
    ordered_pairs: bool = False,
    **option_overrides,
) -> PMCResult:
    """Enumerate candidate paths for *topology* and run PMC on them.

    This is the one-call entry point used by the controller and the examples:
    it wires together path enumeration, orbit computation (when symmetry is
    requested) and the greedy itself.
    """
    from ..routing import enumerate_candidate_paths

    paths = enumerate_candidate_paths(topology, ordered=ordered_pairs)
    routing_matrix = RoutingMatrix(topology, paths)
    options = PMCOptions(alpha=alpha, beta=beta, **option_overrides)
    orbits = None
    if options.use_symmetry:
        orbits = PathOrbits.from_walks(topology, [p.nodes for p in paths])
    return construct_probe_matrix(routing_matrix, options, orbits=orbits)


# ---------------------------------------------------------------------------
# subproblem solver
# ---------------------------------------------------------------------------

def _solve_subproblem(
    routing_matrix: RoutingMatrix,
    subproblem: Subproblem,
    options: PMCOptions,
    orbits: Optional[PathOrbits],
) -> Tuple[List[int], PMCStats]:
    stats = PMCStats()
    link_ids = list(subproblem.link_ids)
    path_indices = list(subproblem.path_indices)
    path_index_set = set(path_indices)

    if not link_ids or not path_indices:
        # Links that no candidate path can probe are reported as uncoverable;
        # coverage is vacuously satisfied among coverable links, but the
        # identifiability target cannot be met for them.
        stats.fully_refined = not link_ids
        stats.coverage_satisfied = True
        stats.uncoverable_links = tuple(link_ids)
        return [], stats

    extended = ExtendedLinkSpace(link_ids, options.beta)
    partition = LinkSetPartition(extended.num_extended)
    weights: Dict[int, int] = {link: 0 for link in link_ids}

    coverable = {
        link for link in link_ids if routing_matrix.paths_through(link)
    }
    stats.uncoverable_links = tuple(sorted(set(link_ids) - coverable))
    under_covered: Set[int] = set(coverable) if options.alpha > 0 else set()

    links_on = routing_matrix.links_on

    def score(path_index: int) -> float:
        stats.candidates_scored += 1
        path_links = links_on(path_index)
        weight_term = sum(weights[l] for l in path_links)
        ext_on_path = extended.extended_links_on_path(path_links)
        return weight_term - partition.cells_touched(ext_on_path)

    # Every non-empty path initially touches the single cell with zero weight,
    # so its initial score is exactly -1; empty paths score 0 and will be
    # discarded on pop.
    heap: LazyMinHeap[int] = LazyMinHeap(
        ((-1.0 if links_on(i) else 0.0), i) for i in path_indices
    )

    selected: List[int] = []
    selected_set: Set[int] = set()
    identifiability_needed = options.beta > 0
    iteration = 0

    def goals_met() -> bool:
        refinement_done = partition.fully_refined if identifiability_needed else True
        return refinement_done and not under_covered

    def marginal_gain(path_index: int) -> Tuple[int, int]:
        """(new cells the path would split off, under-covered links it crosses)."""
        path_links = links_on(path_index)
        covers = sum(1 for l in path_links if l in under_covered)
        splits = 0
        if identifiability_needed and not partition.fully_refined:
            ext_on_path = extended.extended_links_on_path(path_links)
            splits = partition.splits_gained(ext_on_path)
        return splits, covers

    def apply_selection(path_index: int) -> None:
        path_links = links_on(path_index)
        if identifiability_needed:
            ext_on_path = extended.extended_links_on_path(path_links)
            partition.split(ext_on_path)
        for link in path_links:
            weights[link] += 1
            if link in under_covered and weights[link] >= options.alpha:
                under_covered.discard(link)
        selected.append(path_index)
        selected_set.add(path_index)

    while not goals_met():
        if options.max_paths is not None and len(selected) >= options.max_paths:
            break
        iteration += 1
        if options.use_lazy_update:
            popped = heap.pop_lazy(iteration, score)
        else:
            popped = heap.pop_eager(score)
        if popped is None:
            break
        _, path_index = popped
        if path_index in selected_set:
            continue

        splits, covers = marginal_gain(path_index)
        if options.skip_zero_gain and splits == 0 and covers == 0:
            stats.candidates_discarded += 1
            continue

        apply_selection(path_index)
        stats.iterations += 1

        if options.use_symmetry and orbits is not None:
            _select_orbit_mates(
                path_index,
                orbits,
                path_index_set,
                selected_set,
                links_on,
                marginal_gain,
                apply_selection,
                options,
                stats,
            )

    stats.fully_refined = partition.fully_refined or not identifiability_needed
    stats.coverage_satisfied = not under_covered
    return selected, stats


def _select_orbit_mates(
    seed_path: int,
    orbits: PathOrbits,
    path_index_set: Set[int],
    selected_set: Set[int],
    links_on,
    marginal_gain,
    apply_selection,
    options: PMCOptions,
    stats: PMCStats,
) -> None:
    """Batch-select topologically isomorphic images of a just-selected path.

    Only images that (a) belong to the same subproblem, (b) are link-disjoint
    from every path selected in this batch, and (c) still provide marginal
    gain are taken.  Disjointness mirrors the paper's example (a path spanning
    pods 1-2 is followed by its image spanning pods 3-4) and bounds the batch
    size by ``#links / path-length``.
    """
    batch_links: Set[int] = set(links_on(seed_path))
    orbit = orbits.orbit_of(seed_path)
    for mate in orbits.orbit_members(orbit):
        if mate == seed_path or mate in selected_set or mate not in path_index_set:
            continue
        mate_links = links_on(mate)
        if batch_links & mate_links:
            continue
        if options.max_paths is not None and len(selected_set) >= options.max_paths:
            break
        splits, covers = marginal_gain(mate)
        if splits == 0 and covers == 0:
            continue
        apply_selection(mate)
        batch_links.update(mate_links)
        stats.symmetry_batch_selections += 1
