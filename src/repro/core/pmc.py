"""Probe Matrix Construction (PMC) -- Algorithm 1 of the paper.

Given the routing matrix ``R`` (every candidate probe path the routing
protocol allows), PMC greedily selects a minimal set of paths such that the
resulting probe matrix

* covers every inter-switch link at least ``alpha`` times,
* is ``beta``-identifiable (every combination of at most ``beta`` failed links
  yields a unique loss syndrome), and
* spreads probe load evenly across links.

The greedy repeatedly picks the candidate path with the lowest score

    score(path) = sum_{link on path} w[link]  -  (# of link sets on path)   (Eq. 1)

where ``w[link]`` counts how many selected paths already cross the link and
the "link sets" are the cells of the refinement partition described in §4.2
(over the extended link space that includes virtual links for ``beta >= 2``).

Three optional optimisations reproduce §4.3:

* **decomposition** -- split into independent subproblems (connected
  components of the path/link bipartite graph) and solve each separately,
* **lazy update** -- CELF-style deferred re-scoring via a min-heap,
* **symmetry** -- when a path is selected, also select link-disjoint
  topologically isomorphic images of it that still provide gain (the
  green/purple path example of Observation 3), which slashes the number of
  greedy iterations on symmetric fabrics.

Independent of the score, a popped candidate that can no longer refine any
link set nor cover an under-covered link is discarded permanently: by
submodularity its marginal gain can only shrink, so it will never become
useful.  This keeps the selection minimal when the requested identifiability
is unachievable (e.g. ``beta = 2`` in a 4-ary Fattree, §6.3).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

try:  # only used by the numpy-backend batch scorer
    import numpy as _np
except ImportError:  # pragma: no cover - numpy backend is then unavailable
    _np = None

from ..contracts import (
    informational_fields,
    informational_wall,
    trace_record,
    trace_span,
)
from ..parallel import (
    WorkerTelemetry,
    in_main_process,
    merge_worker_telemetry,
    pool_map,
    resolve_jobs,
)
from ..topology import PathOrbits, Topology
from .costmodel import CostModel
from .decomposition import Subproblem, decompose_routing_matrix, pod_shards_for_matrix
from .incidence import (
    Backend,
    IncidenceHandle,
    IncidenceIndex,
    RefinablePartition,
    shm_enabled,
)
from .lazy_greedy import BatchCELFHeap, CELFSolutionCache, LazyMinHeap, ShardedSolutionCache
from .probe_matrix import ProbeMatrix
from .virtual_links import ExtendedLinkSpace

if TYPE_CHECKING:  # imported lazily at runtime to avoid a routing<->core cycle
    from ..routing import RoutingMatrix

__all__ = [
    "PMCOptions",
    "PMCStats",
    "PMCResult",
    "ShardOutcome",
    "construct_probe_matrix",
    "construct_probe_matrix_masked",
    "pmc_for_topology",
]


@dataclass
class PMCOptions:
    """Tuning knobs of the PMC algorithm.

    Attributes
    ----------
    alpha:
        Coverage target: every link must lie on at least ``alpha`` selected
        paths (links that no candidate path crosses are reported as
        uncoverable instead of looping forever).
    beta:
        Identifiability target; ``beta = 0`` requests pure coverage.
    use_decomposition / use_lazy_update / use_symmetry:
        The three speed-ups of §4.3.  All disabled reproduces the strawman
        column of Table 2.
    skip_zero_gain:
        Discard popped candidates with no marginal gain (default).  Turning
        this off reproduces the textbook greedy exactly but may select
        useless paths when the identifiability target is unachievable.
    max_paths:
        Optional hard cap on the number of selected paths (safety valve for
        experiments; ``None`` means unlimited).
    shard_by_pods:
        Replace the exact connected-component decomposition with the pod
        sharding of :func:`~repro.core.decomposition.pod_shards_for_matrix`:
        one subproblem per pod plus a residual shard for cross-pod paths.
        Shards are solved independently (identifiability is refined per
        shard, not jointly across shards) and merged in canonical shard
        order, which is what makes the solve parallelisable.  Incompatible
        with ``use_symmetry`` (orbit batching couples shards).
    jobs:
        Worker processes for solving subproblems; ``None`` resolves through
        the ``REPRO_JOBS`` environment variable (default 1, serial).  Any
        value produces byte-identical selections, stats and cost counters --
        only wall-clock time changes.  ``max_paths`` forces a serial solve
        (its early-stop crosses subproblem boundaries).
    """

    alpha: int = 1
    beta: int = 1
    use_decomposition: bool = True
    use_lazy_update: bool = True
    use_symmetry: bool = False
    skip_zero_gain: bool = True
    max_paths: Optional[int] = None
    shard_by_pods: bool = False
    jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.shard_by_pods and self.use_symmetry:
            raise ValueError(
                "shard_by_pods is incompatible with use_symmetry: orbit "
                "batching selects images across shard boundaries"
            )

    def resolved_jobs(self) -> int:
        """The effective worker count (explicit ``jobs`` > ``REPRO_JOBS`` > 1)."""
        return resolve_jobs(self.jobs)

    def label(self) -> str:
        """Short human readable tag, e.g. ``(alpha=2, beta=1, lazy+sym)``."""
        opts = []
        if self.shard_by_pods:
            opts.append("pods")
        elif self.use_decomposition:
            opts.append("decomp")
        if self.use_lazy_update:
            opts.append("lazy")
        if self.use_symmetry:
            opts.append("sym")
        tag = "+".join(opts) if opts else "strawman"
        return f"(alpha={self.alpha}, beta={self.beta}, {tag})"


@informational_fields("elapsed_seconds", "candidates_scored")
@dataclass
class PMCStats:
    """Bookkeeping produced while constructing a probe matrix.

    ``candidates_scored`` counts scoring *work performed*, not distinct
    candidates: the numpy backend's chunked rescoring scores whole batches at
    a time, so its count includes chunk overshoot and is higher than the
    python backend's for the same (byte-identical) selection sequence.

    ``greedy_evaluations`` is its deterministic sibling: the number of
    *logical* candidate evaluations the (unbatched) greedy performs -- chunk
    overshoot excluded -- so it is byte-identical across ``REPRO_BACKEND``
    backends and machines.  ``lazy_skips`` counts pops resolved from a score
    cached earlier in the same iteration (the CELF saving),
    ``partition_splits`` / ``partition_cells_created`` /
    ``partition_gain_queries`` the §4.2 refinement work.  Together with
    ``iterations``, ``candidates_discarded``, ``symmetry_batch_selections``
    and ``subproblems`` they form :meth:`cost_counters`, the machine-
    independent work profile the benchmark gates assert on (wall-clock
    ``elapsed_seconds`` is informational only).
    """

    iterations: int = 0
    candidates_scored: int = 0
    candidates_discarded: int = 0
    symmetry_batch_selections: int = 0
    subproblems: int = 1
    reused_subproblems: int = 0
    greedy_evaluations: int = 0
    lazy_skips: int = 0
    partition_splits: int = 0
    partition_cells_created: int = 0
    partition_gain_queries: int = 0
    elapsed_seconds: float = 0.0
    fully_refined: bool = False
    coverage_satisfied: bool = False
    uncoverable_links: Tuple[int, ...] = ()

    def merge(self, other: "PMCStats") -> None:
        self.iterations += other.iterations
        self.candidates_scored += other.candidates_scored
        self.candidates_discarded += other.candidates_discarded
        self.symmetry_batch_selections += other.symmetry_batch_selections
        self.reused_subproblems += other.reused_subproblems
        self.greedy_evaluations += other.greedy_evaluations
        self.lazy_skips += other.lazy_skips
        self.partition_splits += other.partition_splits
        self.partition_cells_created += other.partition_cells_created
        self.partition_gain_queries += other.partition_gain_queries
        self.fully_refined = self.fully_refined and other.fully_refined
        self.coverage_satisfied = self.coverage_satisfied and other.coverage_satisfied
        self.uncoverable_links = tuple(
            sorted(set(self.uncoverable_links) | set(other.uncoverable_links))
        )

    def cost_counters(self) -> Dict[str, int]:
        """The deterministic work profile of this run as a :class:`CostModel` dict.

        Every value is an exact integer, byte-identical across backends and
        machines; ``elapsed_seconds`` and ``candidates_scored`` (which count
        wall time and physical batch work) are deliberately excluded.
        """
        model = CostModel()
        model.add("greedy_iterations", self.iterations)
        model.add("greedy_evaluations", self.greedy_evaluations)
        model.add("lazy_skips", self.lazy_skips)
        model.add("candidates_discarded", self.candidates_discarded)
        model.add("partition_splits", self.partition_splits)
        model.add("partition_cells_created", self.partition_cells_created)
        model.add("partition_gain_queries", self.partition_gain_queries)
        model.add("symmetry_batch_selections", self.symmetry_batch_selections)
        model.add("subproblems", self.subproblems)
        model.add("reused_subproblems", self.reused_subproblems)
        return model.as_dict()


@dataclass(frozen=True, slots=True)
class ShardOutcome:
    """Per-shard provenance of a dispatched (sharded or pooled) PMC solve.

    One record per :class:`~repro.core.decomposition.Subproblem`, in the
    canonical merge order (pods ascending, residual last; plain components in
    component order).  ``digest`` is the content digest keying the warm
    :class:`~repro.core.lazy_greedy.CELFSolutionCache` -- two cycles solved
    the same shard iff their digests match, which is what the incremental
    shard-isolation gates compare.  ``kernel_cost`` is the shard's
    :class:`~repro.core.costmodel.KernelCounters` delta (exact integers,
    byte-identical across backends and across ``jobs`` settings; empty for
    warm-cache replays, which perform no kernel work).
    """

    pod: Optional[int]
    num_links: int
    num_paths: int
    num_selected: int
    digest: str
    reused: bool
    cost_counters: Dict[str, int]
    kernel_cost: Dict[str, int]


@dataclass
class PMCResult:
    """Outcome of a PMC run: the probe matrix plus provenance."""

    probe_matrix: ProbeMatrix
    selected_indices: Tuple[int, ...]
    options: PMCOptions
    stats: PMCStats
    #: Per-shard records when the solve was dispatched (``shard_by_pods`` or
    #: ``jobs > 1``); ``None`` for the plain serial path.
    shards: Optional[Tuple[ShardOutcome, ...]] = None

    @property
    def num_paths(self) -> int:
        return len(self.selected_indices)

    def shard_digests(self) -> Dict[Optional[int], str]:
        """``{pod: digest}`` of the dispatched shards (empty when serial)."""
        if not self.shards:
            return {}
        return {outcome.pod: outcome.digest for outcome in self.shards}


@informational_wall(
    "PMCStats.elapsed_seconds is informational; gates use cost_counters()"
)
def construct_probe_matrix(
    routing_matrix: RoutingMatrix,
    options: Optional[PMCOptions] = None,
    orbits: Optional[PathOrbits] = None,
) -> PMCResult:
    """Run PMC over a routing matrix and return the constructed probe matrix.

    Parameters
    ----------
    routing_matrix:
        The candidate paths and the link universe.
    options:
        :class:`PMCOptions`; defaults to ``alpha=1, beta=1`` with
        decomposition and lazy updates enabled.
    orbits:
        Precomputed :class:`~repro.topology.PathOrbits` over the routing
        matrix's paths; required when ``options.use_symmetry`` is set (the
        convenience wrapper :func:`pmc_for_topology` computes it).
    """
    options = options or PMCOptions()
    if options.use_symmetry and orbits is None:
        orbits = PathOrbits.from_walks(
            routing_matrix.topology, [p.nodes for p in routing_matrix.paths]
        )

    start = time.perf_counter()
    stats = PMCStats(fully_refined=True, coverage_satisfied=True)

    if options.shard_by_pods:
        subproblems = decompose_routing_matrix(routing_matrix, by_pods=True)
    elif options.use_decomposition:
        subproblems = decompose_routing_matrix(routing_matrix)
    else:
        subproblems = [
            Subproblem(
                link_ids=tuple(routing_matrix.link_ids),
                path_indices=tuple(range(routing_matrix.num_paths)),
            )
        ]
    stats.subproblems = len(subproblems)

    jobs = options.resolved_jobs()
    dispatch = (
        options.max_paths is None
        and not options.use_symmetry
        and (options.shard_by_pods or (jobs > 1 and len(subproblems) > 1))
    )
    shard_outcomes: Optional[Tuple[ShardOutcome, ...]] = None
    with trace_span(
        "pmc.construct",
        paths=routing_matrix.num_paths,
        subproblems=len(subproblems),
        sharded=options.shard_by_pods,
    ):
        if dispatch:
            selected, shard_outcomes = _dispatch_subproblems(
                routing_matrix, subproblems, options, stats, jobs
            )
        else:
            selected = []
            for subproblem in subproblems:
                solve_started = time.perf_counter()
                sub_selected, sub_stats = _solve_subproblem(
                    routing_matrix.incidence,
                    subproblem,
                    options,
                    orbits,
                    links_on=routing_matrix.links_on,
                )
                selected.extend(sub_selected)
                stats.merge(sub_stats)
                _record_shard_span(
                    subproblem,
                    len(sub_selected),
                    False,
                    WorkerTelemetry(wall_seconds=time.perf_counter() - solve_started),
                )
                if options.max_paths is not None and len(selected) >= options.max_paths:
                    selected = selected[: options.max_paths]
                    break

    stats.elapsed_seconds = time.perf_counter() - start
    selected_tuple = tuple(selected)
    probe_matrix = ProbeMatrix.from_selection(routing_matrix, selected_tuple)
    return PMCResult(
        probe_matrix=probe_matrix,
        selected_indices=selected_tuple,
        options=options,
        stats=stats,
        shards=shard_outcomes,
    )


def pmc_for_topology(
    topology: Topology,
    alpha: int = 1,
    beta: int = 1,
    ordered_pairs: bool = False,
    **option_overrides,
) -> PMCResult:
    """Enumerate candidate paths for *topology* and run PMC on them.

    This is the one-call entry point used by the controller and the examples:
    it wires together path enumeration, orbit computation (when symmetry is
    requested) and the greedy itself.
    """
    from ..routing import RoutingMatrix, enumerate_candidate_paths

    paths = enumerate_candidate_paths(topology, ordered=ordered_pairs)
    routing_matrix = RoutingMatrix(topology, paths)
    options = PMCOptions(alpha=alpha, beta=beta, **option_overrides)
    orbits = None
    if options.use_symmetry:
        orbits = PathOrbits.from_walks(topology, [p.nodes for p in paths])
    return construct_probe_matrix(routing_matrix, options, orbits=orbits)


# ---------------------------------------------------------------------------
# sharded / pooled dispatch
# ---------------------------------------------------------------------------

#: Per-worker solve context: ``(incidence_index, options)``.  Installed once
#: per worker process by the pool initializer -- for a numpy-backed parent
#: through a ~100-byte :class:`~repro.core.incidence.IncidenceHandle` the
#: worker attaches (zero-copy shared memory), otherwise by pickling the index
#: itself.  Per-shard data (the subproblem and its coverage slice) rides in
#: the task payload, so steady-state dispatch ships O(churned shards) bytes,
#: never the matrix.
_SHARD_CONTEXT: Optional[Tuple[IncidenceIndex, PMCOptions]] = None


def _init_shard_context(index_source, options) -> None:
    global _SHARD_CONTEXT
    if isinstance(index_source, IncidenceHandle):
        index_source = IncidenceIndex.attach(index_source)
    _SHARD_CONTEXT = (index_source, options)


def _solve_shard_task(task):
    """Pool entry point: solve one ``(subproblem, shard_counts)`` task."""
    index, options = _SHARD_CONTEXT
    subproblem, shard_counts = task
    return _solve_shard(index, subproblem, options, shard_counts=shard_counts)


@informational_wall("WorkerTelemetry.wall_seconds is informational; the kernel delta gates")
def _solve_shard(
    index: IncidenceIndex,
    subproblem: Subproblem,
    options: PMCOptions,
    coverage_counts=None,
    shard_counts=None,
):
    """Solve one shard and capture the kernel-counter delta it caused.

    The delta is read off the index's :class:`~repro.core.costmodel.KernelCounters`
    around the solve, so it is the same whether the solve ran inline (ticking
    the parent's counters) or in a worker (ticking its attached/pickled
    copy's) -- that equivalence is what keeps per-shard kernel gates
    invariant to ``jobs``.  Coverability input comes precomputed from the
    dispatching parent for the same reason -- workers must not each re-derive
    (and re-tick) it: inline callers hand the parent's full
    ``coverage_counts`` vector, pooled tasks the O(shard)-sized
    ``shard_counts`` slice that travelled in the task payload.

    Returns ``(selection, stats, telemetry)`` where the
    :class:`~repro.parallel.WorkerTelemetry` carries the kernel delta
    (deterministic) and the solve's own wall seconds (informational).
    """
    counters = index.counters
    before = counters.as_dict()
    started = time.perf_counter()
    selected, sub_stats = _solve_subproblem(
        index,
        subproblem,
        options,
        orbits=None,
        coverage_counts=coverage_counts,
        shard_counts=shard_counts,
    )
    wall = time.perf_counter() - started
    kernel_cost = counters.cost.delta_since(before)
    return selected, sub_stats, WorkerTelemetry(wall_seconds=wall, counters=kernel_cost)


def _shard_counts(index: IncidenceIndex, subproblem: Subproblem, coverage_counts):
    """The shard's slice of the coverage vector, in sorted-link (local) order.

    This is the only piece of the parent's coverage state a shard solve ever
    reads, so it is what travels in the task payload: O(shard links) integers
    instead of the O(topology) vector -- which both keeps per-cycle dispatch
    payload proportional to churn and keeps the persistent pool's worker
    context mask-independent (the masked vector changes every delta; the
    attached index does not).
    """
    return tuple(
        int(coverage_counts[index.position(link)]) for link in sorted(subproblem.link_ids)
    )


def _options_context_key(options: PMCOptions) -> str:
    """Compact digest of every option field a worker-side solve reads."""
    return (
        f"a{options.alpha}b{options.beta}z{int(options.skip_zero_gain)}"
        f"l{int(options.use_lazy_update)}m{options.max_paths}"
    )


def _shard_dispatch_context(index: IncidenceIndex):
    """``(initializer source, context id)`` for pooled shard dispatch.

    Numpy-backed indexes export (once -- the share is cached on the index)
    into shared memory and ship the handle; the python backend, or
    ``REPRO_SHM=0``, ships the pickled index exactly as before the shm plane
    existed.  The context id goes into the persistent-pool key: the share
    generation (or the index uid) changes whenever the underlying index does,
    so a warm pool can never serve a different topology's context.

    Inside a multiprocessing child (a pooled experiment harness solving with
    ``jobs > 1``) the pickle path is used unconditionally: fork children skip
    atexit, so a worker-side segment would leak until the resource tracker
    complains (see :func:`repro.parallel.in_main_process`).
    """
    if index.backend is Backend.NUMPY and shm_enabled() and in_main_process():
        share = index.share()  # repro: allow[REP008] -- the index owns and caches the share; released via release_share()/the atexit sweep
        return share.handle, f"shm:g{share.handle.generation}"
    return index, f"pickle:inc{index.uid}"


def _solve_many(
    index: IncidenceIndex,
    subproblems: Sequence[Subproblem],
    options: PMCOptions,
    jobs: int,
    coverage_counts,
) -> List[Tuple[List[int], PMCStats, WorkerTelemetry]]:
    """Solve a batch of subproblems inline (``jobs == 1``) or over a pool.

    Either way the returned list is ordered like *subproblems* and every
    entry is ``(selection, stats, telemetry)`` -- byte-identical at any
    ``jobs`` setting (telemetry wall seconds aside), because workers run the
    exact same :func:`_solve_subproblem` against the same incidence structure
    (a zero-copy shared-memory view, or a pickled copy on the fallback path)
    with the same per-shard coverage slice.  After a pooled run the workers'
    kernel deltas are folded back into the parent's index counters, so the
    parent's kernel *totals* match the inline path's too -- workers ticked
    their own copies.

    The pool itself persists across calls (same index, same options, same
    ``jobs``): the context key below hands :func:`~repro.parallel.pool_map`
    everything the initializer installs, so repeated controller/engine cycles
    reuse warm workers and pay dispatch only for the task payloads.
    """
    global _SHARD_CONTEXT
    if jobs == 1 or len(subproblems) <= 1:
        return [
            _solve_shard(index, subproblem, options, coverage_counts=coverage_counts)
            for subproblem in subproblems
        ]
    tasks = [
        (subproblem, _shard_counts(index, subproblem, coverage_counts))
        for subproblem in subproblems
    ]
    source, context_id = _shard_dispatch_context(index)
    try:
        results = pool_map(
            _solve_shard_task,
            tasks,
            jobs=jobs,
            initializer=_init_shard_context,
            initargs=(source, options),
            context_key=f"pmc:{context_id}:{_options_context_key(options)}",
        )
    finally:
        _SHARD_CONTEXT = None
    merge_worker_telemetry(
        (telemetry for _, _, telemetry in results),
        cost=index.counters.cost,
    )
    return results


def _dispatch_subproblems(
    routing_matrix: "RoutingMatrix",
    subproblems: Sequence[Subproblem],
    options: PMCOptions,
    stats: PMCStats,
    jobs: int,
    coverage_counts=None,
) -> Tuple[List[int], Tuple[ShardOutcome, ...]]:
    """Solve subproblems (inline or over a process pool) and merge covers.

    The merge is deterministic: shard selections are concatenated in the
    canonical subproblem order (pods ascending, residual last) keeping each
    shard's greedy selection order; should two shards ever nominate the same
    candidate row, the first (lowest-shard) occurrence wins -- the canonical
    path id tie-break.  Because the order depends only on the subproblem
    list, the result is byte-identical at any ``jobs`` setting.
    """
    index = routing_matrix.incidence
    if coverage_counts is None:
        coverage_counts = index.coverage_counts()
    results = _solve_many(index, subproblems, options, jobs, coverage_counts)

    selected: List[int] = []
    seen: Set[int] = set()
    outcomes: List[ShardOutcome] = []
    for subproblem, (sub_selected, sub_stats, telemetry) in zip(subproblems, results):
        for row in sub_selected:
            if row not in seen:
                seen.add(row)
                selected.append(row)
        stats.merge(sub_stats)
        # Parent-side span emission in canonical shard order: workers never
        # trace themselves, so the span tree is invariant to ``jobs``.
        _record_shard_span(subproblem, len(sub_selected), False, telemetry)
        outcomes.append(
            ShardOutcome(
                pod=subproblem.pod,
                num_links=subproblem.num_links,
                num_paths=subproblem.num_paths,
                num_selected=len(sub_selected),
                digest=_subproblem_digest(
                    index, subproblem.link_ids, subproblem.path_indices, options
                ).hex(),
                reused=False,
                cost_counters=sub_stats.cost_counters(),
                kernel_cost=dict(telemetry.counters),
            )
        )
    return selected, tuple(outcomes)


def _record_shard_span(
    subproblem: Subproblem, num_selected: int, reused: bool, telemetry: WorkerTelemetry
) -> None:
    """One ``pmc.solve`` span per shard, emitted by the dispatching parent."""
    labels: Dict[str, object] = {
        "paths": subproblem.num_paths,
        "links": subproblem.num_links,
        "selected": num_selected,
        "reused": reused,
    }
    if subproblem.pod is not None:
        labels["pod"] = subproblem.pod
    trace_record("pmc.solve", wall_seconds=telemetry.wall_seconds, **labels)


# ---------------------------------------------------------------------------
# masked (incremental) construction
# ---------------------------------------------------------------------------

def _subproblem_digest(index, link_ids: Sequence[int], rows: Sequence[int], options: PMCOptions) -> bytes:
    """Compact content digest of a decomposition subproblem.

    Two subproblems with the same digest have the same link universe, the same
    surviving candidate rows and the same solver options, hence the same CELF
    selection -- the digest keys :class:`CELFSolutionCache` without retaining
    multi-hundred-thousand-entry row tuples per cache slot.
    """
    hasher = hashlib.sha256()
    if index.backend is Backend.NUMPY:
        hasher.update(_np.asarray(link_ids, dtype=_np.int64).tobytes())
        hasher.update(b"|")
        hasher.update(_np.asarray(rows, dtype=_np.int64).tobytes())
    else:
        import array

        hasher.update(array.array("q", link_ids).tobytes())
        hasher.update(b"|")
        hasher.update(array.array("q", rows).tobytes())
    hasher.update(
        f"|a{options.alpha}b{options.beta}z{int(options.skip_zero_gain)}"
        f"l{int(options.use_lazy_update)}m{options.max_paths}".encode()
    )
    return hasher.digest()


@informational_wall(
    "PMCStats.elapsed_seconds is informational; gates use cost_counters()"
)
def construct_probe_matrix_masked(
    routing_matrix: "RoutingMatrix",
    options: Optional[PMCOptions] = None,
    warm: Optional[CELFSolutionCache] = None,
) -> PMCResult:
    """PMC over the *active* rows of a link-masked routing matrix (warm-startable).

    This is the incremental sibling of :func:`construct_probe_matrix`: instead
    of rebuilding paths and incidence for the post-delta topology, the caller
    masks the failed links on the cached
    :class:`~repro.core.incidence.IncidenceIndex`
    (:meth:`~repro.core.incidence.IncidenceIndex.apply_link_mask` /
    :meth:`~repro.core.incidence.IncidenceIndex.revert_link_mask`) and this
    function runs the greedy over the surviving rows.  The selection --
    expressed as row indices into the *full* routing matrix -- is
    byte-identical to what a cold :func:`construct_probe_matrix` over a
    freshly built routing matrix containing only the surviving paths would
    select, because every solver input matches:

    * the decomposition is computed over the active rows only (masked columns
      surface as path-less singleton components, exactly like fully-failed
      links do in a cold rebuild),
    * coverability is judged against :meth:`active_coverage_counts`, and
    * the CELF heap is seeded with the active rows in ascending row order,
      which is the same relative order a cold rebuild's re-densified rows
      have.

    ``warm`` is an optional :class:`CELFSolutionCache` (or, for the
    pod-sharded control plane, a :class:`ShardedSolutionCache` holding one
    bucket per pod): subproblems whose digest (links, surviving rows,
    options) matches a previously solved one replay the cached selection
    without touching a heap, so steady-state cycles with little or no churn
    skip CELF almost entirely.  With ``options.shard_by_pods`` the
    decomposition is the pod sharding of
    :func:`~repro.core.decomposition.pod_shards_for_matrix` and churn
    confined to one pod re-solves only that pod's shard plus the shared
    residual shard; every other shard keeps its digest and replays.
    Cache misses are dispatched over ``options.jobs`` worker processes.

    Symmetry batching is not supported here (orbit indices are only
    meaningful on the matrix the orbits were computed for); callers that need
    ``use_symmetry`` must take the full-rebuild path.
    """
    options = options or PMCOptions()
    if options.use_symmetry:
        raise ValueError(
            "construct_probe_matrix_masked does not support use_symmetry; "
            "fall back to a full rebuild for symmetry-enabled configurations"
        )

    start = time.perf_counter()
    stats = PMCStats(fully_refined=True, coverage_satisfied=True)

    index = routing_matrix.incidence
    active = index.active_rows()
    active_counts = index.active_coverage_counts()

    if options.shard_by_pods:
        subproblems = pod_shards_for_matrix(routing_matrix, rows=active)
    elif options.use_decomposition:
        subproblems = [
            Subproblem(link_ids=links, path_indices=rows)
            for links, rows in index.components(rows=active)
        ]
    else:
        subproblems = [
            Subproblem(
                link_ids=tuple(routing_matrix.link_ids),
                path_indices=tuple(active),
            )
        ]
    stats.subproblems = len(subproblems)

    def bucket_for(subproblem: Subproblem) -> Optional[CELFSolutionCache]:
        if isinstance(warm, ShardedSolutionCache):
            return warm.bucket(subproblem.pod)
        return warm

    if options.max_paths is not None:
        # The path cap's early stop crosses subproblem boundaries, so this
        # flavour stays strictly serial (and reports no per-shard records).
        selected = _masked_serial_capped(
            routing_matrix, subproblems, options, stats, active_counts, bucket_for
        )
        stats.elapsed_seconds = time.perf_counter() - start
        selected_tuple = tuple(selected)
        return PMCResult(
            probe_matrix=ProbeMatrix.from_selection(routing_matrix, selected_tuple),
            selected_indices=selected_tuple,
            options=options,
            stats=stats,
        )

    # Phase 1: replay every subproblem whose digest survives in the warm
    # cache.  Phase 2: dispatch the remaining solves (inline or pooled).
    # Phase 3: merge in canonical subproblem order, exactly like the cold
    # dispatch -- so warm, cold, serial and pooled runs all agree byte for
    # byte on the same inputs.
    with trace_span(
        "pmc.construct",
        paths=routing_matrix.num_paths,
        subproblems=len(subproblems),
        sharded=options.shard_by_pods,
        masked=True,
    ):
        digests = [
            _subproblem_digest(index, sub.link_ids, sub.path_indices, options)
            for sub in subproblems
        ]
        results: List[Optional[Tuple[List[int], PMCStats, WorkerTelemetry]]] = [
            None
        ] * len(subproblems)
        reused = [False] * len(subproblems)
        to_solve: List[int] = []
        for i, subproblem in enumerate(subproblems):
            cached = bucket_for(subproblem).get(digests[i]) if warm is not None else None
            if cached is None:
                to_solve.append(i)
                continue
            cached_selected, cached_stats = cached
            sub_stats = PMCStats(**cached_stats)
            sub_stats.reused_subproblems = 1
            # Replayed selections cost no scoring (or kernel) work this cycle.
            sub_stats.iterations = 0
            sub_stats.candidates_scored = 0
            sub_stats.candidates_discarded = 0
            results[i] = (list(cached_selected), sub_stats, WorkerTelemetry())
            reused[i] = True

        if to_solve:
            solved = _solve_many(
                index,
                [subproblems[i] for i in to_solve],
                options,
                options.resolved_jobs(),
                active_counts,
            )
            for i, result in zip(to_solve, solved):
                results[i] = result
                if warm is not None:
                    sub_selected, sub_stats, _telemetry = result
                    bucket_for(subproblems[i]).put(
                        digests[i],
                        (
                            tuple(sub_selected),
                            dict(
                                fully_refined=sub_stats.fully_refined,
                                coverage_satisfied=sub_stats.coverage_satisfied,
                                uncoverable_links=sub_stats.uncoverable_links,
                            ),
                        ),
                    )

        selected: List[int] = []
        seen: Set[int] = set()
        outcomes: List[ShardOutcome] = []
        for i, subproblem in enumerate(subproblems):
            sub_selected, sub_stats, telemetry = results[i]
            for row in sub_selected:
                if row not in seen:
                    seen.add(row)
                    selected.append(row)
            stats.merge(sub_stats)
            _record_shard_span(subproblem, len(sub_selected), reused[i], telemetry)
            outcomes.append(
                ShardOutcome(
                    pod=subproblem.pod,
                    num_links=subproblem.num_links,
                    num_paths=subproblem.num_paths,
                    num_selected=len(sub_selected),
                    digest=digests[i].hex(),
                    reused=reused[i],
                    cost_counters=sub_stats.cost_counters(),
                    kernel_cost=dict(telemetry.counters),
                )
            )

    stats.elapsed_seconds = time.perf_counter() - start
    selected_tuple = tuple(selected)
    probe_matrix = ProbeMatrix.from_selection(routing_matrix, selected_tuple)
    return PMCResult(
        probe_matrix=probe_matrix,
        selected_indices=selected_tuple,
        options=options,
        stats=stats,
        shards=tuple(outcomes),
    )


def _masked_serial_capped(
    routing_matrix: "RoutingMatrix",
    subproblems: Sequence[Subproblem],
    options: PMCOptions,
    stats: PMCStats,
    active_counts,
    bucket_for,
) -> List[int]:
    """The legacy serial masked loop for ``max_paths``-capped runs."""
    index = routing_matrix.incidence
    selected: List[int] = []
    for subproblem in subproblems:
        digest = _subproblem_digest(
            index, subproblem.link_ids, subproblem.path_indices, options
        )
        bucket = bucket_for(subproblem)
        cached = bucket.get(digest) if bucket is not None else None
        if cached is not None:
            sub_selected, cached_stats = cached
            sub_stats = PMCStats(**cached_stats)
            sub_stats.reused_subproblems = 1
            sub_stats.iterations = 0
            sub_stats.candidates_scored = 0
            sub_stats.candidates_discarded = 0
        else:
            sub_selected, sub_stats = _solve_subproblem(
                index,
                subproblem,
                options,
                orbits=None,
                coverage_counts=active_counts,
            )
            if bucket is not None:
                bucket.put(
                    digest,
                    (
                        tuple(sub_selected),
                        dict(
                            fully_refined=sub_stats.fully_refined,
                            coverage_satisfied=sub_stats.coverage_satisfied,
                            uncoverable_links=sub_stats.uncoverable_links,
                        ),
                    ),
                )
        selected.extend(sub_selected)
        stats.merge(sub_stats)
        if len(selected) >= options.max_paths:
            selected = selected[: options.max_paths]
            break
    return selected


# ---------------------------------------------------------------------------
# subproblem solver
# ---------------------------------------------------------------------------

def _solve_subproblem(
    index: IncidenceIndex,
    subproblem: Subproblem,
    options: PMCOptions,
    orbits: Optional[PathOrbits],
    coverage_counts=None,
    shard_counts=None,
    links_on=None,
) -> Tuple[List[int], PMCStats]:
    """Greedy-solve one subproblem against an incidence index.

    Coverability comes from exactly one of three sources, all producing the
    same judgement: ``shard_counts`` (the shard's precomputed slice, local-id
    order -- what pooled tasks carry), ``coverage_counts`` (the full vector a
    dispatching parent precomputed), or -- when neither is given -- the
    index's own :meth:`~repro.core.incidence.IncidenceIndex.coverage_counts`.
    ``links_on`` (``path row -> link id set``) is only consulted by the
    symmetry batch, which never runs on the dispatch path.
    """
    stats = PMCStats()
    link_ids = sorted(subproblem.link_ids)
    path_indices = list(subproblem.path_indices)
    path_index_set = set(path_indices)

    if not link_ids or not path_indices:
        # Links that no candidate path can probe are reported as uncoverable;
        # coverage is vacuously satisfied among coverable links, but the
        # identifiability target cannot be met for them.
        stats.fully_refined = not link_ids
        stats.coverage_satisfied = True
        stats.uncoverable_links = tuple(link_ids)
        return [], stats

    # The subproblem is solved on the dense local universe 0..n-1 (links in
    # sorted-id order, matching the physical numbering of ExtendedLinkSpace):
    # weights, coverage targets and the refinement partition are flat vectors
    # and every per-path query is a gather over the projected CSR row.
    kernels = index.kernels
    num_local = len(link_ids)
    proj = index.projection(link_ids)

    extended = ExtendedLinkSpace(link_ids, options.beta)
    partition = RefinablePartition(extended.num_extended, backend=index.backend)
    weights = kernels.int_zeros(num_local)

    if options.beta >= 2:
        # Virtual-link ids per path, computed on demand and cached (the lazy
        # greedy revisits candidates).  For beta <= 1 the extended space *is*
        # the local physical space, so the projected row doubles as ext row.
        ext_cache: Dict[int, object] = {}

        def ext_row(path_index: int):
            cached = ext_cache.get(path_index)
            if cached is None:
                covered = extended.extended_links_on_path(index.row_link_set(path_index))
                cached = kernels.int_array(sorted(covered))
                ext_cache[path_index] = cached
            return cached

    else:
        ext_row = proj.row

    # "Coverable" is judged against the full candidate set, exactly like the
    # seed implementation (a link with zero candidate paths anywhere can never
    # be covered, even if this subproblem has paths).  Masked (incremental)
    # runs pass the active-row counts explicitly so coverability is judged
    # against the surviving candidates only -- the same vector a from-scratch
    # rebuild on the post-delta topology would compute.
    if shard_counts is not None:
        # Pooled dispatch: the shard's slice arrived in the task payload,
        # indexed by local id (sorted-link order) -- value-identical to the
        # global-vector lookups below, just O(shard) instead of O(topology).
        coverable_locals = [
            local for local in range(num_local) if shard_counts[local]
        ]
        stats.uncoverable_links = tuple(
            link for local, link in enumerate(link_ids) if not shard_counts[local]
        )
    else:
        global_counts = (
            coverage_counts if coverage_counts is not None else index.coverage_counts()
        )
        coverable_locals = [
            local for local, link in enumerate(link_ids) if global_counts[index.position(link)]
        ]
        stats.uncoverable_links = tuple(
            link for link in link_ids if not global_counts[index.position(link)]
        )
    under_covered = kernels.bool_zeros(num_local)
    under_count = 0
    if options.alpha > 0 and coverable_locals:
        kernels.set_true(under_covered, kernels.int_array(coverable_locals))
        under_count = len(coverable_locals)

    def score(path_index: int) -> int:
        stats.candidates_scored += 1
        weight_term = kernels.sum_at(weights, proj.row(path_index))
        return weight_term - partition.cells_touched(ext_row(path_index))

    # Batched rescoring (numpy backend, physical link space): the whole batch
    # is scored with two segmented kernels instead of per-candidate gathers.
    # For beta >= 2 the virtual-link rows are not CSR slices, so scoring stays
    # per-candidate there.
    use_batch_scoring = index.backend is Backend.NUMPY and options.beta <= 1

    def rescore_batch(items: List[int]) -> List[int]:
        stats.candidates_scored += len(items)
        segments, locals_ = proj.batch(items)
        weight_terms = _np.bincount(
            segments, weights=weights[locals_], minlength=len(items)
        ).astype(_np.int64)
        cells = partition.cells_touched_segmented(segments, locals_, len(items))
        return (weight_terms - cells).tolist()

    # Every non-empty path initially touches the single cell with zero weight,
    # so its initial score is exactly -1; empty paths score 0 and will be
    # discarded on pop.
    row_lengths = index.row_lengths()
    initial = (((-1 if row_lengths[i] else 0), i) for i in path_indices)
    if use_batch_scoring and options.use_lazy_update:
        heap = BatchCELFHeap(initial)
    else:
        heap = LazyMinHeap(initial)

    selected: List[int] = []
    selected_set: Set[int] = set()
    identifiability_needed = options.beta > 0
    iteration = 0

    def goals_met() -> bool:
        refinement_done = partition.fully_refined if identifiability_needed else True
        return refinement_done and under_count == 0

    def marginal_gain(path_index: int) -> Tuple[int, int]:
        """(new cells the path would split off, under-covered links it crosses)."""
        covers = kernels.count_true_at(under_covered, proj.row(path_index))
        splits = 0
        if identifiability_needed and not partition.fully_refined:
            splits = partition.splits_gained(ext_row(path_index))
        return splits, covers

    def apply_selection(path_index: int) -> None:
        nonlocal under_count
        cols = proj.row(path_index)
        if identifiability_needed:
            partition.split(ext_row(path_index))
        kernels.add_at(weights, cols, 1)
        if under_count:
            under_count -= kernels.clear_if_reached(
                under_covered, weights, cols, options.alpha
            )
        selected.append(path_index)
        selected_set.add(path_index)

    while not goals_met():
        if options.max_paths is not None and len(selected) >= options.max_paths:
            break
        iteration += 1
        if options.use_lazy_update:
            if use_batch_scoring:
                popped = heap.pop_lazy_batch(iteration, rescore_batch)
            else:
                popped = heap.pop_lazy(iteration, score)
        elif use_batch_scoring:
            popped = heap.pop_eager_batch(rescore_batch)
        else:
            popped = heap.pop_eager(score)
        if popped is None:
            break
        _, path_index = popped
        if path_index in selected_set:
            continue

        splits, covers = marginal_gain(path_index)
        if options.skip_zero_gain and splits == 0 and covers == 0:
            stats.candidates_discarded += 1
            continue

        apply_selection(path_index)
        stats.iterations += 1

        if options.use_symmetry and orbits is not None:
            _select_orbit_mates(
                path_index,
                orbits,
                path_index_set,
                selected_set,
                links_on,
                marginal_gain,
                apply_selection,
                options,
                stats,
            )

    stats.fully_refined = partition.fully_refined or not identifiability_needed
    stats.coverage_satisfied = under_count == 0
    stats.greedy_evaluations = heap.evaluations
    stats.lazy_skips = heap.lazy_skips
    stats.partition_splits = partition.splits_performed
    stats.partition_cells_created = partition.cells_created
    stats.partition_gain_queries = partition.gain_queries
    return selected, stats


def _select_orbit_mates(
    seed_path: int,
    orbits: PathOrbits,
    path_index_set: Set[int],
    selected_set: Set[int],
    links_on,
    marginal_gain,
    apply_selection,
    options: PMCOptions,
    stats: PMCStats,
) -> None:
    """Batch-select topologically isomorphic images of a just-selected path.

    Only images that (a) belong to the same subproblem, (b) are link-disjoint
    from every path selected in this batch, and (c) still provide marginal
    gain are taken.  Disjointness mirrors the paper's example (a path spanning
    pods 1-2 is followed by its image spanning pods 3-4) and bounds the batch
    size by ``#links / path-length``.
    """
    batch_links: Set[int] = set(links_on(seed_path))
    orbit = orbits.orbit_of(seed_path)
    for mate in orbits.orbit_members(orbit):
        if mate == seed_path or mate in selected_set or mate not in path_index_set:
            continue
        mate_links = links_on(mate)
        if batch_links & mate_links:
            continue
        if options.max_paths is not None and len(selected_set) >= options.max_paths:
            break
        splits, covers = marginal_gain(mate)
        if splits == 0 and covers == 0:
            continue
        apply_selection(mate)
        batch_links.update(mate_links)
        stats.symmetry_batch_selections += 1
