"""Problem decomposition into independent subproblems (§4.3, Observation 1).

Build the bipartite graph with paths on one side and links on the other (a
path node is adjacent to the link nodes it traverses).  Connected components
of this graph are independent probe-matrix / localization subproblems: no path
of one component crosses a link of another, so the greedy (or PLL) can run on
each component separately -- and in the paper's case, in parallel.

The component computation is a single union-find pass over the links of each
path, i.e. linear in the size of the routing matrix, matching the "linear
time by traversing the bipartite graph once" remark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..routing import RoutingMatrix

__all__ = ["Subproblem", "decompose_routing_matrix", "decompose_by_link_sets"]


class _UnionFind:
    """Minimal union-find with path compression and union by size."""

    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}

    def add(self, item: int) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]


@dataclass
class Subproblem:
    """An independent slice of the probe-path selection problem.

    Attributes
    ----------
    link_ids:
        The physical links of this component (sorted).
    path_indices:
        Indices (into the parent routing matrix) of the candidate paths whose
        links all belong to this component.
    """

    link_ids: Tuple[int, ...]
    path_indices: Tuple[int, ...]

    @property
    def num_links(self) -> int:
        return len(self.link_ids)

    @property
    def num_paths(self) -> int:
        return len(self.path_indices)


def decompose_by_link_sets(
    path_link_sets: Sequence[frozenset], link_universe: Sequence[int]
) -> List[Subproblem]:
    """Decompose from raw path->link-set data (no RoutingMatrix required)."""
    uf = _UnionFind()
    for link in link_universe:
        uf.add(link)
    for links in path_link_sets:
        links = [l for l in links if l in uf._parent]
        if not links:
            continue
        first = links[0]
        for other in links[1:]:
            uf.union(first, other)

    groups: Dict[int, List[int]] = {}
    for link in link_universe:
        groups.setdefault(uf.find(link), []).append(link)

    # Assign each path to the component of its first link.  Paths with no
    # links inside the universe are dropped (they cannot help any component).
    path_groups: Dict[int, List[int]] = {root: [] for root in groups}
    for index, links in enumerate(path_link_sets):
        anchor = next((l for l in links if l in uf._parent), None)
        if anchor is None:
            continue
        path_groups[uf.find(anchor)].append(index)

    subproblems = [
        Subproblem(link_ids=tuple(sorted(links)), path_indices=tuple(path_groups[root]))
        for root, links in groups.items()
    ]
    # Deterministic ordering: by smallest link id.
    subproblems.sort(key=lambda sp: sp.link_ids[0] if sp.link_ids else -1)
    return subproblems


def decompose_routing_matrix(routing_matrix: RoutingMatrix) -> List[Subproblem]:
    """Connected components of the path/link bipartite graph of a routing matrix."""
    link_sets = [routing_matrix.links_on(i) for i in range(routing_matrix.num_paths)]
    return decompose_by_link_sets(link_sets, routing_matrix.link_ids)
