"""Problem decomposition into independent subproblems (§4.3, Observation 1).

Build the bipartite graph with paths on one side and links on the other (a
path node is adjacent to the link nodes it traverses).  Connected components
of this graph are independent probe-matrix / localization subproblems: no path
of one component crosses a link of another, so the greedy (or PLL) can run on
each component separately -- and in the paper's case, in parallel.

The component computation is a single union-find pass over the CSR rows of
the shared :class:`~repro.core.incidence.IncidenceIndex`, i.e. linear in the
size of the routing matrix, matching the "linear time by traversing the
bipartite graph once" remark.  The set-based entry point
:func:`decompose_by_link_sets` survives for external callers that hold raw
link sets rather than an index (PLL now decomposes through
``incidence.components(rows=...)`` directly); it simply builds a transient
index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence, Tuple

from .incidence import IncidenceIndex

if TYPE_CHECKING:  # imported lazily at runtime to avoid a routing<->core cycle
    from ..routing import RoutingMatrix

__all__ = ["Subproblem", "decompose_routing_matrix", "decompose_by_link_sets"]


@dataclass
class Subproblem:
    """An independent slice of the probe-path selection problem.

    Attributes
    ----------
    link_ids:
        The physical links of this component (sorted).
    path_indices:
        Indices (into the parent routing matrix) of the candidate paths whose
        links all belong to this component.
    """

    link_ids: Tuple[int, ...]
    path_indices: Tuple[int, ...]

    @property
    def num_links(self) -> int:
        return len(self.link_ids)

    @property
    def num_paths(self) -> int:
        return len(self.path_indices)


def _subproblems_from_components(
    components: List[Tuple[Tuple[int, ...], Tuple[int, ...]]]
) -> List[Subproblem]:
    return [
        Subproblem(link_ids=links, path_indices=rows) for links, rows in components
    ]


def decompose_by_link_sets(
    path_link_sets: Sequence[frozenset], link_universe: Sequence[int]
) -> List[Subproblem]:
    """Decompose from raw path->link-set data (no RoutingMatrix required)."""
    index = IncidenceIndex(path_link_sets, tuple(link_universe))
    return _subproblems_from_components(index.components())


def decompose_routing_matrix(routing_matrix: "RoutingMatrix") -> List[Subproblem]:
    """Connected components of the path/link bipartite graph of a routing matrix."""
    return _subproblems_from_components(routing_matrix.incidence.components())
