"""Problem decomposition into independent subproblems (§4.3, Observation 1).

Build the bipartite graph with paths on one side and links on the other (a
path node is adjacent to the link nodes it traverses).  Connected components
of this graph are independent probe-matrix / localization subproblems: no path
of one component crosses a link of another, so the greedy (or PLL) can run on
each component separately -- and in the paper's case, in parallel.

The component computation is a single union-find pass over the CSR rows of
the shared :class:`~repro.core.incidence.IncidenceIndex`, i.e. linear in the
size of the routing matrix, matching the "linear time by traversing the
bipartite graph once" remark.  The set-based entry point
:func:`decompose_by_link_sets` survives for external callers that hold raw
link sets rather than an index (PLL now decomposes through
``incidence.components(rows=...)`` directly); it simply builds a transient
index.

**Pod sharding.**  Data-center candidate sets are usually one connected
component (every inter-pod path couples the pods through the core), so exact
decomposition yields no parallelism at scale.  The pod-sharded control plane
instead shards *by pod*: a path whose links all live inside one pod goes to
that pod's shard, and every path that spans pods -- or crosses links without
a single owning pod, such as aggregation-core links -- goes to a dedicated
**residual shard** (:data:`RESIDUAL_POD`), never silently to pod 0.  Links
are grouped with the paths that can probe them (a shard's universe is the
union of its paths' links), and universe links no shard's paths touch are
orphaned into the residual shard so they surface as uncoverable exactly like
path-less singleton components do in the exact decomposition.  Shards are
emitted in canonical order -- pods ascending, residual last -- independent of
pod enumeration order, which is what makes the parallel merge deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..contracts import pool_payload
from .incidence import IncidenceIndex

if TYPE_CHECKING:  # imported lazily at runtime to avoid a routing<->core cycle
    from ..routing import RoutingMatrix
    from ..topology import Topology

__all__ = [
    "RESIDUAL_POD",
    "Subproblem",
    "decompose_routing_matrix",
    "decompose_by_link_sets",
    "link_pod_map",
    "pod_shards_for_matrix",
]

#: ``Subproblem.pod`` value of the residual shard: the shard holding every
#: cross-pod path, every link without a single owning pod and every orphaned
#: (path-less) universe link.  Distinct from ``None``, which marks plain
#: connected-component subproblems that were never pod-sharded at all.
RESIDUAL_POD: int = -1


@pool_payload
@dataclass(frozen=True, slots=True)
class Subproblem:
    """An independent slice of the probe-path selection problem.

    Slotted, frozen and built from plain tuples so instances hash, compare
    by value and cross a process boundary by pickling -- pod-sharded solves
    ship one ``Subproblem`` per pool task.

    Attributes
    ----------
    link_ids:
        The physical links of this shard/component (sorted).
    path_indices:
        Indices (into the parent routing matrix) of the candidate paths
        assigned to this shard/component.
    pod:
        ``None`` for exact connected-component subproblems; the owning pod
        number for pod shards; :data:`RESIDUAL_POD` for the residual shard.
    """

    link_ids: Tuple[int, ...]
    path_indices: Tuple[int, ...]
    pod: Optional[int] = None

    @property
    def num_links(self) -> int:
        return len(self.link_ids)

    @property
    def num_paths(self) -> int:
        return len(self.path_indices)


def _subproblems_from_components(
    components: List[Tuple[Tuple[int, ...], Tuple[int, ...]]]
) -> List[Subproblem]:
    return [
        Subproblem(link_ids=links, path_indices=rows) for links, rows in components
    ]


def link_pod_map(
    topology: "Topology", link_ids: Optional[Iterable[int]] = None
) -> Dict[int, Optional[int]]:
    """Owning pod of every link: ``p`` iff both endpoints live in pod ``p``.

    Links whose endpoints disagree on the pod, or touch a pod-less device
    (core switches, VL2 intermediates, BCube levels), map to ``None`` and are
    handled by the residual shard.
    """
    if link_ids is None:
        link_ids = [link.link_id for link in topology.switch_links]
    mapping: Dict[int, Optional[int]] = {}
    for link_id in link_ids:
        link = topology.link(link_id)
        pod_a = topology.node(link.a).pod
        pod_b = topology.node(link.b).pod
        mapping[link_id] = pod_a if (pod_a is not None and pod_a == pod_b) else None
    return mapping


def _pod_shards(
    row_items: Iterable[Tuple[int, Iterable[int]]],
    link_universe: Sequence[int],
    link_pods: Dict[int, Optional[int]],
    pod_order: Optional[Sequence[int]] = None,
) -> List[Subproblem]:
    """Shard ``(row, links)`` items by owning pod, cross-pod rows to residual.

    ``pod_order`` is an iteration hint only: shards always come back pods
    ascending with the residual shard last, whatever order (or subset) the
    caller enumerates pods in.  The invariance is load-bearing -- the
    parallel merge concatenates shard selections in this canonical order.
    """
    universe = sorted(set(link_universe))
    universe_set = set(universe)
    shard_rows: Dict[int, List[int]] = {}
    shard_links: Dict[int, Set[int]] = {}
    for row, links in row_items:
        in_universe = [link for link in links if link in universe_set]
        if not in_universe:
            # Rows with no in-universe links are dropped, matching
            # IncidenceIndex.components() and the seed decomposition.
            continue
        pods = {link_pods.get(link) for link in in_universe}
        if len(pods) == 1 and None not in pods:
            shard = pods.pop()
        else:
            shard = RESIDUAL_POD
        shard_rows.setdefault(shard, []).append(int(row))
        shard_links.setdefault(shard, set()).update(in_universe)

    touched: Set[int] = set()
    for links in shard_links.values():
        touched.update(links)
    orphans = [link for link in universe if link not in touched]
    if orphans:
        # Universe links no shard's paths can probe: orphaned into the
        # residual shard so they are reported uncoverable there, exactly as
        # path-less singleton components surface in the exact decomposition.
        shard_rows.setdefault(RESIDUAL_POD, [])
        shard_links.setdefault(RESIDUAL_POD, set()).update(orphans)

    pods_present = sorted(pod for pod in shard_rows if pod != RESIDUAL_POD)
    if pod_order is not None:
        # Honor the hint for iteration, then canonicalise: the output must
        # not depend on the enumeration order handed in.
        hinted = [pod for pod in pod_order if pod in shard_rows and pod != RESIDUAL_POD]
        hinted += [pod for pod in pods_present if pod not in set(hinted)]
        pods_present = sorted(hinted)
    order = pods_present + ([RESIDUAL_POD] if RESIDUAL_POD in shard_rows else [])
    return [
        Subproblem(
            link_ids=tuple(sorted(shard_links[pod])),
            path_indices=tuple(shard_rows[pod]),
            pod=pod,
        )
        for pod in order
    ]


def decompose_by_link_sets(
    path_link_sets: Sequence[frozenset],
    link_universe: Sequence[int],
    link_pods: Optional[Dict[int, Optional[int]]] = None,
    pod_order: Optional[Sequence[int]] = None,
) -> List[Subproblem]:
    """Decompose from raw path->link-set data (no RoutingMatrix required).

    Without ``link_pods`` this is the exact connected-component decomposition.
    With ``link_pods`` (link id -> owning pod or ``None``) the paths are
    pod-sharded instead: single-pod paths go to their pod's shard and every
    path spanning pods lands in the residual shard (``pod == RESIDUAL_POD``),
    never in pod 0.
    """
    if link_pods is not None:
        return _pod_shards(
            enumerate(path_link_sets), link_universe, link_pods, pod_order=pod_order
        )
    index = IncidenceIndex(path_link_sets, tuple(link_universe))
    return _subproblems_from_components(index.components())


def pod_shards_for_matrix(
    routing_matrix: "RoutingMatrix",
    rows: Optional[Sequence[int]] = None,
    pod_order: Optional[Sequence[int]] = None,
) -> List[Subproblem]:
    """Pod-shard a routing matrix's candidate rows (all rows, or a subset).

    ``rows`` restricts the sharding to the given path indices -- the masked
    (incremental) flow passes the active rows, so links whose candidates all
    got masked orphan into the residual shard exactly like fully-failed links
    do in a cold rebuild.  The link universe is always the full index
    universe, keeping uncoverable-link reporting identical between cold and
    masked sharded runs.
    """
    index = routing_matrix.incidence
    link_pods = link_pod_map(routing_matrix.topology, index.link_ids)
    considered = range(index.num_paths) if rows is None else rows
    index.counters.tick("pod_shards", len(considered))
    row_items = ((row, index.row_link_set(row)) for row in considered)
    return _pod_shards(row_items, index.link_ids, link_pods, pod_order=pod_order)


def decompose_routing_matrix(
    routing_matrix: "RoutingMatrix",
    by_pods: bool = False,
    pod_order: Optional[Sequence[int]] = None,
) -> List[Subproblem]:
    """Subproblems of a routing matrix.

    The default is the exact decomposition: connected components of the
    path/link bipartite graph.  ``by_pods=True`` switches to the pod-sharded
    approximate decomposition (see :func:`pod_shards_for_matrix`), the basis
    of the parallel control plane.
    """
    if by_pods:
        return pod_shards_for_matrix(routing_matrix, pod_order=pod_order)
    return _subproblems_from_components(routing_matrix.incidence.components())
