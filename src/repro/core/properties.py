"""Exact verification of the probe-matrix properties: coverage and identifiability.

These checkers are the ground truth the PMC algorithm is tested against.  They
are exponential in ``beta`` (all failure combinations up to size ``beta`` are
enumerated), so they are meant for the scaled-down instances used in tests and
benchmarks, not for production-size fabrics -- which is exactly how the paper
uses the definitions (the construction guarantees the property; the definition
is only enumerated to validate).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .probe_matrix import ProbeMatrix

__all__ = [
    "check_coverage",
    "coverage_level",
    "check_identifiability",
    "identifiability_level",
    "find_confusable_failure_sets",
]


def check_coverage(probe_matrix: ProbeMatrix, alpha: int) -> bool:
    """``True`` iff every link of the universe lies on at least ``alpha`` probe paths."""
    return probe_matrix.satisfies_coverage(alpha)


def coverage_level(probe_matrix: ProbeMatrix) -> int:
    """The largest ``alpha`` for which the matrix is ``alpha``-covering (0 if a link is uncovered)."""
    return probe_matrix.min_coverage()


def _syndromes_up_to(
    probe_matrix: ProbeMatrix, beta: int
) -> Dict[FrozenSet[int], FrozenSet[int]]:
    """Map each failure set of size 1..beta to its loss syndrome."""
    syndromes: Dict[FrozenSet[int], FrozenSet[int]] = {}
    links = probe_matrix.link_ids
    single: Dict[int, FrozenSet[int]] = {
        link: frozenset(probe_matrix.paths_through(link)) for link in links
    }
    for size in range(1, beta + 1):
        for combo in combinations(links, size):
            syndrome: FrozenSet[int] = frozenset()
            for link in combo:
                syndrome = syndrome | single[link]
            syndromes[frozenset(combo)] = syndrome
    return syndromes


def check_identifiability(probe_matrix: ProbeMatrix, beta: int) -> bool:
    """Exact ``beta``-identifiability check.

    A probe matrix is ``beta``-identifiable when every two distinct failure
    sets of at most ``beta`` links produce different syndromes, and every
    non-empty failure set produces a non-empty syndrome (otherwise it would be
    confused with "no failure").
    """
    if beta <= 0:
        return True
    syndromes = _syndromes_up_to(probe_matrix, beta)
    seen: Dict[FrozenSet[int], FrozenSet[int]] = {}
    for failure_set, syndrome in syndromes.items():
        if not syndrome:
            return False
        previous = seen.get(syndrome)
        if previous is not None and previous != failure_set:
            return False
        seen[syndrome] = failure_set
    return True


def find_confusable_failure_sets(
    probe_matrix: ProbeMatrix, beta: int, limit: int = 10
) -> List[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """Pairs of distinct failure sets (size <= beta) with identical syndromes.

    Useful in tests and when debugging why a constructed matrix falls short of
    the requested identifiability (e.g. 2-identifiability is impossible in a
    4-ary Fattree, §6.3).
    """
    if beta <= 0:
        return []
    syndromes = _syndromes_up_to(probe_matrix, beta)
    seen: Dict[FrozenSet[int], FrozenSet[int]] = {}
    confusable: List[Tuple[FrozenSet[int], FrozenSet[int]]] = []
    for failure_set, syndrome in syndromes.items():
        if not syndrome:
            confusable.append((failure_set, frozenset()))
        elif syndrome in seen and seen[syndrome] != failure_set:
            confusable.append((seen[syndrome], failure_set))
        else:
            seen[syndrome] = failure_set
        if len(confusable) >= limit:
            break
    return confusable


def identifiability_level(probe_matrix: ProbeMatrix, max_beta: int = 3) -> int:
    """The largest ``beta <= max_beta`` for which the matrix is ``beta``-identifiable."""
    level = 0
    for beta in range(1, max_beta + 1):
        if check_identifiability(probe_matrix, beta):
            level = beta
        else:
            break
    return level
