"""Array-backed path x link incidence: the shared backend of routing, PMC and PLL.

§4.1 of the paper treats the routing matrix ``R`` as an ``m x n`` 0/1 matrix
(paths x links) and every algorithm layered on top of it -- PMC's greedy
(Alg. 1), the decomposition of §4.3 and PLL's hit-ratio scans (§5.3) -- only
ever asks incidence questions of it: *which links lie on this path*, *which
paths cross this link*, *how many of a link's paths are lossy*.  The seed
implementation answered those questions with per-path ``frozenset``s and
dicts of tuples, which caps scalability far below the fabrics of Tables 2
and 5.

:class:`IncidenceIndex` stores the incidence once, in CSR/CSC form:

* ``row_indptr`` / ``row_cols``  -- path -> sorted column positions (CSR), and
* ``col_indptr`` / ``col_rows``  -- column -> sorted path rows (CSC),

as flat integer arrays, plus the vectorized kernels the hot loops need
(per-link coverage counters, Eq. 1 weight accumulation, hit-ratio counts,
syndromes and connected-component decomposition).  Two interchangeable
backends produce *identical* results:

* :attr:`Backend.NUMPY`  -- flat ``numpy`` arrays and vectorized kernels
  (the default whenever numpy is importable), and
* :attr:`Backend.PYTHON` -- plain lists and comprehension loops, used as a
  dependency-free fallback and as a differential-testing oracle.

The backend is chosen per index (``backend=`` argument) or globally through
the ``REPRO_BACKEND`` environment variable (``"numpy"`` or ``"python"``).
Every kernel works on exact integers, so selections and suspect sets computed
on either backend are byte-identical -- tested in
``tests/test_incidence_backends.py``.
"""

from __future__ import annotations

import atexit
import itertools
import os
from dataclasses import dataclass
from enum import Enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

try:  # numpy is the default backend but never a hard requirement
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

from ..contracts import pool_payload, trace_span
from .costmodel import KernelCounters

__all__ = [
    "Backend",
    "resolve_backend",
    "shm_enabled",
    "shm_telemetry",
    "IncidenceHandle",
    "SharedIncidence",
    "IncidenceIndex",
    "RowProjection",
    "RefinablePartition",
]

_ENV_VAR = "REPRO_BACKEND"
_SHM_ENV = "REPRO_SHM"
_FALSEY = {"", "0", "false", "no", "off"}


def shm_enabled(enabled: Optional[bool] = None) -> bool:
    """Resolve the shared-memory plane switch: argument > ``REPRO_SHM`` > on.

    When off (or whenever the backend is :attr:`Backend.PYTHON`), shard
    dispatch ships the index by pickle exactly as before the shm plane
    existed -- the fallback the cross-backend byte-identity tests pin
    semantics against.  The switch never changes results, only how the bytes
    travel to the workers.
    """
    if enabled is not None:
        return bool(enabled)
    raw = os.environ.get(_SHM_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSEY


class Backend(Enum):
    """Storage/kernel flavour of an :class:`IncidenceIndex`."""

    PYTHON = "python"
    NUMPY = "numpy"


def _parse_backend(value: Union[str, Backend]) -> Backend:
    if isinstance(value, Backend):
        return value
    try:
        return Backend(str(value).strip().lower())
    except ValueError:
        choices = ", ".join(repr(b.value) for b in Backend)
        raise ValueError(f"unknown incidence backend {value!r}; choose from {choices}") from None


def resolve_backend(backend: Optional[Union[str, Backend]] = None) -> Backend:
    """Resolve the backend to use: explicit argument > ``REPRO_BACKEND`` > auto.

    Auto-detection prefers numpy and falls back to pure Python when numpy is
    missing.  Requesting :attr:`Backend.NUMPY` without numpy installed raises.
    """
    if backend is not None:
        resolved = _parse_backend(backend)
    else:
        env = os.environ.get(_ENV_VAR, "").strip()
        if env:
            resolved = _parse_backend(env)
        else:
            resolved = Backend.NUMPY if _np is not None else Backend.PYTHON
    if resolved is Backend.NUMPY and _np is None:
        raise RuntimeError(
            "the numpy incidence backend was requested but numpy is not installed; "
            f"set {_ENV_VAR}=python or install numpy"
        )
    return resolved


# ---------------------------------------------------------------------------
# per-backend kernel namespaces
# ---------------------------------------------------------------------------

class _PythonKernels:
    """List-based kernels: the dependency-free oracle implementation."""

    backend = Backend.PYTHON

    @staticmethod
    def int_array(values: Iterable[int]) -> List[int]:
        return list(values)

    @staticmethod
    def int_zeros(size: int) -> List[int]:
        return [0] * size

    @staticmethod
    def bool_zeros(size: int) -> List[bool]:
        return [False] * size

    @staticmethod
    def sum_at(vector: Sequence[int], idx: Sequence[int]) -> int:
        return sum(vector[i] for i in idx)

    @staticmethod
    def count_true_at(mask: Sequence[bool], idx: Sequence[int]) -> int:
        return sum(1 for i in idx if mask[i])

    @staticmethod
    def add_at(vector: List[int], idx: Sequence[int], amount: int = 1) -> None:
        for i in idx:
            vector[i] += amount

    @staticmethod
    def take_true(idx: Sequence[int], mask: Sequence[bool]) -> List[int]:
        return [i for i in idx if mask[i]]

    @staticmethod
    def set_true(mask: List[bool], idx: Sequence[int]) -> None:
        for i in idx:
            mask[i] = True

    @staticmethod
    def set_false(mask: List[bool], idx: Sequence[int]) -> None:
        for i in idx:
            mask[i] = False

    @staticmethod
    def clear_if_reached(
        mask: List[bool], counts: Sequence[int], idx: Sequence[int], threshold: int
    ) -> int:
        """Clear ``mask[i]`` where ``counts[i] >= threshold``; return #cleared."""
        cleared = 0
        for i in idx:
            if mask[i] and counts[i] >= threshold:
                mask[i] = False
                cleared += 1
        return cleared

    @staticmethod
    def unique_count_at(labels: Sequence[int], idx: Sequence[int]) -> int:
        return len({labels[i] for i in idx})

    @staticmethod
    def first_max(vector: Sequence[int]) -> Tuple[int, int]:
        """(index, value) of the first maximum; (-1, 0) for an empty vector."""
        best_idx, best = -1, 0
        for i, value in enumerate(vector):
            if best_idx < 0 or value > best:
                best_idx, best = i, value
        return best_idx, best


class _NumpyKernels:
    """Flat numpy-array kernels; all results are exact integers."""

    backend = Backend.NUMPY

    @staticmethod
    def int_array(values: Iterable[int]):
        if isinstance(values, _np.ndarray):
            return values.astype(_np.int64, copy=False)
        return _np.fromiter(values, dtype=_np.int64)

    @staticmethod
    def int_zeros(size: int):
        return _np.zeros(size, dtype=_np.int64)

    @staticmethod
    def bool_zeros(size: int):
        return _np.zeros(size, dtype=bool)

    @staticmethod
    def sum_at(vector, idx) -> int:
        return int(vector[idx].sum())

    @staticmethod
    def count_true_at(mask, idx) -> int:
        return int(_np.count_nonzero(mask[idx]))

    @staticmethod
    def add_at(vector, idx, amount: int = 1) -> None:
        # Column indices within a row are unique, so fancy-index add is safe.
        vector[idx] += amount

    @staticmethod
    def take_true(idx, mask):
        return idx[mask[idx]]

    @staticmethod
    def set_true(mask, idx) -> None:
        mask[idx] = True

    @staticmethod
    def set_false(mask, idx) -> None:
        mask[idx] = False

    @staticmethod
    def clear_if_reached(mask, counts, idx, threshold: int) -> int:
        sel = idx[mask[idx] & (counts[idx] >= threshold)]
        mask[sel] = False
        return int(sel.size)

    @staticmethod
    def unique_count_at(labels, idx) -> int:
        return int(_np.unique(labels[idx]).size)

    @staticmethod
    def first_max(vector) -> Tuple[int, int]:
        if len(vector) == 0:
            return -1, 0
        best_idx = int(_np.argmax(vector))  # argmax returns the first maximum
        return best_idx, int(vector[best_idx])


def _kernels_for(backend: Backend):
    return _NumpyKernels if backend is Backend.NUMPY else _PythonKernels


# ---------------------------------------------------------------------------
# the shared-memory data plane
#
# A numpy-backed IncidenceIndex is frozen after construction: the CSR/CSC
# arrays never change (masks are overlays on separate state).  share() copies
# those buffers once into a multiprocessing.shared_memory segment; workers
# attach() the segment and get the same index back as read-only zero-copy
# numpy views, so pooled shard dispatch ships a ~100-byte IncidenceHandle
# instead of a pickled matrix.  Lifecycle is explicit: the creating process
# owns the segment and unlink()s it (context manager, release_share(), or the
# atexit sweep); workers merely map it and deliberately *unregister* from the
# resource tracker -- the tracker would otherwise unlink the segment when the
# first worker exits, yanking it out from under its siblings.
# ---------------------------------------------------------------------------

_INDEX_UIDS = itertools.count(1)
_SHARE_GENERATIONS = itertools.count(1)
_SEGMENT_SEQ = itertools.count(1)

#: Mutable process-wide counters behind :func:`shm_telemetry`.  Informational
#: by construction (they vary with jobs/persistence settings), so they feed
#: the obs plane's informational source and the bench report, never
#: deterministic snapshots.
_SHM_STATS = {
    "segments_created": 0,
    "bytes_exported": 0,
    "attaches": 0,
    "detaches": 0,
    "releases": 0,
}


def shm_telemetry() -> Dict[str, int]:
    """Process-wide shared-memory plane counters (informational)."""
    return {f"shm_{name}": value for name, value in _SHM_STATS.items()}


@pool_payload
@dataclass(frozen=True, slots=True)
class IncidenceHandle:
    """The tiny pool payload that stands in for a shared index.

    Everything a worker needs to reattach: the segment name, the three array
    dimensions that fix the segment layout, and the share generation (which
    makes the handle -- and therefore the persistent-pool context digest --
    unique per export, so a pool armed for one topology can never serve
    another).
    """

    name: str
    num_paths: int
    num_links: int
    nnz: int
    generation: int


#: int64 arrays packed back-to-back into one segment, in this order; all
#: lengths are fixed by (num_paths, num_links, nnz) so the handle alone
#: recovers the layout.
_SEGMENT_FIELDS = (
    ("row_indptr", lambda m, n, nnz: m + 1),
    ("row_cols", lambda m, n, nnz: nnz),
    ("col_indptr", lambda m, n, nnz: n + 1),
    ("col_rows", lambda m, n, nnz: nnz),
    ("entry_rows", lambda m, n, nnz: nnz),
    ("link_ids", lambda m, n, nnz: n),
    ("coverage_counts", lambda m, n, nnz: n),
)


def _segment_layout(num_paths: int, num_links: int, nnz: int):
    """``name -> (offset_bytes, length)`` plus the total byte size."""
    layout: Dict[str, Tuple[int, int]] = {}
    offset = 0
    for name, length_of in _SEGMENT_FIELDS:
        length = length_of(num_paths, num_links, nnz)
        layout[name] = (offset, length)
        offset += length * 8  # int64
    return layout, offset


def _create_segment(size: int):
    """Create a uniquely named segment; retries on a (stale) name collision."""
    from multiprocessing import shared_memory

    while True:
        name = f"repro_inc_{os.getpid()}_{next(_SEGMENT_SEQ)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=max(size, 1))
        except FileExistsError:  # pragma: no cover - stale leftover segment
            continue


def _attach_segment(name: str):
    """Map an existing segment read-write-shared, without tracker ownership.

    Attaching registers the segment with the resource tracker, which would
    unlink it when the attaching process exits -- but the segment is owned by
    the exporter, and sibling workers may still be using it.  Registration is
    suppressed for the duration of the attach (the pre-3.13 stand-in for
    ``SharedMemory(track=False)``); register-then-unregister would be wrong
    under the fork start method, where workers share the owner's tracker and
    an unregister would cancel the *owner's* registration, leaving its later
    ``unlink()`` unbalanced (a tracker-side ``KeyError``).
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda _name, _rtype: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register
    _SHM_STATS["attaches"] += 1
    return shm


def _segment_views(shm, handle: IncidenceHandle) -> Dict[str, "object"]:
    """Read-only int64 numpy views over every packed array of a segment."""
    layout, _ = _segment_layout(handle.num_paths, handle.num_links, handle.nnz)
    views: Dict[str, object] = {}
    for name, (offset, length) in layout.items():
        view = _np.ndarray((length,), dtype=_np.int64, buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views[name] = view
    return views


#: Segments created by this process and not yet released.  The atexit sweep
#: guarantees a clean shutdown (no /dev/shm leftovers) even when owners skip
#: release_share() -- e.g. an engine interrupted by Ctrl-C.
_LIVE_SHARES: "Dict[int, SharedIncidence]" = {}


def release_all_shares() -> int:
    """Unlink every live segment this process exported; returns the count."""
    count = 0
    while _LIVE_SHARES:
        _, share = _LIVE_SHARES.popitem()
        share.close()
        count += 1
    return count


atexit.register(release_all_shares)


class SharedIncidence:
    """Owner-side handle of one exported segment (created by ``share()``).

    The owner keeps the mapping open for its own lifetime and is the only
    party that ever ``unlink()``s.  ``close()`` is idempotent and does both;
    the context-manager form scopes a share to a block, and the atexit sweep
    catches everything else.
    """

    def __init__(self, shm, handle: IncidenceHandle):
        self._shm = shm
        self.handle = handle
        self._closed = False
        _LIVE_SHARES[id(self)] = self

    @classmethod
    def from_index(cls, index: "IncidenceIndex") -> "SharedIncidence":
        m, n, nnz = index.num_paths, index.num_links, index.nnz
        layout, total = _segment_layout(m, n, nnz)
        handle = IncidenceHandle(
            name="",  # patched below once the segment name is known
            num_paths=m,
            num_links=n,
            nnz=nnz,
            generation=next(_SHARE_GENERATIONS),
        )
        with trace_span(
            "shm.export", informational=True, bytes=total, generation=handle.generation
        ):
            shm = _create_segment(total)
            try:
                handle = IncidenceHandle(
                    name=shm.name,
                    num_paths=m,
                    num_links=n,
                    nnz=nnz,
                    generation=handle.generation,
                )
                sources = {
                    "row_indptr": index._row_indptr,
                    "row_cols": index._row_cols,
                    "col_indptr": index._col_indptr,
                    "col_rows": index._col_rows,
                    "entry_rows": index._entry_rows,
                    "link_ids": _np.fromiter(index._link_ids, dtype=_np.int64, count=n),
                    "coverage_counts": index._coverage_vector(),
                }
                for name, (offset, length) in layout.items():
                    dest = _np.ndarray(
                        (length,), dtype=_np.int64, buffer=shm.buf, offset=offset
                    )
                    dest[:] = sources[name]
            except BaseException:  # pragma: no cover - copy-in cannot realistically fail
                shm.close()
                shm.unlink()
                raise
        _SHM_STATS["segments_created"] += 1
        _SHM_STATS["bytes_exported"] += total
        return cls(shm, handle)

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        _LIVE_SHARES.pop(id(self), None)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept externally
            pass
        _SHM_STATS["releases"] += 1

    def __enter__(self) -> "SharedIncidence":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# the incidence index
# ---------------------------------------------------------------------------

class IncidenceIndex:
    """CSR/CSC view of the path x link 0/1 incidence structure.

    Rows are path positions ``0..m-1`` (the canonical path indices of the
    owning routing/probe matrix); columns are positions ``0..n-1`` into
    ``link_ids`` (the link universe, in the order the caller supplied it).
    Links of a path that fall outside the universe are dropped, exactly like
    the seed ``RoutingMatrix`` did.
    """

    def __init__(
        self,
        path_link_sets: Sequence[Iterable[int]],
        link_universe: Sequence[int],
        backend: Optional[Union[str, Backend]] = None,
        counters: Optional[KernelCounters] = None,
    ):
        self._backend = resolve_backend(backend)
        self.kernels = _kernels_for(self._backend)
        # Semantic kernel-invocation counters (see repro.core.costmodel):
        # ticked once per kernel *question*, never per backend micro-op, so
        # values are byte-identical across numpy/python backends.
        self.counters = counters if counters is not None else KernelCounters()
        self._link_ids: Tuple[int, ...] = tuple(link_universe)
        self._pos: Dict[int, int] = {link: col for col, link in enumerate(self._link_ids)}

        # CSR build: one pass over the paths, columns sorted within each row
        # so that both backends traverse entries in the same order.
        pos = self._pos
        row_indptr: List[int] = [0]
        row_cols: List[int] = []
        for links in path_link_sets:
            cols = sorted(pos[l] for l in links if l in pos)
            row_cols.extend(cols)
            row_indptr.append(len(row_cols))
        self._num_paths = len(row_indptr) - 1
        n = len(self._link_ids)

        # CSC build by counting sort: rows within each column come out sorted
        # because rows are visited in ascending order.
        counts = [0] * n
        for col in row_cols:
            counts[col] += 1
        col_indptr: List[int] = [0] * (n + 1)
        for col in range(n):
            col_indptr[col + 1] = col_indptr[col] + counts[col]
        fill = list(col_indptr[:n])
        col_rows: List[int] = [0] * len(row_cols)
        for row in range(self._num_paths):
            for e in range(row_indptr[row], row_indptr[row + 1]):
                col = row_cols[e]
                col_rows[fill[col]] = row
                fill[col] += 1

        k = self.kernels
        self._row_indptr = k.int_array(row_indptr)
        self._row_cols = k.int_array(row_cols)
        self._col_indptr = k.int_array(col_indptr)
        self._col_rows = k.int_array(col_rows)
        # Lazily filled caches for the set/tuple views the legacy API exposes.
        self._row_set_cache: Dict[int, FrozenSet[int]] = {}
        self._col_tuple_cache: Dict[int, Tuple[int, ...]] = {}
        self._entry_rows = None  # numpy only: row id of every CSR entry
        # Link-mask state (see the "link masking" section): masked column
        # positions plus, per row, how many of its links are currently masked.
        # A row is active iff its blocker count is zero.  Allocated lazily so
        # mask-free indices pay nothing.
        self._masked_cols: set = set()
        self._row_blockers = None
        # Shared-memory plane + coverage-cache state (see the dedicated
        # sections below).  The uid names this index in persistent-pool
        # context digests on the pickle fallback path.
        self._share: Optional[SharedIncidence] = None
        self._attached_shm = None
        self._coverage_cache = None
        self._active_counts_cache = None
        self._uid = next(_INDEX_UIDS)

    # ------------------------------------------------------------------ sizes
    @property
    def uid(self) -> int:
        """Process-unique identity of this index (stable across its lifetime)."""
        return self._uid

    @property
    def backend(self) -> Backend:
        return self._backend

    @property
    def num_paths(self) -> int:
        return self._num_paths

    @property
    def num_links(self) -> int:
        return len(self._link_ids)

    @property
    def nnz(self) -> int:
        return int(self._row_indptr[self._num_paths])

    @property
    def link_ids(self) -> Tuple[int, ...]:
        return self._link_ids

    # --------------------------------------------------------------- lookups
    def position(self, link_id: int) -> int:
        """Column position of a link id (KeyError outside the universe)."""
        return self._pos[link_id]

    def contains_link(self, link_id: int) -> bool:
        return link_id in self._pos

    def row_length(self, row: int) -> int:
        return int(self._row_indptr[row + 1] - self._row_indptr[row])

    def row_lengths(self):
        """Per-row link counts (vector; one call instead of m scalar reads)."""
        if self._backend is Backend.NUMPY:
            return _np.diff(self._row_indptr)
        return [
            self._row_indptr[r + 1] - self._row_indptr[r] for r in range(self._num_paths)
        ]

    def row_cols(self, row: int):
        """Column positions on a path (sorted; zero-copy slice/view)."""
        return self._row_cols[int(self._row_indptr[row]) : int(self._row_indptr[row + 1])]

    def col_rows(self, col: int):
        """Path rows crossing a column (sorted; zero-copy slice/view)."""
        return self._col_rows[int(self._col_indptr[col]) : int(self._col_indptr[col + 1])]

    def row_link_set(self, row: int) -> FrozenSet[int]:
        """Link ids of a path as a frozenset (cached; legacy ``links_on`` view)."""
        cached = self._row_set_cache.get(row)
        if cached is None:
            ids = self._link_ids
            cached = frozenset(ids[int(c)] for c in self.row_cols(row))
            self._row_set_cache[row] = cached
        return cached

    def paths_through(self, link_id: int) -> Tuple[int, ...]:
        """Row indices of the paths crossing a link (cached tuple view)."""
        col = self._pos[link_id]  # KeyError propagates for foreign links
        cached = self._col_tuple_cache.get(col)
        if cached is None:
            cached = tuple(int(r) for r in self.col_rows(col))
            self._col_tuple_cache[col] = cached
        return cached

    # --------------------------------------------------------------- kernels
    def coverage_counts(self):
        """Per-column path counts (the coverage histogram, as a vector).

        The vector is computed once and cached for the index's lifetime --
        the CSC structure is frozen, so it can never change.  Callers receive
        the shared cached vector (read-only on numpy) and must not mutate it;
        the kernel counter still ticks per call, so cost accounting is
        unchanged by the cache.
        """
        self.counters.tick("coverage_counts", self.num_links)
        return self._coverage_vector()

    def _coverage_vector(self):
        """The cached coverage vector, without ticking (shm export uses this:
        sharing must never perturb deterministic counter snapshots)."""
        if self._coverage_cache is None:
            if self._backend is Backend.NUMPY:
                counts = _np.diff(self._col_indptr)
                counts.flags.writeable = False
            else:
                counts = [
                    self._col_indptr[c + 1] - self._col_indptr[c]
                    for c in range(self.num_links)
                ]
            self._coverage_cache = counts
        return self._coverage_cache

    def coverage_histogram(self) -> Dict[int, int]:
        """Map ``link_id -> number of paths`` through it (legacy dict view)."""
        counts = self.coverage_counts()
        return {link: int(counts[col]) for col, link in enumerate(self._link_ids)}

    def sum_over_row(self, vector, row: int) -> int:
        """``sum(vector[col] for col on path)`` -- the Eq. 1 weight term."""
        return self.kernels.sum_at(vector, self.row_cols(row))

    def rows_touching_links(self, link_ids: Iterable[int]) -> List[int]:
        """Sorted rows crossing at least one of the links (a loss syndrome)."""
        cols = [self._pos[l] for l in link_ids if l in self._pos]
        self.counters.tick("rows_touching_links", len(cols))
        if not cols:
            return []
        if self._backend is Backend.NUMPY:
            chunks = [self.col_rows(c) for c in cols]
            return [int(r) for r in _np.unique(_np.concatenate(chunks))]
        rows: set = set()
        for c in cols:
            rows.update(self.col_rows(c))
        return sorted(rows)

    def masked_col_counts(self, row_mask):
        """Per-column count of incident rows with ``row_mask[row]`` True.

        This is the one-shot kernel behind hit ratios (PLL step 2) and
        coverage-over-a-path-subset queries: calling it with the lossy-path
        mask yields every link's lossy count, with the observed-path mask its
        total count.
        """
        self.counters.tick("masked_col_counts", self.nnz)
        if self._backend is Backend.NUMPY:
            if self._entry_rows is None:
                self._entry_rows = _np.repeat(
                    _np.arange(self._num_paths, dtype=_np.int64),
                    _np.diff(self._row_indptr),
                )
            keep = row_mask[self._entry_rows]
            return _np.bincount(self._row_cols[keep], minlength=self.num_links)
        counts = [0] * self.num_links
        for col in range(self.num_links):
            counts[col] = sum(1 for r in self.col_rows(col) if row_mask[r])
        return counts

    def weighted_col_counts(self, row_values):
        """Per-column sum of ``row_values`` over the incident rows.

        The transpose companion of :meth:`sum_over_row`: with the per-path
        lost-probe counters of an aggregation window it yields every link's
        lost-probe total, with the sent counters its probe volume -- the
        sliding-window per-link counters the telemetry engine's
        :class:`~repro.engine.aggregator.StreamAggregator` folds probe streams
        into.  All inputs are exact integers, so both backends agree bit for
        bit.
        """
        self.counters.tick("weighted_col_counts", self.nnz)
        if self._backend is Backend.NUMPY:
            if self._entry_rows is None:
                self._entry_rows = _np.repeat(
                    _np.arange(self._num_paths, dtype=_np.int64),
                    _np.diff(self._row_indptr),
                )
            values = _np.asarray(row_values, dtype=_np.int64)
            counts = _np.bincount(
                self._row_cols,
                weights=values[self._entry_rows],
                minlength=self.num_links,
            )
            return counts.astype(_np.int64)
        counts = [0] * self.num_links
        for col in range(self.num_links):
            counts[col] = sum(row_values[r] for r in self.col_rows(col))
        return counts

    # ----------------------------------------------------------- link masking
    #
    # A *link mask* marks a set of columns (failed links) as unusable and,
    # derived from it, every row crossing a masked column as inactive.  The
    # CSR/CSC arrays are never touched -- masking is a cheap overlay
    # (O(paths through the masked links) per apply/revert), which is what
    # makes incremental controller cycles possible: instead of re-ingesting
    # half a million paths after a 2-link delta, the cached index applies a
    # 2-column mask and hands PMC the surviving rows.

    def apply_link_mask(self, link_ids: Iterable[int]) -> Tuple[int, ...]:
        """Mask links (failed in the current delta); returns the ids newly masked.

        Ids outside the universe (e.g. server uplinks of a failed switch) are
        ignored, as are already-masked ids -- apply/revert therefore compose
        like set operations.
        """
        self.counters.tick("apply_link_mask")
        newly = []
        for link_id in link_ids:
            col = self._pos.get(link_id)
            if col is None or col in self._masked_cols:
                continue
            self._masked_cols.add(col)
            newly.append(link_id)
            self._adjust_blockers(col, +1)
        if newly:
            self._active_counts_cache = None
        return tuple(newly)

    def revert_link_mask(self, link_ids: Iterable[int]) -> Tuple[int, ...]:
        """Unmask links (recovered in the current delta); returns the ids unmasked."""
        self.counters.tick("revert_link_mask")
        reverted = []
        for link_id in link_ids:
            col = self._pos.get(link_id)
            if col is None or col not in self._masked_cols:
                continue
            self._masked_cols.discard(col)
            reverted.append(link_id)
            self._adjust_blockers(col, -1)
        if reverted:
            self._active_counts_cache = None
        return tuple(reverted)

    def clear_link_mask(self) -> None:
        """Drop the whole mask (all rows active again)."""
        self._masked_cols.clear()
        self._row_blockers = None
        self._active_counts_cache = None

    def _adjust_blockers(self, col: int, amount: int) -> None:
        if self._row_blockers is None:
            self._row_blockers = self.kernels.int_zeros(self._num_paths)
        self.kernels.add_at(self._row_blockers, self.col_rows(col), amount)

    @property
    def masked_link_ids(self) -> Tuple[int, ...]:
        """Currently masked links, sorted by id."""
        ids = self._link_ids
        return tuple(sorted(ids[c] for c in self._masked_cols))

    def active_row_mask(self):
        """Boolean vector: ``True`` for rows crossing no masked link."""
        if self._row_blockers is None:
            if self._backend is Backend.NUMPY:
                return _np.ones(self._num_paths, dtype=bool)
            return [True] * self._num_paths
        if self._backend is Backend.NUMPY:
            return self._row_blockers == 0
        return [b == 0 for b in self._row_blockers]

    def active_rows(self) -> List[int]:
        """Sorted row indices of the paths untouched by the mask."""
        if self._row_blockers is None:
            return list(range(self._num_paths))
        if self._backend is Backend.NUMPY:
            return [int(r) for r in _np.flatnonzero(self._row_blockers == 0)]
        return [r for r, b in enumerate(self._row_blockers) if b == 0]

    @property
    def num_active_rows(self) -> int:
        if self._row_blockers is None:
            return self._num_paths
        if self._backend is Backend.NUMPY:
            return int(_np.count_nonzero(self._row_blockers == 0))
        return sum(1 for b in self._row_blockers if b == 0)

    def active_coverage_counts(self):
        """Per-column path counts over the *active* rows only.

        On a mask-free index this equals :meth:`coverage_counts`.  With a mask
        it equals the coverage histogram of a routing matrix rebuilt from
        scratch on the post-delta topology -- the quantity incremental PMC
        needs to judge coverability byte-identically to a cold rebuild.

        The masked vector is cached until the next mask mutation
        (apply/revert/clear), so repeated dispatches within one controller
        cycle compute it once.  Cache hits skip the ``masked_col_counts``
        tick; whether a call hits is a pure function of the mask-mutation
        sequence, which is identical across backends and jobs settings, so
        counter snapshots stay byte-identical across those axes.
        """
        if self._row_blockers is None:
            return self.coverage_counts()
        if self._active_counts_cache is None:
            counts = self.masked_col_counts(self.active_row_mask())
            if self._backend is Backend.NUMPY:
                counts.flags.writeable = False
            self._active_counts_cache = counts
        return self._active_counts_cache

    # ------------------------------------------------- shared-memory export
    def share(self) -> SharedIncidence:
        """Export the frozen CSR/CSC buffers into a shared-memory segment.

        Numpy backend only (the python backend keeps the pickle dispatch
        path).  The export is cached: repeated calls return the same live
        :class:`SharedIncidence`, so one controller shares its matrix once
        and every later dispatch reuses the segment.  Sharing never ticks
        kernel counters -- whether an index was shared must be invisible to
        deterministic cost snapshots.

        The caller owns the returned share's lifecycle: use it as a context
        manager, call :meth:`release_share` (or ``share.close()``) when the
        index is retired, or rely on the process-exit sweep.
        """
        if self._backend is not Backend.NUMPY:
            raise RuntimeError(
                "shared-memory export requires the numpy backend; "
                "the python backend dispatches by pickle"
            )
        if self._attached_shm is not None:
            raise RuntimeError("an attached index cannot be re-shared")
        if self._share is None or self._share.closed:
            if self._entry_rows is None:
                self._entry_rows = _np.repeat(
                    _np.arange(self._num_paths, dtype=_np.int64),
                    _np.diff(self._row_indptr),
                )
            self._share = SharedIncidence.from_index(self)
        return self._share

    def release_share(self) -> None:
        """Unlink this index's exported segment, if any (idempotent)."""
        if self._share is not None:
            share, self._share = self._share, None
            share.close()

    @classmethod
    def attach(cls, handle: IncidenceHandle) -> "IncidenceIndex":
        """Rebuild an index from a shared segment as read-only numpy views.

        The worker-side counterpart of :meth:`share`: zero-copy for every
        array the solvers touch (CSR/CSC, entry rows, coverage counts); only
        the ``link -> column`` dict is rebuilt locally.  The attached index
        gets fresh :class:`~repro.core.costmodel.KernelCounters` (workers
        report counter *deltas* back to the parent) and must be treated as
        immutable -- masking would need write access the views deny.
        """
        if _np is None:  # pragma: no cover - exporters are numpy-backed
            raise RuntimeError("attaching a shared incidence requires numpy")
        shm = _attach_segment(handle.name)
        views = _segment_views(shm, handle)
        self = cls.__new__(cls)
        self._backend = Backend.NUMPY
        self.kernels = _NumpyKernels
        self.counters = KernelCounters()
        self._link_ids = tuple(int(l) for l in views["link_ids"])
        self._pos = {link: col for col, link in enumerate(self._link_ids)}
        self._num_paths = handle.num_paths
        self._row_indptr = views["row_indptr"]
        self._row_cols = views["row_cols"]
        self._col_indptr = views["col_indptr"]
        self._col_rows = views["col_rows"]
        self._entry_rows = views["entry_rows"]
        self._row_set_cache = {}
        self._col_tuple_cache = {}
        self._masked_cols = set()
        self._row_blockers = None
        self._share = None
        self._attached_shm = shm
        self._coverage_cache = views["coverage_counts"]
        self._active_counts_cache = None
        self._uid = next(_INDEX_UIDS)
        return self

    @property
    def attached(self) -> bool:
        """True when this index is a worker-side view over a shared segment."""
        return self._attached_shm is not None

    def detach(self) -> None:
        """Drop the shared views and unmap the segment (attached indexes only).

        The numpy views exported from the buffer must be released before the
        mapping can close, so every array attribute is dropped first -- the
        index is unusable afterwards.  Never unlinks: the exporting process
        owns the segment.
        """
        if self._attached_shm is None:
            return
        shm, self._attached_shm = self._attached_shm, None
        self._row_indptr = None
        self._row_cols = None
        self._col_indptr = None
        self._col_rows = None
        self._entry_rows = None
        self._coverage_cache = None
        self._active_counts_cache = None
        shm.close()
        _SHM_STATS["detaches"] += 1

    # ----------------------------------------------------------- components
    def components(
        self, rows: Optional[Sequence[int]] = None
    ) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Connected components of the path/link bipartite graph.

        Returns ``(link_ids, rows)`` pairs: the component's links sorted by
        id and the member paths in row order.  Columns crossed by none of the
        considered rows form singleton components with no paths (that is how
        uncoverable links surface in PMC), and rows with no in-universe links
        are dropped -- both exactly as the seed set-based decomposition did.
        When ``rows`` is given, only those paths are considered (PLL
        decomposes over the observed rows only).
        """
        self.counters.tick(
            "components", len(rows) if rows is not None else self._num_paths
        )
        # The scipy.csgraph path wins once the bipartite graph is large, but
        # its fixed per-call overhead (~coo/csgraph setup) loses on the tiny
        # per-window decompositions PLL runs; size-gate it.  Both paths return
        # identical output, so the gate never changes results.
        if self._backend is Backend.NUMPY:
            if rows is None:
                entries = self.nnz
            else:
                rows_arr = _np.asarray(rows, dtype=_np.int64)
                entries = int(
                    (self._row_indptr[rows_arr + 1] - self._row_indptr[rows_arr]).sum()
                )
            if entries >= 4096:
                try:
                    return self._components_vectorized(rows)
                except ImportError:  # pragma: no cover - scipy missing
                    pass
        n = self.num_links
        parent = list(range(n))
        size = [1] * n

        def find(col: int) -> int:
            root = col
            while parent[root] != root:
                root = parent[root]
            while parent[col] != root:
                parent[col], col = root, parent[col]
            return root

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra == rb:
                return
            if size[ra] < size[rb]:
                ra, rb = rb, ra
            parent[rb] = ra
            size[ra] += size[rb]

        considered = range(self._num_paths) if rows is None else rows
        row_anchor: List[Tuple[int, int]] = []  # (row, first col) for assignment
        for row in considered:
            cols = self.row_cols(row)
            if len(cols) == 0:
                continue
            first = int(cols[0])
            for c in cols[1:]:
                union(first, int(c))
            row_anchor.append((int(row), first))

        groups: Dict[int, List[int]] = {}
        for col in range(n):
            groups.setdefault(find(col), []).append(col)
        member_rows: Dict[int, List[int]] = {root: [] for root in groups}
        for row, anchor in row_anchor:
            member_rows[find(anchor)].append(row)

        ids = self._link_ids
        components = [
            (
                tuple(sorted(ids[c] for c in cols)),
                tuple(member_rows[root]),
            )
            for root, cols in groups.items()
        ]
        components.sort(key=lambda item: item[0][0] if item[0] else -1)
        return components

    def _components_vectorized(
        self, rows: Optional[Sequence[int]] = None
    ) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Numpy path of :meth:`components`: star edges + ``scipy.csgraph``.

        Every path contributes a star of edges from its first link to the
        rest; connected components of that link graph equal the bipartite
        components.  Output is identical to the union-find path.
        """
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import connected_components

        n = self.num_links
        if rows is None:
            considered = _np.arange(self._num_paths, dtype=_np.int64)
            starts = self._row_indptr[:-1]
            lengths = _np.diff(self._row_indptr)
            flat_cols = self._row_cols
        else:
            considered = _np.asarray(rows, dtype=_np.int64)
            starts = self._row_indptr[considered]
            lengths = self._row_indptr[considered + 1] - starts
            total = int(lengths.sum())
            cum = _np.cumsum(lengths)
            flat_pos = _np.repeat(starts - (cum - lengths), lengths) + _np.arange(total)
            flat_cols = self._row_cols[flat_pos]

        # Anchor col of every non-empty row = its first entry; empty rows have
        # no entries, so the per-entry arrays below stay aligned without any
        # filtering.
        nonempty = lengths > 0
        if rows is None:
            anchors = self._row_cols[starts[nonempty]]
        else:
            seg_starts = _np.concatenate(([0], _np.cumsum(lengths)[:-1]))
            anchors = flat_cols[seg_starts[nonempty]]
        entry_cols = flat_cols
        entry_anchors = _np.repeat(anchors, lengths[nonempty])

        graph = coo_matrix(
            (_np.ones(len(entry_cols), dtype=_np.int8), (entry_anchors, entry_cols)),
            shape=(n, n),
        )
        _, labels = connected_components(graph, directed=False)

        ids = _np.fromiter(self._link_ids, dtype=_np.int64, count=n)
        num_labels = int(labels.max()) + 1 if n else 0
        min_id = _np.full(num_labels, _np.iinfo(_np.int64).max, dtype=_np.int64)
        _np.minimum.at(min_id, labels, ids)
        order = _np.argsort(min_id, kind="stable")
        rank = _np.empty(num_labels, dtype=_np.int64)
        rank[order] = _np.arange(num_labels)

        col_rank = rank[labels]
        col_order = _np.lexsort((ids, col_rank))
        sorted_ids = ids[col_order]
        sorted_rank = col_rank[col_order]
        link_bounds = _np.flatnonzero(
            _np.concatenate(([True], sorted_rank[1:] != sorted_rank[:-1], [True]))
        )

        comp_links: List[Tuple[int, ...]] = [
            tuple(sorted_ids[link_bounds[i] : link_bounds[i + 1]].tolist())
            for i in range(num_labels)
        ]
        comp_rows: List[Tuple[int, ...]] = [() for _ in range(num_labels)]
        if int(nonempty.sum()):
            row_ids = considered[nonempty]
            row_rank = rank[labels[anchors]]
            row_order = _np.argsort(row_rank, kind="stable")
            sorted_rows = row_ids[row_order]
            sorted_row_rank = row_rank[row_order]
            row_bounds = _np.flatnonzero(
                _np.concatenate(
                    ([True], sorted_row_rank[1:] != sorted_row_rank[:-1], [True])
                )
            )
            for i in range(len(row_bounds) - 1):
                comp_rows[int(sorted_row_rank[row_bounds[i]])] = tuple(
                    sorted_rows[row_bounds[i] : row_bounds[i + 1]].tolist()
                )
        return list(zip(comp_links, comp_rows))

    def projection(self, link_ids: Sequence[int]) -> "RowProjection":
        """A row projector onto the dense local id space of a link subset.

        ``link_ids`` must be sorted; local id ``i`` stands for the ``i``-th
        smallest link, matching the physical-id numbering of
        :class:`~repro.core.virtual_links.ExtendedLinkSpace`.

        Ticks the ``projection`` kernel counter with the subset size: one
        projection is built per solved PMC subproblem, so this is the
        per-shard signal the pod-sharded control plane's kernel gates read
        (a replayed shard builds no projection and shows a zero delta).
        """
        self.counters.tick("projection", len(link_ids))
        return RowProjection(self, link_ids)

    # -------------------------------------------------------------- exports
    def to_scipy_csr(self):
        """Export as ``scipy.sparse.csr_matrix`` (float, shape paths x links)."""
        from scipy import sparse

        if _np is None:  # pragma: no cover - scipy implies numpy
            raise RuntimeError("scipy/numpy are required for the sparse export")
        indptr = _np.asarray(self._row_indptr, dtype=_np.int64)
        indices = _np.asarray(self._row_cols, dtype=_np.int64)
        data = _np.ones(len(indices), dtype=float)
        return sparse.csr_matrix(
            (data, indices, indptr), shape=(self.num_paths, self.num_links), dtype=float
        )


class RowProjection:
    """Maps CSR rows of an index onto the local id space of a link subset.

    PMC solves each decomposition subproblem over a dense local universe
    ``0..n-1`` (the subproblem's links in sorted-id order); this helper turns
    a path row into the array of local positions of its links, dropping links
    outside the subset.  Projected rows are cached: the lazy greedy revisits
    the same candidates many times.
    """

    def __init__(self, index: IncidenceIndex, link_ids: Sequence[int]):
        self._index = index
        self.kernels = index.kernels
        self.num_locals = len(link_ids)
        self._cache: Dict[int, object] = {}
        if index.backend is Backend.NUMPY:
            gmap = _np.full(index.num_links, -1, dtype=_np.int64)
            cols = _np.fromiter(
                (index.position(l) for l in link_ids), dtype=_np.int64, count=len(link_ids)
            )
            gmap[cols] = _np.arange(len(link_ids), dtype=_np.int64)
            self._gmap = gmap
        else:
            self._gmap = {index.position(l): i for i, l in enumerate(link_ids)}

    def row(self, row: int):
        """Local positions of the links on a path (subset-restricted)."""
        cached = self._cache.get(row)
        if cached is None:
            cols = self._index.row_cols(row)
            if self._index.backend is Backend.NUMPY:
                mapped = self._gmap[cols]
                cached = mapped[mapped >= 0]
            else:
                gmap = self._gmap
                cached = [gmap[c] for c in cols if c in gmap]
            self._cache[row] = cached
        return cached

    def row_length(self, row: int) -> int:
        return len(self.row(row))

    def batch(self, rows: Sequence[int]):
        """Concatenated projection of many rows: ``(segment_ids, flat_locals)``.

        Numpy backend only -- the one-kernel gather behind batched greedy
        rescoring.  ``segment_ids[k]`` tells which of the input rows entry
        ``k`` belongs to; links outside the subset are dropped.
        """
        if self._index.backend is not Backend.NUMPY:
            raise RuntimeError("batch projection requires the numpy backend")
        rows = _np.asarray(rows, dtype=_np.int64)
        indptr = self._index._row_indptr
        starts = indptr[rows]
        lengths = indptr[rows + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            empty = _np.zeros(0, dtype=_np.int64)
            return empty, empty
        # Gather the CSR slices of all rows in one shot: entry k of segment s
        # sits at starts[s] + (k - segment_start[s]).
        cum = _np.cumsum(lengths)
        flat_pos = _np.repeat(starts - (cum - lengths), lengths) + _np.arange(total)
        locals_ = self._gmap[self._index._row_cols[flat_pos]]
        segments = _np.repeat(_np.arange(rows.size, dtype=_np.int64), lengths)
        keep = locals_ >= 0
        if not keep.all():
            locals_, segments = locals_[keep], segments[keep]
        return segments, locals_


# ---------------------------------------------------------------------------
# refinable partition over a dense id space
# ---------------------------------------------------------------------------

class RefinablePartition:
    """Array-backed refinement partition over dense ids ``0..n-1`` (§4.2).

    The vectorized sibling of
    :class:`~repro.core.link_partition.LinkSetPartition`: the greedy's three
    partition queries (``cells_touched``, ``splits_gained``, ``split``) on
    flat label arrays instead of dict-of-set cells.  Which side of a split
    keeps the old cell id differs from the seed class, but the *partition*
    (which ids share a cell) evolves identically, and all three queries only
    depend on the partition -- so scores and stop conditions are unchanged.
    """

    def __init__(self, num_ids: int, backend: Optional[Union[str, Backend]] = None):
        self._backend = resolve_backend(backend)
        self.kernels = _kernels_for(self._backend)
        self._num_ids = num_ids
        self._cell_of = self.kernels.int_zeros(num_ids)
        # Cell sizes, indexed by cell id; ids are allocated monotonically and
        # at most ``num_ids`` cells ever exist, so the capacity is bounded.
        self._cell_size = self.kernels.int_zeros(2 * num_ids + 1)
        if num_ids:
            self._cell_size[0] = num_ids
        self._num_cells = 1 if num_ids else 0
        self._next_cell_id = 1
        # Work counters (backend-invariant: the partition evolves identically
        # on both backends, and so do the greedy's queries against it).
        self.splits_performed = 0
        self.cells_created = 0
        self.gain_queries = 0

    @property
    def num_ids(self) -> int:
        return self._num_ids

    @property
    def num_cells(self) -> int:
        return self._num_cells

    @property
    def fully_refined(self) -> bool:
        return self._num_cells == self._num_ids

    def cell_of(self, member: int) -> int:
        return int(self._cell_of[member])

    def cells_touched(self, members) -> int:
        """Distinct cells containing at least one member ("link sets on path")."""
        return self.kernels.unique_count_at(self._cell_of, members)

    def cells_touched_segmented(self, segments, members, num_segments: int):
        """Vectorized :meth:`cells_touched` for many member sets at once.

        ``segments``/``members`` are parallel flat arrays (the output of
        :meth:`RowProjection.batch`); returns the per-segment distinct-cell
        count.  Numpy backend only.
        """
        if self._backend is not Backend.NUMPY:
            raise RuntimeError("segmented cell counting requires the numpy backend")
        if len(members) == 0:
            return _np.zeros(num_segments, dtype=_np.int64)
        # Cell ids stay below num_ids + 1, so (segment, cell) pairs pack into
        # one sortable integer key; distinct keys per segment = cells touched.
        stride = self._num_ids + 1
        keys = segments * stride + self._cell_of[members]
        keys.sort()
        first = _np.empty(keys.size, dtype=bool)
        first[0] = True
        _np.not_equal(keys[1:], keys[:-1], out=first[1:])
        return _np.bincount(keys[first] // stride, minlength=num_segments)

    def _touched(self, members) -> List[Tuple[int, object]]:
        """Group members by cell: ``[(cell, members_in_cell), ...]``."""
        if self._backend is Backend.NUMPY:
            members = _np.asarray(members)
            labels = self._cell_of[members]
            cells, inverse = _np.unique(labels, return_inverse=True)
            return [(int(cell), members[inverse == k]) for k, cell in enumerate(cells)]
        by_cell: Dict[int, List[int]] = {}
        for member in members:
            by_cell.setdefault(int(self._cell_of[member]), []).append(member)
        return list(by_cell.items())

    def splits_gained(self, members) -> int:
        """How many new cells :meth:`split` would create for this member set."""
        self.gain_queries += 1
        gained = 0
        for cell, inside in self._touched(members):
            if len(inside) < int(self._cell_size[cell]):
                gained += 1
        return gained

    def split(self, members) -> int:
        """Refine by the member set; return the number of new cells created."""
        self.splits_performed += 1
        created = 0
        for cell, inside in self._touched(members):
            n_inside = len(inside)
            cell_size = int(self._cell_size[cell])
            if n_inside == cell_size:
                continue  # the whole cell lies on the path: nothing to split
            new_cell = self._next_cell_id
            self._next_cell_id += 1
            if self._backend is Backend.NUMPY:
                self._cell_of[inside] = new_cell
            else:
                for member in inside:
                    self._cell_of[member] = new_cell
            self._cell_size[new_cell] = n_inside
            self._cell_size[cell] = cell_size - n_inside
            self._num_cells += 1
            created += 1
        self.cells_created += created
        return created

    def signature(self) -> Dict[int, int]:
        """Canonical member -> cell labelling (for equality checks in tests)."""
        canonical: Dict[int, int] = {}
        labels: Dict[int, int] = {}
        for member in range(self._num_ids):
            cell = int(self._cell_of[member])
            if cell not in labels:
                labels[cell] = len(labels)
            canonical[member] = labels[cell]
        return canonical
