"""deTector's primary contribution: probe-matrix construction and its building blocks."""

from .costmodel import CostModel, KernelCounters
from .decomposition import (
    RESIDUAL_POD,
    Subproblem,
    decompose_by_link_sets,
    decompose_routing_matrix,
    link_pod_map,
    pod_shards_for_matrix,
)
from .incidence import Backend, IncidenceIndex, RefinablePartition, RowProjection, resolve_backend
from .lazy_greedy import BatchCELFHeap, CELFSolutionCache, LazyMinHeap, ShardedSolutionCache
from .link_partition import LinkSetPartition
from .pmc import (
    PMCOptions,
    PMCResult,
    PMCStats,
    ShardOutcome,
    construct_probe_matrix,
    construct_probe_matrix_masked,
    pmc_for_topology,
)
from .probe_matrix import ProbeMatrix
from .properties import (
    check_coverage,
    check_identifiability,
    coverage_level,
    find_confusable_failure_sets,
    identifiability_level,
)
from .virtual_links import ExtendedLinkSpace

__all__ = [
    "ProbeMatrix",
    "PMCOptions",
    "PMCResult",
    "PMCStats",
    "construct_probe_matrix",
    "construct_probe_matrix_masked",
    "pmc_for_topology",
    "Backend",
    "CostModel",
    "KernelCounters",
    "IncidenceIndex",
    "RefinablePartition",
    "RowProjection",
    "resolve_backend",
    "BatchCELFHeap",
    "CELFSolutionCache",
    "LazyMinHeap",
    "ShardedSolutionCache",
    "ShardOutcome",
    "LinkSetPartition",
    "ExtendedLinkSpace",
    "RESIDUAL_POD",
    "Subproblem",
    "decompose_routing_matrix",
    "decompose_by_link_sets",
    "link_pod_map",
    "pod_shards_for_matrix",
    "check_coverage",
    "check_identifiability",
    "coverage_level",
    "identifiability_level",
    "find_confusable_failure_sets",
]
