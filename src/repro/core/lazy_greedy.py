"""Lazy (CELF-style) candidate selection for the PMC greedy (§4.3, Observation 2).

The strawman greedy re-scores every candidate path in every iteration.  The
lazy variant keeps a min-heap keyed by the last known score of each path and
only refreshes the score of the path at the top: if the refreshed score keeps
it at the top, it is selected without touching the other candidates.  This is
the standard CELF optimisation of Leskovec et al., adapted to a minimisation
objective.

The heap is agnostic about what a "score" is; the PMC algorithm plugs in the
Eq. (1) score.  Entries carry the iteration stamp of their last refresh so the
selector can decide whether the cached score is still trustworthy.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generic, Iterable, List, Optional, Tuple, TypeVar

__all__ = ["LazyMinHeap"]

T = TypeVar("T")


class LazyMinHeap(Generic[T]):
    """Min-heap with deferred score refresh.

    Parameters
    ----------
    items:
        Iterable of (initial_score, item) pairs.
    """

    def __init__(self, items: Iterable[Tuple[float, T]] = ()):
        self._heap: List[Tuple[float, int, int, T]] = []
        self._counter = 0
        for score, item in items:
            self.push(score, item, stamp=-1)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, score: float, item: T, stamp: int) -> None:
        """Insert *item* with the given score, recorded at iteration *stamp*."""
        heapq.heappush(self._heap, (score, self._counter, stamp, item))
        self._counter += 1

    def pop_lazy(
        self,
        current_iteration: int,
        rescore: Callable[[T], float],
    ) -> Optional[Tuple[float, T]]:
        """Pop the item with the smallest *up-to-date* score.

        The entry at the top of the heap is refreshed with *rescore* unless it
        was already scored in *current_iteration*.  If the refreshed score no
        longer keeps it at the top it is pushed back and the process repeats.
        The popped item is removed from the heap (the caller decides whether
        to select or discard it).

        Returns ``None`` when the heap is empty.
        """
        while self._heap:
            score, _, stamp, item = heapq.heappop(self._heap)
            if stamp == current_iteration:
                return score, item
            fresh = rescore(item)
            if not self._heap or fresh <= self._heap[0][0]:
                return fresh, item
            self.push(fresh, item, stamp=current_iteration)
        return None

    def pop_eager(self, rescore: Callable[[T], float]) -> Optional[Tuple[float, T]]:
        """Strawman behaviour: re-score *every* remaining item, pop the minimum.

        Used when the lazy-update optimisation is disabled so that the
        running-time comparison of Table 2 can be reproduced with the same
        code path.
        """
        if not self._heap:
            return None
        rescored = [(rescore(item), counter, stamp, item) for _, counter, stamp, item in self._heap]
        heapq.heapify(rescored)
        best_score, _, _, best_item = heapq.heappop(rescored)
        self._heap = rescored
        return best_score, best_item
