"""Lazy (CELF-style) candidate selection for the PMC greedy (§4.3, Observation 2).

The strawman greedy re-scores every candidate path in every iteration.  The
lazy variant keeps a min-heap keyed by the last known score of each path and
only refreshes the score of the path at the top: if the refreshed score keeps
it at the top, it is selected without touching the other candidates.  This is
the standard CELF optimisation of Leskovec et al., adapted to a minimisation
objective.

The heap is agnostic about what a "score" is; the PMC algorithm plugs in the
Eq. (1) score.  Entries carry the iteration stamp of their last refresh so the
selector can decide whether the cached score is still trustworthy.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Callable, Generic, Hashable, Iterable, List, Optional, Tuple, TypeVar

__all__ = ["LazyMinHeap", "BatchCELFHeap", "CELFSolutionCache", "ShardedSolutionCache"]

T = TypeVar("T")


class LazyMinHeap(Generic[T]):
    """Min-heap with deferred score refresh.

    Parameters
    ----------
    items:
        Iterable of (initial_score, item) pairs.
    """

    def __init__(self, items: Iterable[Tuple[float, T]] = ()):
        self._heap: List[Tuple[float, int, int, T]] = []
        self._counter = 0
        # Logical work counters: one *evaluation* per candidate whose score
        # was (re)computed for a selection decision, one *lazy skip* per pop
        # that trusted a score cached earlier in the same iteration.  These
        # count decisions, not kernel work, so they are identical for every
        # implementation of the same CELF pop sequence (see BatchCELFHeap).
        self.evaluations = 0
        self.lazy_skips = 0
        for score, item in items:
            self.push(score, item, stamp=-1)

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, score: float, item: T, stamp: int) -> None:
        """Insert *item* with the given score, recorded at iteration *stamp*."""
        heapq.heappush(self._heap, (score, self._counter, stamp, item))
        self._counter += 1

    def pop_lazy(
        self,
        current_iteration: int,
        rescore: Callable[[T], float],
    ) -> Optional[Tuple[float, T]]:
        """Pop the item with the smallest *up-to-date* score.

        The entry at the top of the heap is refreshed with *rescore* unless it
        was already scored in *current_iteration*.  If the refreshed score no
        longer keeps it at the top it is pushed back and the process repeats.
        The popped item is removed from the heap (the caller decides whether
        to select or discard it).

        Returns ``None`` when the heap is empty.
        """
        while self._heap:
            score, _, stamp, item = heapq.heappop(self._heap)
            if stamp == current_iteration:
                self.lazy_skips += 1
                return score, item
            fresh = rescore(item)
            self.evaluations += 1
            if not self._heap or fresh <= self._heap[0][0]:
                return fresh, item
            self.push(fresh, item, stamp=current_iteration)
        return None

    def pop_eager(self, rescore: Callable[[T], float]) -> Optional[Tuple[float, T]]:
        """Strawman behaviour: re-score *every* remaining item, pop the minimum.

        Used when the lazy-update optimisation is disabled so that the
        running-time comparison of Table 2 can be reproduced with the same
        code path.
        """
        if not self._heap:
            return None
        self.evaluations += len(self._heap)
        rescored = [(rescore(item), counter, stamp, item) for _, counter, stamp, item in self._heap]
        heapq.heapify(rescored)
        best_score, _, _, best_item = heapq.heappop(rescored)
        self._heap = rescored
        return best_score, best_item

    def pop_eager_batch(
        self, rescore_batch: Callable[[List[T]], List[float]]
    ) -> Optional[Tuple[float, T]]:
        """:meth:`pop_eager` with all candidates refreshed in one batch call.

        Selections are identical to :meth:`pop_eager` (same scores, same
        counters); the batch signature lets an array backend rescore the
        whole candidate set in one vectorized kernel per iteration.
        """
        if not self._heap:
            return None
        self.evaluations += len(self._heap)
        fresh = rescore_batch([entry[3] for entry in self._heap])
        rescored = [
            (score, counter, stamp, item)
            for score, (_, counter, stamp, item) in zip(fresh, self._heap)
        ]
        heapq.heapify(rescored)
        best_score, _, _, best_item = heapq.heappop(rescored)
        self._heap = rescored
        return best_score, best_item


class BatchCELFHeap:
    """Integer-keyed CELF heap with chunked, batch-rescored pops.

    A drop-in replacement for :class:`LazyMinHeap` + :meth:`~LazyMinHeap.pop_lazy`
    built for the array incidence backend: candidate scores are *integers*
    (Eq. 1 sums minus cell counts), so a heap entry packs ``(score, counter)``
    into one Python int -- ``score * 2**41 + counter`` -- making every heap
    operation a scalar comparison instead of a tuple compare.  Pops collect a
    whole chunk of stale entries, refresh them in ONE ``rescore_batch`` call
    (one vectorized kernel), then *replay* the unbatched CELF pop sequence
    over the precomputed fresh scores with a prefix-minimum scan.

    The replay is decision-for-decision identical to :meth:`LazyMinHeap.pop_lazy`:

    * a refreshed entry pushed back this iteration wins the next pop exactly
      when its fresh score is strictly below the next stale cached score (on
      score ties the older counter wins, and pushed-back counters are newer);
    * a just-refreshed entry is selected exactly when its fresh score is
      ``<=`` the minimum of the best pushed-back score and the next cached
      score (the heap-top comparison of the unbatched loop);
    * entries past the selection point are restored untouched.

    Only the *values* of the counters differ from the unbatched run (skipped
    pushes shift them); their relative order -- the only thing pop order
    depends on -- is preserved, so selections are byte-identical.
    """

    SHIFT_BITS = 41
    _SHIFT = 1 << SHIFT_BITS  # counters stay below this; scores are small ints

    def __init__(self, items: Iterable[Tuple[int, T]] = ()):
        self._items: List[T] = []
        self._stamps: List[int] = []
        # Logical counters matching LazyMinHeap's exactly: `evaluations`
        # counts the rescores the *unbatched* replay performs (chunk
        # overshoot excluded -- overshoot entries are restored with their
        # stale keys and never influenced a decision), `lazy_skips` the pops
        # resolved from a score cached earlier in the same iteration.
        self.evaluations = 0
        self.lazy_skips = 0
        keys: List[int] = []
        shift = self._SHIFT
        for score, item in items:
            counter = len(self._items)
            self._items.append(item)
            self._stamps.append(-1)
            keys.append(score * shift + counter)
        heapq.heapify(keys)
        self._heap = keys

    def __len__(self) -> int:
        return len(self._heap)

    def _compact(self) -> None:
        """Renumber counters to bound ``_items``/``_stamps`` growth.

        Each item has at most one live heap entry, but every push-back
        allocates a fresh counter slot, so the side arrays grow with total
        rescores rather than heap size.  Renumbering entries in current
        (score, counter) order preserves the relative order of every entry --
        the only thing pop order depends on -- so selections are unaffected.
        """
        order = sorted(self._heap)
        mask = self._SHIFT - 1
        bits = self.SHIFT_BITS
        shift = self._SHIFT
        items = self._items
        stamps = self._stamps
        new_items: List[T] = []
        new_stamps: List[int] = []
        new_heap: List[int] = []
        for new_counter, key in enumerate(order):
            counter = key & mask
            new_items.append(items[counter])
            new_stamps.append(stamps[counter])
            new_heap.append((key >> bits) * shift + new_counter)
        self._items = new_items
        self._stamps = new_stamps
        self._heap = new_heap  # ascending order is a valid min-heap

    def pop_lazy_batch(
        self,
        current_iteration: int,
        rescore_batch: Callable[[List[T]], List[int]],
        batch_size: int = 32,
    ) -> Optional[Tuple[int, T]]:
        heap = self._heap
        if not heap:
            return None
        if len(self._items) > max(4 * len(heap), 65536):
            self._compact()
            heap = self._heap
        mask = self._SHIFT - 1
        bits = self.SHIFT_BITS
        items = self._items
        stamps = self._stamps
        heappop = heapq.heappop
        heappush = heapq.heappush
        # Per-iteration refresh demand is bursty (symmetric fabrics alternate
        # near-free selections with big refresh waves), so no hint from the
        # previous iteration predicts it well.  Start small and grow the
        # refill geometrically: overshoot stays a constant factor of the true
        # demand while refills stay logarithmic.
        chunk_size = batch_size

        popped_keys: List[int] = []  # stale keys in pop order (ascending)
        popped_scores: List[int] = []  # their cached scores, pre-decoded
        fresh: List[int] = []  # their batch-computed fresh scores
        boundary_key: Optional[int] = None  # first fresh entry reached, if any
        boundary_score = 0
        best: Optional[int] = None  # prefix-min of fresh ("sim top" of replay)
        best_j = -1
        i = 0
        n = 0
        kind = ""
        while True:
            if i >= n and boundary_key is None and heap:
                chunk_keys: List[int] = []
                chunk_items: List[T] = []
                while heap and len(chunk_keys) < chunk_size:
                    key = heappop(heap)
                    counter = key & mask
                    if stamps[counter] == current_iteration:
                        boundary_key = key
                        boundary_score = key >> bits
                        break
                    chunk_keys.append(key)
                    chunk_items.append(items[counter])
                if chunk_keys:
                    fresh.extend(rescore_batch(chunk_items))
                    popped_keys.extend(chunk_keys)
                    popped_scores.extend(k >> bits for k in chunk_keys)
                    n = len(popped_keys)
                chunk_size *= 2

            if i < n:
                # Rule 1: an already-refreshed entry outranks this stale one
                # (score strictly lower; on ties the older stale counter wins).
                if best is not None and best < popped_scores[i]:
                    kind = "sim"
                    break
                fresh_i = fresh[i]
                # Smallest competing cached score: popped is in ascending key
                # order and boundary / heap top rank above all of it.
                i1 = i + 1
                if i1 < n:
                    nxt = popped_scores[i1]
                elif boundary_key is not None:
                    nxt = boundary_score
                elif heap:
                    nxt = heap[0] >> bits
                else:
                    nxt = None
                if best is not None and (nxt is None or best < nxt):
                    nxt = best
                # Rule 2: the refreshed score keeps this entry at the top.
                if nxt is None or fresh_i <= nxt:
                    kind = "stale"
                    break
                if best is None or fresh_i < best:
                    best = fresh_i
                    best_j = i
                i = i1
                continue

            # Every scored stale entry was processed without a winner.
            if boundary_key is not None:
                kind = "sim" if (best is not None and best < boundary_score) else "boundary"
                break
            if not heap:
                kind = "sim" if best is not None else "none"
                break
            if best is not None and best < (heap[0] >> bits):
                kind = "sim"
                break
            # The heap top (stale, unscored) is the global minimum: refill.

        # Logical bookkeeping, mirroring the unbatched loop: entries
        # 0..limit-1 were rescored-and-pushed-back there (plus the selected
        # one itself on a "stale" selection); "sim"/"boundary" selections pop
        # an entry already refreshed this iteration, i.e. a lazy skip.
        sel_j = -1
        if kind == "sim":
            limit = i
            sel_j = best_j
            selected = (best, items[popped_keys[best_j] & mask])
            self.lazy_skips += 1
        elif kind == "stale":
            limit = i
            selected = (fresh[i], items[popped_keys[i] & mask])
        elif kind == "boundary":
            limit = n
            selected = (boundary_score, items[boundary_key & mask])
            boundary_key = None
            self.lazy_skips += 1
        else:
            limit = n
            selected = None
        self.evaluations += limit + (1 if kind == "stale" else 0)

        if limit:
            shift = self._SHIFT
            counter = len(items)
            pushed_items: List[T] = []
            for j in range(limit):
                if j == sel_j:
                    continue
                pushed_items.append(items[popped_keys[j] & mask])
                heappush(heap, fresh[j] * shift + counter)
                counter += 1
            items.extend(pushed_items)
            stamps.extend([current_iteration] * len(pushed_items))
        for j in range(i + 1 if kind == "stale" else limit, n):
            heappush(heap, popped_keys[j])
        if boundary_key is not None:
            heappush(heap, boundary_key)

        return selected


class CELFSolutionCache:
    """Memo of completed CELF runs, keyed by a digest of the subproblem inputs.

    The incremental controller re-runs the lazy greedy after every churn
    delta, but a CELF run is a pure function of its inputs: the candidate
    rows, their link sets and the options.  Whenever a decomposition
    subproblem survives a delta untouched (same links, same surviving rows),
    its previous selection can be replayed verbatim instead of rebuilding the
    heap -- that is the "reuse the previous selection, only re-run CELF on
    rows the delta touched" half of the warm start.  Keys are caller-supplied
    digests (the PMC layer hashes the packed row/link arrays), so entries
    stay tiny even when a subproblem spans half a million candidate rows.

    A bounded LRU: inserting beyond ``capacity`` evicts the least recently
    used entry.  ``hits`` / ``misses`` feed the PMC stats.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[object]:
        """The cached solution for *key*, or ``None`` (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, solution: object) -> None:
        self._entries[key] = solution
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class ShardedSolutionCache:
    """Per-pod family of :class:`CELFSolutionCache` instances.

    The pod-sharded control plane keeps warm-start state *per shard* so that
    churn confined to one pod can only invalidate that pod's cache bucket
    (plus the shared residual bucket holding the cross-pod paths); the other
    pods' buckets keep their digests and replay without solving.  Buckets are
    created on first use and keyed by ``Subproblem.pod`` (``None`` buckets
    serve non-sharded subproblems, ``RESIDUAL_POD`` the residual shard).
    """

    def __init__(self, capacity_per_shard: int = 16):
        if capacity_per_shard < 1:
            raise ValueError("capacity_per_shard must be >= 1")
        self._capacity = capacity_per_shard
        self._buckets: "OrderedDict[Optional[int], CELFSolutionCache]" = OrderedDict()

    def bucket(self, pod: Optional[int]) -> CELFSolutionCache:
        """The cache bucket of one shard (created on first use)."""
        cache = self._buckets.get(pod)
        if cache is None:
            cache = CELFSolutionCache(capacity=self._capacity)
            self._buckets[pod] = cache
        return cache

    def pods(self) -> List[Optional[int]]:
        return list(self._buckets)

    @property
    def hits(self) -> int:
        return sum(cache.hits for cache in self._buckets.values())

    @property
    def misses(self) -> int:
        return sum(cache.misses for cache in self._buckets.values())

    def __len__(self) -> int:
        return sum(len(cache) for cache in self._buckets.values())

    def clear(self) -> None:
        self._buckets.clear()
