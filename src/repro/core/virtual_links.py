"""Virtual-link extension of the routing matrix (the LINKOR step of Alg. 1).

To reduce ``beta``-identifiability to the 1-identifiability construction, the
paper augments the link set with *virtual links*: one per combination of 2 to
``beta`` physical links.  A path covers a virtual link iff it covers at least
one of its constituent physical links ("OR"-ing the columns, Fig. 3).

:class:`ExtendedLinkSpace` materialises this extension without ever building
the extended matrix ``R'`` explicitly: it assigns dense ids to every extended
link (physical links keep their position, combinations follow) and provides

* ``extended_links_containing(physical_link)`` -- the extended links whose
  combination includes the physical link, and
* ``extended_links_on_path(path_links)`` -- the union of the above over a
  path's physical links,

which is all the PMC link-set splitting needs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

__all__ = ["ExtendedLinkSpace"]


class ExtendedLinkSpace:
    """Dense numbering of physical links plus their <= beta combinations.

    Parameters
    ----------
    physical_links:
        The physical link ids (the probe-matrix universe of the subproblem).
    beta:
        Identifiability target.  ``beta <= 1`` adds no virtual links.  For
        ``beta >= 2`` every combination of ``2..beta`` physical links becomes a
        virtual link, so the extended universe has
        ``sum(C(n, i) for i in 1..beta)`` members -- exactly the column count
        of ``R'`` in §4.2.
    """

    def __init__(self, physical_links: Sequence[int], beta: int):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self._physical: Tuple[int, ...] = tuple(sorted(set(physical_links)))
        self._beta = beta

        # Extended id -> the combination (as a tuple of physical link ids).
        self._combos: List[Tuple[int, ...]] = [(link,) for link in self._physical]
        # Physical link id -> extended ids containing it.
        self._containing: Dict[int, List[int]] = {
            link: [index] for index, link in enumerate(self._physical)
        }
        if beta >= 2:
            for size in range(2, beta + 1):
                for combo in combinations(self._physical, size):
                    ext_id = len(self._combos)
                    self._combos.append(combo)
                    for link in combo:
                        self._containing[link].append(ext_id)

    # ------------------------------------------------------------------ sizes
    @property
    def beta(self) -> int:
        return self._beta

    @property
    def physical_links(self) -> Tuple[int, ...]:
        return self._physical

    @property
    def num_physical(self) -> int:
        return len(self._physical)

    @property
    def num_extended(self) -> int:
        return len(self._combos)

    @property
    def num_virtual(self) -> int:
        return self.num_extended - self.num_physical

    # ---------------------------------------------------------------- lookups
    def combination(self, extended_id: int) -> Tuple[int, ...]:
        """The physical links an extended link stands for."""
        return self._combos[extended_id]

    def is_virtual(self, extended_id: int) -> bool:
        return len(self._combos[extended_id]) > 1

    def physical_to_extended(self, physical_link: int) -> int:
        """The extended id of a single physical link.

        Physical links occupy the first ``num_physical`` extended ids, and the
        singleton extended link is always the first entry of the containing
        list, so this lookup is O(1).
        """
        try:
            return self._containing[physical_link][0]
        except KeyError:
            raise KeyError(f"link {physical_link} is not part of this extended space") from None

    def extended_links_containing(self, physical_link: int) -> Sequence[int]:
        """Extended ids whose combination includes the given physical link."""
        try:
            return self._containing[physical_link]
        except KeyError:
            raise KeyError(f"link {physical_link} is not part of this extended space") from None

    def extended_links_on_path(self, path_links: Iterable[int]) -> Set[int]:
        """Extended ids covered by a path (OR of the member columns, Fig. 3)."""
        covered: Set[int] = set()
        for link in path_links:
            ids = self._containing.get(link)
            if ids:
                covered.update(ids)
        return covered

    def expected_extended_count(self) -> int:
        """``sum(C(n, i) for i in 1..beta)`` -- for documentation and tests."""
        from math import comb

        n = self.num_physical
        upper = max(1, self._beta)
        return sum(comb(n, i) for i in range(1, upper + 1))
