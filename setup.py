"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e . --no-build-isolation --no-use-pep517`` works in offline
environments that lack the ``wheel`` package (legacy editable installs go
through ``setup.py develop``).
"""

from setuptools import setup

setup()
