"""Lifecycle tests for the shared-memory incidence plane and persistent pools.

Three layers of guarantees, in rough order of blast radius:

* **share/attach correctness** -- an attached index is a faithful read-only
  view of the exported one, the python backend keeps its pickle path, and
  repeated ``share()`` calls reuse one segment.
* **persistent pools** -- keyed :func:`repro.parallel.pool_map` calls reuse a
  warm executor, a broken pool is retired and respawned, and
  ``REPRO_POOL_PERSIST=0`` restores pool-per-call behaviour.
* **no leaks** -- subprocess scenarios (clean exit, Ctrl-C, worker crash)
  leave no ``/dev/shm`` segment behind and trigger no resource-tracker
  warnings, which is the property the atexit sweeps exist for.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro import parallel
from repro.core.incidence import (
    Backend,
    IncidenceIndex,
    SharedIncidence,
    release_all_shares,
    shm_enabled,
    shm_telemetry,
)
from repro.parallel import (
    pool_map,
    pool_persistence_enabled,
    pool_telemetry,
    resolve_start_method,
    shutdown_pools,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

# Same fixed instance the incidence unit tests use: 5 paths over 6 links.
LINKS = [3, 7, 10, 11, 20, 21]
PATHS = [
    frozenset({3, 7}),
    frozenset({7, 10}),
    frozenset({11, 20}),
    frozenset(),
    frozenset({20, 21, 3}),
]


def _numpy_index() -> IncidenceIndex:
    return IncidenceIndex(PATHS, LINKS, backend=Backend.NUMPY)


@pytest.fixture(autouse=True)
def _clean_process_state():
    """Every test starts and ends with no live pools or exported segments."""
    shutdown_pools()
    release_all_shares()
    yield
    shutdown_pools()
    release_all_shares()


def _segment_is_gone(name: str) -> bool:
    try:
        leftover = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    # Only on failure: close the accidental attach so the test itself
    # does not leak (the owner already unlinked or never will).
    leftover.close()  # repro: allow[REP008] -- probe attach on the failure path only
    return False


# ---------------------------------------------------------------------------
# share / attach round trip
# ---------------------------------------------------------------------------

class TestShareAttach:
    def test_round_trip_is_faithful(self):
        index = _numpy_index()
        share = index.share()  # repro: allow[REP008] -- released via release_share() below
        attached = IncidenceIndex.attach(share.handle)
        try:
            assert attached.attached
            assert attached.link_ids == index.link_ids
            assert attached.num_paths == index.num_paths
            assert attached.nnz == index.nnz
            assert list(attached.coverage_counts()) == list(index.coverage_counts())
            for row in range(index.num_paths):
                assert attached.row_link_set(row) == index.row_link_set(row)
        finally:
            attached.detach()
            index.release_share()
        assert _segment_is_gone(share.name)

    def test_share_is_cached_until_released(self):
        index = _numpy_index()
        before = shm_telemetry()["shm_segments_created"]
        share = index.share()  # repro: allow[REP008] -- released via release_share() below
        assert index.share() is share
        assert shm_telemetry()["shm_segments_created"] == before + 1
        index.release_share()
        index.release_share()  # idempotent
        fresh = index.share()  # repro: allow[REP008] -- released via release_share() below
        assert fresh is not share
        assert fresh.handle.generation > share.handle.generation
        index.release_share()

    def test_attached_views_are_read_only(self):
        index = _numpy_index()
        with index.share() as share:
            attached = IncidenceIndex.attach(share.handle)
            try:
                counts = attached.coverage_counts()
                with pytest.raises(ValueError):
                    counts[0] = 99
            finally:
                attached.detach()

    def test_context_manager_unlinks(self):
        index = _numpy_index()
        with index.share() as share:
            name = share.name
            assert not _segment_is_gone(name)
        assert share.closed
        assert _segment_is_gone(name)

    def test_python_backend_keeps_pickle_path(self):
        index = IncidenceIndex(PATHS, LINKS, backend=Backend.PYTHON)
        with pytest.raises(RuntimeError, match="python backend"):
            index.share()  # repro: allow[REP008] -- the call raises; nothing is acquired

    def test_attached_index_cannot_reshare(self):
        index = _numpy_index()
        with index.share() as share:
            attached = IncidenceIndex.attach(share.handle)
            try:
                with pytest.raises(RuntimeError):
                    attached.share()  # repro: allow[REP008] -- the call raises; nothing is acquired
            finally:
                attached.detach()

    def test_share_never_ticks_counters(self):
        index = _numpy_index()
        index.coverage_counts()  # warm the cache so share() has nothing to compute
        before = index.counters.as_dict()
        with index.share():
            pass
        assert index.counters.as_dict() == before

    def test_shm_enabled_resolver(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_enabled()
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_enabled()
        monkeypatch.setenv("REPRO_SHM", "on")
        assert shm_enabled()

    def test_release_all_shares_sweeps(self):
        index = _numpy_index()
        share = index.share()  # repro: allow[REP008] -- swept by release_all_shares below
        assert release_all_shares() == 1
        assert share.closed
        assert _segment_is_gone(share.name)


# ---------------------------------------------------------------------------
# coverage-count caching
# ---------------------------------------------------------------------------

class TestCoverageCache:
    @pytest.mark.parametrize("backend", [Backend.NUMPY, Backend.PYTHON])
    def test_vector_computed_once_but_still_ticked(self, backend):
        index = IncidenceIndex(PATHS, LINKS, backend=backend)
        first = index.coverage_counts()
        second = index.coverage_counts()
        assert second is first  # the cached vector, not a recompute
        assert index.counters.calls("coverage_counts") == 2

    def test_active_counts_cache_tracks_mask(self):
        index = _numpy_index()
        baseline = list(index.active_coverage_counts())
        assert index.active_coverage_counts() is index.active_coverage_counts()
        index.apply_link_mask([7])
        masked = list(index.active_coverage_counts())
        assert masked != baseline
        index.revert_link_mask([7])
        assert list(index.active_coverage_counts()) == baseline
        index.apply_link_mask([7])
        index.clear_link_mask()
        assert list(index.active_coverage_counts()) == baseline


# ---------------------------------------------------------------------------
# persistent pools
# ---------------------------------------------------------------------------

def _square(x: int) -> int:
    return x * x


def _die(_x: int) -> int:
    os._exit(13)  # simulate a worker crash, not an exception


class TestPersistentPool:
    def test_keyed_calls_reuse_one_pool(self):
        before = pool_telemetry()
        first = pool_map(_square, [1, 2, 3], jobs=2, context_key="shmtest.reuse")
        second = pool_map(_square, [4, 5, 6], jobs=2, context_key="shmtest.reuse")
        assert first == [1, 4, 9]
        assert second == [16, 25, 36]
        after = pool_telemetry()
        assert after["pool_spawns"] - before["pool_spawns"] == 1
        assert after["pool_reuses"] - before["pool_reuses"] == 1

    def test_distinct_keys_get_distinct_pools(self):
        before = pool_telemetry()
        pool_map(_square, [1, 2], jobs=2, context_key="shmtest.a")
        pool_map(_square, [1, 2], jobs=2, context_key="shmtest.b")
        after = pool_telemetry()
        assert after["pool_spawns"] - before["pool_spawns"] == 2
        assert len(parallel._POOLS) == 2

    def test_lru_cap_bounds_live_pools(self):
        for tag in ("a", "b", "c", "d", "e"):
            pool_map(_square, [1, 2], jobs=2, context_key=f"shmtest.lru.{tag}")
        assert len(parallel._POOLS) <= parallel._MAX_POOLS

    def test_persistence_off_restores_pool_per_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_PERSIST", "0")
        assert not pool_persistence_enabled()
        before = pool_telemetry()
        pool_map(_square, [1, 2], jobs=2, context_key="shmtest.ephemeral")
        pool_map(_square, [1, 2], jobs=2, context_key="shmtest.ephemeral")
        after = pool_telemetry()
        assert after["pool_spawns"] - before["pool_spawns"] == 2
        assert after["pool_reuses"] == before["pool_reuses"]
        assert not parallel._POOLS

    def test_broken_pool_is_retired_and_respawned(self):
        before = pool_telemetry()
        with pytest.raises(BrokenProcessPool):
            pool_map(_die, [1, 2], jobs=2, context_key="shmtest.crash")
        # The dead executor must not be handed out again: the next keyed
        # dispatch spawns a fresh generation and succeeds.
        result = pool_map(_square, [3, 4], jobs=2, context_key="shmtest.crash")
        assert result == [9, 16]
        after = pool_telemetry()
        assert after["pool_spawns"] - before["pool_spawns"] == 2
        assert after["pool_shutdowns"] - before["pool_shutdowns"] >= 1

    def test_shutdown_pools_is_idempotent(self):
        pool_map(_square, [1, 2], jobs=2, context_key="shmtest.shutdown")
        assert shutdown_pools() == 1
        assert shutdown_pools() == 0

    def test_resolve_start_method(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_START", raising=False)
        assert resolve_start_method() is None
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert resolve_start_method() == "spawn"
        monkeypatch.setenv("REPRO_MP_START", "bogus")
        with pytest.raises(ValueError):
            resolve_start_method()


# ---------------------------------------------------------------------------
# subprocess lifecycle: no leaked segments, no resource-tracker noise
# ---------------------------------------------------------------------------

# Scripts run from files (not ``-c``) with a ``__main__`` guard so the spawn
# start method can re-import the worker functions in child processes.

_CLEAN_EXIT_SCRIPT = r"""
import sys
from repro.core.incidence import Backend, IncidenceIndex


def main():
    index = IncidenceIndex([{1, 2}, {2, 3}], [1, 2, 3], backend=Backend.NUMPY)
    share = index.share()  # never released: the atexit sweep must catch it
    sys.stdout.write(share.name)


if __name__ == "__main__":
    main()
"""

_SIGINT_SCRIPT = r"""
import os
import signal
import sys
from repro.core.incidence import Backend, IncidenceIndex
from repro.parallel import pool_map


def _identity(x):
    return x


def main():
    index = IncidenceIndex([{1, 2}, {2, 3}], [1, 2, 3], backend=Backend.NUMPY)
    share = index.share()
    pool_map(_identity, [1, 2, 3], jobs=2, context_key="lifecycle.sigint")
    sys.stdout.write(share.name)
    sys.stdout.flush()
    os.kill(os.getpid(), signal.SIGINT)  # KeyboardInterrupt -> atexit sweeps run


if __name__ == "__main__":
    main()
"""

_WORKER_CRASH_SCRIPT = r"""
import os
import sys
from concurrent.futures.process import BrokenProcessPool
from repro.core.incidence import Backend, IncidenceIndex
from repro.parallel import pool_map

_INDEX = None


def _attach(handle):
    global _INDEX
    _INDEX = IncidenceIndex.attach(handle)


def _crash(x):
    os._exit(17)


def main():
    index = IncidenceIndex([{1, 2}, {2, 3}], [1, 2, 3], backend=Backend.NUMPY)
    share = index.share()
    try:
        pool_map(_crash, [1, 2], jobs=2,
                 initializer=_attach, initargs=(share.handle,),
                 context_key="lifecycle.crash")
    except BrokenProcessPool:
        pass
    else:
        raise SystemExit("expected the pool to break")
    sys.stdout.write(share.name)


if __name__ == "__main__":
    main()
"""


@pytest.mark.slow
class TestSubprocessLifecycle:
    def _run(self, tmp_path, script: str, expect_returncode=(0,)) -> str:
        script_path = tmp_path / "scenario.py"
        script_path.write_text(script, encoding="utf-8")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, str(script_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode in expect_returncode, proc.stderr[-2000:]
        assert "resource_tracker" not in proc.stderr, proc.stderr[-2000:]
        assert "leaked" not in proc.stderr, proc.stderr[-2000:]
        name = proc.stdout.strip().splitlines()[-1]
        assert name.startswith("repro_inc_")
        assert _segment_is_gone(name), f"segment {name} survived the process"
        return name

    def test_clean_exit_sweeps_unreleased_share(self, tmp_path):
        self._run(tmp_path, _CLEAN_EXIT_SCRIPT)

    def test_sigint_sweeps_share_and_pools(self, tmp_path):
        # SIGINT surfaces as KeyboardInterrupt: the interpreter still runs
        # atexit hooks, so both sweeps fire.  Exit code varies by platform
        # (1 from the unhandled KeyboardInterrupt, or 130/-2).
        self._run(tmp_path, _SIGINT_SCRIPT, expect_returncode=(1, 130, -signal.SIGINT))

    def test_worker_crash_leaves_no_segment(self, tmp_path):
        self._run(tmp_path, _WORKER_CRASH_SCRIPT)
