"""Tests for the experiment runner, table export formats and budget accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BaselineConfig, NetNORADSystem, PingmeshSystem
from repro.experiments import (
    ExperimentSpec,
    ExperimentSuite,
    ExperimentTable,
    default_suite,
    execute_spec,
    run_all,
)
from repro.monitor import ControllerConfig
from repro.simulation import FailureScenario, SeededStreams
from repro.topology import build_fattree


class TestTableExports:
    def make_table(self):
        table = ExperimentTable(title="demo", columns=["name", "value"])
        table.add_row(name="a", value=1)
        table.add_row(name="b", value=2.5)
        table.add_note("demo note")
        return table

    def test_markdown(self):
        markdown = self.make_table().render_markdown()
        assert "| name | value |" in markdown
        assert "| a | 1 |" in markdown
        assert "*note: demo note*" in markdown

    def test_csv(self):
        csv_text = self.make_table().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        self.make_table().write_csv(path)
        assert path.read_text().startswith("name,value")


class TestRunner:
    def tiny_suite(self):
        suite = ExperimentSuite(name="tiny")
        table = ExperimentTable(title="t1", columns=["x"])
        table.add_row(x=1)
        suite.add("first", lambda: table)
        other = ExperimentTable(title="t2", columns=["y"])
        other.add_row(y=2)
        suite.add("second", lambda: other)
        return suite

    def test_run_all_returns_runs(self):
        runs = run_all(self.tiny_suite(), verbose=False)
        assert [run.name for run in runs] == ["first", "second"]
        assert all(run.elapsed_seconds >= 0 for run in runs)

    def test_run_all_only_filter(self):
        runs = run_all(self.tiny_suite(), only=["second"], verbose=False)
        assert [run.name for run in runs] == ["second"]

    def test_run_all_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            run_all(self.tiny_suite(), only=["ghost"], verbose=False)

    def test_run_all_writes_outputs(self, tmp_path):
        run_all(self.tiny_suite(), output_dir=tmp_path, verbose=False)
        assert (tmp_path / "first.txt").exists()
        assert (tmp_path / "first.csv").exists()
        assert (tmp_path / "second.txt").exists()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_all(self.tiny_suite(), jobs=0, verbose=False)

    def test_default_suite_names_cover_all_artifacts(self):
        names = set(default_suite("quick").names())
        assert {
            "table2",
            "table3",
            "table4",
            "table5",
            "figure4",
            "figure5",
            "figure6",
            "pll_comparison",
        } <= names
        assert set(default_suite("full").names()) == names
        with pytest.raises(ValueError):
            default_suite("enormous")

    def test_default_suite_entries_are_picklable_specs(self):
        import pickle

        for suite_scale in ("quick", "full"):
            for entry in default_suite(suite_scale).experiments.values():
                assert isinstance(entry, ExperimentSpec)
                pickle.loads(pickle.dumps(entry))


class TestParallelRunner:
    def spec_suite(self):
        suite = ExperimentSuite(name="spec-tiny")
        suite.add_spec("t2", "table2", scale="tiny")
        suite.add_spec("fig6", "figure6", radix=4, trials=2, failure_counts=(1,))
        return suite

    def test_execute_spec_rejects_unknown_experiment(self):
        with pytest.raises(ValueError):
            execute_spec(ExperimentSpec(experiment="table99"))

    def test_parallel_matches_serial_byte_for_byte(self):
        """The acceptance gate: a --jobs N sweep yields the same tables as a
        serial one on the deterministic view (timing cells are informational)."""
        serial = run_all(self.spec_suite(), jobs=1, seed=123, verbose=False)
        parallel = run_all(self.spec_suite(), jobs=2, seed=123, verbose=False)
        assert [r.name for r in serial] == [r.name for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.table.deterministic_rows() == b.table.deterministic_rows()
            assert a.table.notes == b.table.notes
            assert a.table.metadata == b.table.metadata

    def test_parallel_runs_legacy_callables_in_parent(self):
        suite = self.spec_suite()
        state = {"ran_in": None}

        def local_runner():
            import os

            state["ran_in"] = os.getpid()
            table = ExperimentTable(title="local", columns=["x"])
            table.add_row(x=1)
            return table

        suite.add("local", local_runner)
        import os

        runs = run_all(suite, jobs=2, verbose=False)
        assert [r.name for r in runs] == ["t2", "fig6", "local"]
        assert state["ran_in"] == os.getpid()  # closures cannot cross the pool

    def test_seed_derivation_is_order_independent(self):
        """Per-experiment seeds depend on (root seed, name) only, so results
        do not change when the suite is filtered or reordered."""
        full = run_all(self.spec_suite(), jobs=1, seed=99, verbose=False)
        only_fig6 = run_all(
            self.spec_suite(), only=["fig6"], jobs=1, seed=99, verbose=False
        )
        by_name = {r.name: r for r in full}
        assert by_name["fig6"].table.rows == only_fig6[0].table.rows
        # And the derivation is the documented SeededStreams.spawn_seed.
        assert SeededStreams(99).spawn_seed("fig6") == SeededStreams(99).spawn_seed("fig6")

    def test_seeded_sweep_differs_from_other_seed(self):
        a = run_all(self.spec_suite(), only=["fig6"], jobs=1, seed=1, verbose=False)
        b = run_all(self.spec_suite(), only=["fig6"], jobs=1, seed=2, verbose=False)
        assert a[0].table.rows != b[0].table.rows

    def migrated_suite(self):
        """The experiments the REP001 cleanup routed through SeededStreams."""
        suite = ExperimentSuite(name="migrated")
        suite.add_spec("fig5", "figure5", radix=4, trials=2,
                       detector_frequencies=(5,), baseline_probes_per_pair=(5,))
        suite.add_spec("fig6", "figure6", radix=4, trials=2, failure_counts=(1, 2))
        suite.add_spec("t4", "table4", radix=4, trials=2,
                       alpha_beta=((2, 1),), failure_counts=(1,))
        suite.add_spec("t5", "table5", radix=4, trials=2, failure_counts=(1,))
        suite.add_spec("pll", "pll_comparison", radix=4, trials=2)
        return suite

    def test_migrated_experiments_parallel_matches_serial_byte_for_byte(self):
        """Regression pin for the SeededStreams migration (REP001 cleanup):
        every migrated experiment yields byte-identical deterministic rows,
        notes and metadata whether the sweep runs serial or pooled."""
        serial = run_all(self.migrated_suite(), jobs=1, seed=321, verbose=False)
        parallel = run_all(self.migrated_suite(), jobs=2, seed=321, verbose=False)
        assert [r.name for r in serial] == [r.name for r in parallel]
        for a, b in zip(serial, parallel):
            assert a.table.deterministic_rows() == b.table.deterministic_rows(), a.name
            assert a.table.notes == b.table.notes, a.name
            assert a.table.metadata == b.table.metadata, a.name


class TestBaselineBudgetCap:
    def test_budget_caps_total_probes(self):
        topology = build_fattree(4)
        budget = 800
        config = BaselineConfig(probes_per_pair=5, probe_budget_per_window=budget)
        system = PingmeshSystem(topology, np.random.default_rng(1), config)
        bad = topology.switch_links[5].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert outcome.total_probes <= budget + config.localization_probes_per_path

    def test_budget_caps_netnorad_too(self):
        topology = build_fattree(4)
        budget = 600
        config = BaselineConfig(probes_per_pair=5, probe_budget_per_window=budget)
        system = NetNORADSystem(topology, np.random.default_rng(2), config)
        bad = topology.switch_links[9].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert outcome.total_probes <= budget + 4 * config.localization_probes_per_path

    def test_localization_budget_helper(self):
        config = BaselineConfig(probe_budget_per_window=100)
        assert config.localization_budget(detection_probes=60) == 40
        assert config.localization_budget(detection_probes=150) == 0
        assert BaselineConfig().localization_budget(10) is None

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BaselineConfig(probe_budget_per_window=0)


class TestLossConfirmationKnob:
    def test_zero_confirmations_keeps_exact_budget(self):
        from repro.monitor import DetectorSystem

        topology = build_fattree(4)
        config = ControllerConfig(
            alpha=3, beta=1, probes_per_second=10, loss_confirmation_probes=0
        )
        system = DetectorSystem(topology, np.random.default_rng(3), config)
        system.run_controller_cycle()
        bad = topology.switch_links[5].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        nominal = sum(
            max(1, int(pl.probes_per_second * pl.report_interval_seconds // max(pl.num_paths, 1)))
            * pl.num_paths
            for pl in system.cycle.pinglists.values()
        )
        assert outcome.probes_sent == nominal

    def test_negative_confirmations_rejected(self):
        with pytest.raises(ValueError):
            ControllerConfig(loss_confirmation_probes=-1)
