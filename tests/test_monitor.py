"""Tests for the monitoring components: pinglists, watchdog, controller, pinger, responder, diagnoser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitor import (
    Controller,
    ControllerConfig,
    DetectorSystem,
    Diagnoser,
    Pinger,
    Pinglist,
    PinglistEntry,
    Responder,
    Watchdog,
)
from repro.routing import ProbePacket
from repro.simulation import FailureScenario, LossMode, ProbeSimulator


class TestPinglist:
    def make_pinglist(self):
        return Pinglist(
            version=3,
            pinger_server="pod0_edge0_srv0",
            entries=[
                PinglistEntry(0, "pod1_edge0_srv0", "core0_0", ("pod0_edge0", "pod0_agg0")),
                PinglistEntry(4, "pod2_edge1_srv1", "core1_1", ("pod0_edge0", "pod0_agg1")),
            ],
            intra_rack_targets=("pod0_edge0_srv1",),
            probes_per_second=15.0,
            dscp_values=(0, 8),
        )

    def test_basic_accessors(self):
        pinglist = self.make_pinglist()
        assert pinglist.num_paths == 2
        assert pinglist.path_indices() == [0, 4]

    def test_xml_round_trip(self):
        pinglist = self.make_pinglist()
        restored = Pinglist.from_xml(pinglist.to_xml())
        assert restored.version == pinglist.version
        assert restored.pinger_server == pinglist.pinger_server
        assert restored.path_indices() == pinglist.path_indices()
        assert restored.intra_rack_targets == pinglist.intra_rack_targets
        assert restored.probes_per_second == pinglist.probes_per_second
        assert restored.dscp_values == (0, 8)
        assert restored.entries[0].node_walk == pinglist.entries[0].node_walk

    def test_from_xml_rejects_wrong_root(self):
        with pytest.raises(ValueError):
            Pinglist.from_xml("<notapinglist/>")


class TestWatchdog:
    def test_server_health_tracking(self, fattree4):
        watchdog = Watchdog(fattree4)
        server = fattree4.servers[0].name
        assert watchdog.is_server_healthy(server)
        watchdog.mark_server_unhealthy(server)
        assert not watchdog.is_server_healthy(server)
        watchdog.mark_server_healthy(server)
        assert watchdog.is_server_healthy(server)

    def test_unknown_server_rejected(self, fattree4):
        with pytest.raises(Exception):
            Watchdog(fattree4).mark_server_unhealthy("ghost")

    def test_healthy_servers_under(self, fattree4):
        watchdog = Watchdog(fattree4)
        tor = fattree4.tor_switches[0].name
        servers = watchdog.healthy_servers_under(tor)
        assert len(servers) == 2
        watchdog.mark_server_unhealthy(servers[0])
        assert len(watchdog.healthy_servers_under(tor)) == 1

    def test_probe_topology_excludes_failed_link(self, fattree4):
        watchdog = Watchdog(fattree4)
        bad = fattree4.switch_links[0]
        watchdog.report_failed_link(bad.link_id)
        filtered = watchdog.probe_topology()
        assert not filtered.has_link(bad.a, bad.b)
        assert len(filtered.links) == len(fattree4.links) - 1

    def test_probe_topology_excludes_failed_switch(self, fattree4):
        watchdog = Watchdog(fattree4)
        watchdog.report_failed_switch("pod0_agg0")
        filtered = watchdog.probe_topology()
        assert "pod0_agg0" not in filtered.nodes

    def test_probe_topology_switch_and_link(self, fattree4):
        watchdog = Watchdog(fattree4)
        watchdog.report_failed_switch("pod0_agg0")
        other = fattree4.link_between("pod1_edge0", "pod1_agg0")
        watchdog.report_failed_link(other.link_id)
        filtered = watchdog.probe_topology()
        assert "pod0_agg0" not in filtered.nodes
        assert not filtered.has_link("pod1_edge0", "pod1_agg0")

    def test_clear_network_failures(self, fattree4):
        watchdog = Watchdog(fattree4)
        watchdog.report_failed_link(0)
        watchdog.clear_network_failures()
        assert len(watchdog.probe_topology().links) == len(fattree4.links)


class TestControllerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [dict(pingers_per_tor=0), dict(path_replication=0), dict(probes_per_second=0)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ControllerConfig(**kwargs)


class TestController:
    def test_run_cycle_produces_valid_matrix(self, fattree4):
        controller = Controller(fattree4, ControllerConfig(alpha=2, beta=1))
        cycle = controller.run_cycle()
        assert cycle.version == 1
        assert cycle.probe_matrix.satisfies_coverage(2)
        assert cycle.num_pingers == 2 * len(fattree4.tor_switches)

    def test_versions_increment(self, fattree4):
        controller = Controller(fattree4, ControllerConfig(alpha=1, beta=1))
        assert controller.run_cycle().version == 1
        assert controller.run_cycle().version == 2

    def test_every_path_assigned_to_replication_pingers(self, fattree4):
        config = ControllerConfig(alpha=2, beta=1, path_replication=2, pingers_per_tor=2)
        cycle = Controller(fattree4, config).run_cycle()
        assignments = {}
        for pinglist in cycle.pinglists.values():
            for index in pinglist.path_indices():
                assignments[index] = assignments.get(index, 0) + 1
        assert set(assignments) == set(range(cycle.probe_matrix.num_paths))
        assert all(count == 2 for count in assignments.values())

    def test_pinger_owns_only_paths_from_its_rack(self, fattree4):
        cycle = Controller(fattree4, ControllerConfig(alpha=2, beta=1)).run_cycle()
        for server, pinglist in cycle.pinglists.items():
            tor = fattree4.tor_of(server).name
            for index in pinglist.path_indices():
                assert cycle.probe_matrix.path(index).src == tor

    def test_targets_are_servers_under_destination_tor(self, fattree4):
        cycle = Controller(fattree4, ControllerConfig(alpha=2, beta=1)).run_cycle()
        for pinglist in cycle.pinglists.values():
            for entry in pinglist.entries:
                path = cycle.probe_matrix.path(entry.path_index)
                target_tor = fattree4.tor_of(entry.target_server).name
                assert target_tor == path.dst

    def test_unhealthy_servers_not_selected_as_pingers(self, fattree4):
        watchdog = Watchdog(fattree4)
        tor = fattree4.tor_switches[0].name
        for server in fattree4.servers_under(tor):
            watchdog.mark_server_unhealthy(server.name)
        controller = Controller(fattree4, ControllerConfig(alpha=1, beta=1), watchdog=watchdog)
        assignment = controller.select_pingers()
        # Falls back to the ToR itself when no healthy server exists.
        assert assignment[tor] == [tor]

    def test_failed_link_avoided_in_probe_paths(self, fattree4):
        watchdog = Watchdog(fattree4)
        bad = fattree4.switch_links[3]
        watchdog.report_failed_link(bad.link_id)
        controller = Controller(fattree4, ControllerConfig(alpha=1, beta=1), watchdog=watchdog)
        cycle = controller.run_cycle()
        for index in range(cycle.probe_matrix.num_paths):
            assert bad.link_id not in cycle.probe_matrix.links_on(index)

    def test_pingers_per_tor_bounded_by_available_servers(self, fattree4):
        config = ControllerConfig(alpha=1, beta=1, pingers_per_tor=4)
        assignment = Controller(fattree4, config).select_pingers()
        for servers in assignment.values():
            assert len(servers) == 2  # only two servers per rack in Fattree(4)


class TestResponder:
    def test_echoes_matching_packet(self):
        responder = Responder(server_name="srv1", listen_port=53535)
        packet = ProbePacket("srv0", "srv1", 40000, 53535)
        echo = responder.handle(packet)
        assert echo is not None
        assert echo.src_server == "srv1" and echo.dst_server == "srv0"
        assert echo.dst_port == 40000
        assert responder.echoes == 1

    def test_ignores_wrong_port_or_server(self):
        responder = Responder(server_name="srv1", listen_port=53535)
        assert responder.handle(ProbePacket("srv0", "srv1", 40000, 9)) is None
        assert responder.handle(ProbePacket("srv0", "srv9", 40000, 53535)) is None
        assert responder.echoes == 0


class TestPinger:
    def make_pinger(self, fattree4, probe_matrix, scenario, probes_per_second=10.0, confirm=0):
        pinglist = Pinglist(
            version=1,
            pinger_server="pod0_edge0_srv0",
            probes_per_second=probes_per_second,
        )
        for index, path in enumerate(probe_matrix.paths):
            if path.src == "pod0_edge0":
                pinglist.entries.append(
                    PinglistEntry(index, "x", path.via, path.nodes)
                )
        simulator = ProbeSimulator(fattree4, scenario, np.random.default_rng(0))
        paths_by_index = {i: p for i, p in enumerate(probe_matrix.paths)}
        return Pinger(pinglist, paths_by_index, simulator, confirm_losses=confirm)

    def test_probe_budget_split_across_paths(self, fattree4, fattree4_probe_matrix):
        pinger = self.make_pinger(fattree4, fattree4_probe_matrix, FailureScenario())
        per_path = pinger.probes_per_path_per_window()
        budget = 10.0 * 30
        assert per_path == int(budget // pinger.pinglist.num_paths)
        assert pinger.probes_per_window() == per_path * pinger.pinglist.num_paths

    def test_healthy_run_reports_no_losses(self, fattree4, fattree4_probe_matrix):
        pinger = self.make_pinger(fattree4, fattree4_probe_matrix, FailureScenario())
        report = pinger.run_window()
        assert report.probes_lost == 0
        assert report.loss_rate == 0.0
        assert len(report.observations) == pinger.pinglist.num_paths

    def test_losses_reported_and_confirmed(self, fattree4, fattree4_probe_matrix):
        # Fail a link crossed by this pinger's ToR.
        bad = None
        for index, path in enumerate(fattree4_probe_matrix.paths):
            if path.src == "pod0_edge0":
                bad = next(iter(fattree4_probe_matrix.links_on(index)))
                break
        scenario = FailureScenario.single_link(bad)
        pinger = self.make_pinger(fattree4, fattree4_probe_matrix, scenario, confirm=2)
        report = pinger.run_window()
        assert report.probes_lost > 0
        # Confirmation probes inflate the sent count beyond the nominal budget.
        assert report.probes_sent > pinger.probes_per_window()


class TestDiagnoser:
    def test_window_lifecycle(self, fattree4, fattree4_probe_matrix, rng):
        diagnoser = Diagnoser(fattree4, fattree4_probe_matrix)
        bad = fattree4_probe_matrix.link_ids[10]
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad), rng)
        observations = simulator.observe_probe_matrix(fattree4_probe_matrix)
        from repro.monitor import PingerReport

        report = PingerReport(
            pinger_server="p", window_seconds=30, observations=observations,
            probes_sent=observations.total_sent(), probes_lost=observations.total_lost(),
        )
        diagnoser.ingest(report)
        assert diagnoser.pending_report_count() == 1
        diagnosis = diagnoser.run_window()
        assert diagnosis.suspected_links == [bad]
        assert diagnoser.pending_report_count() == 0
        assert len(diagnoser.history) == 1
        assert diagnosis.alerts[0].link_id == bad
        assert "<->" in diagnosis.alerts[0].describe()

    def test_empty_window(self, fattree4, fattree4_probe_matrix):
        diagnoser = Diagnoser(fattree4, fattree4_probe_matrix)
        diagnosis = diagnoser.run_window()
        assert diagnosis.suspected_links == []
        assert diagnosis.probes_analyzed == 0

    def test_update_probe_matrix(self, fattree4, fattree4_probe_matrix, fattree4_probe_matrix_11):
        diagnoser = Diagnoser(fattree4, fattree4_probe_matrix)
        diagnoser.update_probe_matrix(fattree4_probe_matrix_11)
        assert diagnoser.probe_matrix is fattree4_probe_matrix_11


class TestDetectorSystem:
    def test_end_to_end_single_failure(self, fattree4):
        system = DetectorSystem(fattree4, np.random.default_rng(5))
        system.run_controller_cycle()
        bad = fattree4.switch_links[14].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert outcome.suspected_links == [bad]
        assert outcome.metrics.accuracy == 1.0
        assert outcome.probes_sent > 0

    def test_probe_matrix_property_requires_cycle(self, fattree4):
        system = DetectorSystem(fattree4, np.random.default_rng(5))
        with pytest.raises(RuntimeError):
            _ = system.probe_matrix

    def test_window_autostarts_cycle(self, fattree4):
        system = DetectorSystem(fattree4, np.random.default_rng(5))
        outcome = system.run_window(FailureScenario())
        assert outcome.metrics.accuracy == 1.0
        assert outcome.suspected_links == []

    def test_down_pinger_does_not_break_monitoring(self, fattree4):
        system = DetectorSystem(fattree4, np.random.default_rng(6))
        system.run_controller_cycle()
        # Take down one pinger; its paths are still covered by its rack mate.
        some_pinger = next(iter(system.cycle.pinglists))
        system.watchdog.mark_server_unhealthy(some_pinger)
        bad = fattree4.switch_links[9].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert bad in outcome.suspected_links
        assert len(outcome.pinger_reports) == system.cycle.num_pingers - 1

    def test_switch_down_scenario(self, fattree4):
        system = DetectorSystem(fattree4, np.random.default_rng(7))
        system.run_controller_cycle()
        scenario = FailureScenario.switch_down(fattree4, "pod2_agg1")
        outcome = system.run_window(scenario)
        # A dead switch and the failure of all its links are indistinguishable
        # from end-to-end observations (§4.1), so PLL reports the smallest
        # explaining set.  What matters operationally: every suspect must be a
        # link of the dead switch, and at least one of them must be blamed so
        # the operator is pointed at the right device.
        incident = {
            l.link_id for l in fattree4.links_of("pod2_agg1")
            if system.probe_matrix.contains_link(l.link_id)
        }
        assert outcome.suspected_links
        assert set(outcome.suspected_links) <= incident
        assert outcome.metrics.false_positive_ratio == 0.0
