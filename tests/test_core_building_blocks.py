"""Tests for PMC's building blocks: properties, virtual links, partition, lazy heap, decomposition."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    ExtendedLinkSpace,
    LazyMinHeap,
    LinkSetPartition,
    ProbeMatrix,
    check_coverage,
    check_identifiability,
    coverage_level,
    decompose_by_link_sets,
    decompose_routing_matrix,
    find_confusable_failure_sets,
    identifiability_level,
)
from repro.routing import Path, RoutingMatrix
from repro.topology import Tier, TopologyBuilder


def toy_topology():
    """The 3-link / 3-path example of Fig. 3 in the paper."""
    builder = TopologyBuilder("fig3")
    for name in ("s0", "s1", "s2", "s3"):
        builder.add_node(name, Tier.EDGE)
    builder.add_link("s0", "s1")  # l1 -> link 0
    builder.add_link("s1", "s2")  # l2 -> link 1
    builder.add_link("s2", "s3")  # l3 -> link 2
    return builder.build()


def toy_paths(topology):
    # p1 = {l1, l2}, p2 = {l1, l3}, p3 = {l3} as in Fig. 3.
    return [
        Path(0, ("s0", "s1", "s2"), frozenset({0, 1}), "s0", "s2"),
        Path(1, ("s0", "s1"), frozenset({0, 2}), "s0", "s1"),
        Path(2, ("s2", "s3"), frozenset({2}), "s2", "s3"),
    ]


class TestPropertiesOnFig3:
    def test_p1_p2_only_is_1_identifiable(self):
        topology = toy_topology()
        probe_matrix = ProbeMatrix(topology, toy_paths(topology)[:2])
        assert check_identifiability(probe_matrix, 1)
        assert not check_identifiability(probe_matrix, 2)

    def test_confusable_pairs_found_for_beta2(self):
        topology = toy_topology()
        probe_matrix = ProbeMatrix(topology, toy_paths(topology)[:2])
        confusable = find_confusable_failure_sets(probe_matrix, 2)
        assert confusable  # e.g. {l1} vs {l1, l2} share the syndrome {p1, p2}

    def test_all_three_paths_still_not_2_identifiable(self):
        # {l1,l2} and {l1,l3} both light up all three paths? No: {l1,l2} -> p1,p2
        # and {l1,l3} -> p1,p2,p3, but {l2,l3} -> p1,p2,p3 equals {l1,l3}.
        topology = toy_topology()
        probe_matrix = ProbeMatrix(topology, toy_paths(topology))
        assert check_identifiability(probe_matrix, 1)
        assert not check_identifiability(probe_matrix, 2)

    def test_empty_matrix_not_identifiable(self):
        topology = toy_topology()
        probe_matrix = ProbeMatrix(topology, [])
        assert not check_identifiability(probe_matrix, 1)
        assert identifiability_level(probe_matrix, 2) == 0

    def test_beta_zero_trivially_true(self):
        topology = toy_topology()
        probe_matrix = ProbeMatrix(topology, [])
        assert check_identifiability(probe_matrix, 0)

    def test_coverage_level(self):
        topology = toy_topology()
        probe_matrix = ProbeMatrix(topology, toy_paths(topology))
        assert coverage_level(probe_matrix) == 1
        assert check_coverage(probe_matrix, 1)
        assert not check_coverage(probe_matrix, 2)

    def test_identifiability_level_on_real_matrix(self, fattree4_probe_matrix_11):
        assert identifiability_level(fattree4_probe_matrix_11, max_beta=2) == 1


class TestExtendedLinkSpace:
    def test_beta1_has_no_virtual_links(self):
        space = ExtendedLinkSpace([3, 7, 9], beta=1)
        assert space.num_physical == 3
        assert space.num_virtual == 0
        assert space.num_extended == 3

    def test_beta2_combination_count(self):
        space = ExtendedLinkSpace(range(6), beta=2)
        assert space.num_extended == 6 + math.comb(6, 2)
        assert space.num_extended == space.expected_extended_count()

    def test_beta3_combination_count(self):
        space = ExtendedLinkSpace(range(5), beta=3)
        assert space.num_extended == 5 + math.comb(5, 2) + math.comb(5, 3)

    def test_containing_lists(self):
        space = ExtendedLinkSpace([0, 1, 2], beta=2)
        containing = space.extended_links_containing(1)
        # The singleton {1} plus the pairs {0,1} and {1,2}.
        assert len(containing) == 3
        for ext in containing:
            assert 1 in space.combination(ext)

    def test_links_on_path_or_semantics(self):
        space = ExtendedLinkSpace([0, 1, 2, 3], beta=2)
        on_path = space.extended_links_on_path([0, 1])
        # Every combination containing 0 or 1: singletons {0},{1} and pairs
        # {0,1},{0,2},{0,3},{1,2},{1,3} -> 7 extended links.
        assert len(on_path) == 7

    def test_physical_to_extended_identity_ordering(self):
        space = ExtendedLinkSpace([10, 20, 30], beta=2)
        for link in (10, 20, 30):
            ext = space.physical_to_extended(link)
            assert space.combination(ext) == (link,)
            assert not space.is_virtual(ext)

    def test_unknown_link_raises(self):
        space = ExtendedLinkSpace([1, 2], beta=1)
        with pytest.raises(KeyError):
            space.extended_links_containing(99)
        with pytest.raises(KeyError):
            space.physical_to_extended(99)

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            ExtendedLinkSpace([1], beta=-1)

    def test_path_links_outside_space_ignored(self):
        space = ExtendedLinkSpace([0, 1], beta=1)
        assert space.extended_links_on_path([0, 99]) == {space.physical_to_extended(0)}


class TestLinkSetPartition:
    def test_initial_state(self):
        partition = LinkSetPartition(5)
        assert partition.num_cells == 1
        assert not partition.fully_refined
        assert partition.cells_touched([0, 3]) == 1

    def test_split_creates_new_cell(self):
        partition = LinkSetPartition(4)
        created = partition.split([0, 1])
        assert created == 1
        assert partition.num_cells == 2
        assert partition.same_cell(0, 1)
        assert partition.same_cell(2, 3)
        assert not partition.same_cell(0, 2)

    def test_split_whole_cell_is_noop(self):
        partition = LinkSetPartition(3)
        partition.split([0, 1, 2])
        assert partition.num_cells == 1

    def test_refinement_to_singletons(self):
        partition = LinkSetPartition(4)
        partition.split([0, 1])
        partition.split([0, 2])
        partition.split([1, 3])  # does this fully refine? {0},{1},{2},{3}
        assert partition.fully_refined
        assert partition.num_singletons == 4

    def test_splits_gained_matches_actual_split(self):
        partition = LinkSetPartition(6)
        for links in ([0, 1, 2], [0, 3], [1, 4]):
            predicted = partition.splits_gained(links)
            actual = partition.split(links)
            assert predicted == actual

    def test_cells_touched_counts_distinct_cells(self):
        partition = LinkSetPartition(4)
        partition.split([0, 1])
        assert partition.cells_touched([0, 2]) == 2
        assert partition.cells_touched([0, 1]) == 1

    def test_signature_is_canonical(self):
        a = LinkSetPartition(4)
        b = LinkSetPartition(4)
        a.split([0, 1])
        b.split([2, 3])  # complementary split -> same partition
        assert a.signature() == b.signature()

    def test_empty_and_single_link_partitions(self):
        empty = LinkSetPartition(0)
        assert empty.fully_refined
        single = LinkSetPartition(1)
        assert single.fully_refined
        assert single.num_singletons == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinkSetPartition(-1)

    def test_cell_members_view_is_copy(self):
        partition = LinkSetPartition(3)
        members = partition.cell_members(partition.cell_of(0))
        members.discard(0)
        assert 0 in partition.cell_members(partition.cell_of(0))


class TestLazyMinHeap:
    def test_pop_lazy_returns_minimum(self):
        heap = LazyMinHeap([(3.0, "c"), (1.0, "a"), (2.0, "b")])
        score, item = heap.pop_lazy(0, rescore=lambda x: {"a": 1.0, "b": 2.0, "c": 3.0}[x])
        assert item == "a" and score == 1.0

    def test_pop_lazy_reorders_on_stale_scores(self):
        heap = LazyMinHeap([(1.0, "a"), (2.0, "b")])
        # "a" became expensive since insertion; "b" should be returned.
        fresh = {"a": 5.0, "b": 2.0}
        score, item = heap.pop_lazy(1, rescore=lambda x: fresh[x])
        assert item == "b"
        assert len(heap) == 1

    def test_pop_lazy_trusts_current_iteration_stamp(self):
        heap = LazyMinHeap()
        heap.push(1.0, "a", stamp=7)
        calls = []

        def rescore(item):
            calls.append(item)
            return 99.0

        score, item = heap.pop_lazy(7, rescore)
        assert item == "a" and score == 1.0
        assert calls == []  # stamp matches, no rescore

    def test_pop_lazy_empty(self):
        heap = LazyMinHeap()
        assert heap.pop_lazy(0, rescore=lambda x: 0.0) is None

    def test_pop_eager_rescans_everything(self):
        heap = LazyMinHeap([(1.0, "a"), (2.0, "b"), (3.0, "c")])
        fresh = {"a": 9.0, "b": 8.0, "c": 0.5}
        score, item = heap.pop_eager(rescore=lambda x: fresh[x])
        assert item == "c" and score == 0.5
        assert len(heap) == 2

    def test_pop_eager_empty(self):
        assert LazyMinHeap().pop_eager(rescore=lambda x: 0.0) is None


class TestDecomposition:
    def test_fattree_decomposes_per_core_group(self, fattree4_routing):
        # Observation 1 of §4.3: in a Fattree, paths pinned through core group
        # g only use the edge-agg and agg-core links of aggregation position
        # g, so the problem splits into k/2 independent subproblems.
        subproblems = decompose_routing_matrix(fattree4_routing)
        assert len(subproblems) == 2
        assert sum(sp.num_links for sp in subproblems) == fattree4_routing.num_links
        assert sum(sp.num_paths for sp in subproblems) == fattree4_routing.num_paths
        sizes = {sp.num_links for sp in subproblems}
        assert sizes == {fattree4_routing.num_links // 2}

    def test_disjoint_link_sets_split(self):
        link_sets = [frozenset({0, 1}), frozenset({2, 3}), frozenset({1})]
        subproblems = decompose_by_link_sets(link_sets, [0, 1, 2, 3])
        assert len(subproblems) == 2
        sizes = sorted(sp.num_links for sp in subproblems)
        assert sizes == [2, 2]
        by_first_link = {sp.link_ids[0]: sp for sp in subproblems}
        assert set(by_first_link[0].path_indices) == {0, 2}
        assert set(by_first_link[2].path_indices) == {1}

    def test_isolated_links_become_singleton_components(self):
        link_sets = [frozenset({0})]
        subproblems = decompose_by_link_sets(link_sets, [0, 1, 2])
        assert len(subproblems) == 3
        empties = [sp for sp in subproblems if sp.num_paths == 0]
        assert len(empties) == 2

    def test_paths_outside_universe_dropped(self):
        link_sets = [frozenset({10, 11}), frozenset({0})]
        subproblems = decompose_by_link_sets(link_sets, [0])
        assert len(subproblems) == 1
        assert subproblems[0].path_indices == (1,)

    def test_deterministic_ordering(self):
        link_sets = [frozenset({5}), frozenset({1})]
        subproblems = decompose_by_link_sets(link_sets, [1, 5])
        assert subproblems[0].link_ids[0] < subproblems[1].link_ids[0]
