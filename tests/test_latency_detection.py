"""Tests for latency-spike detection (RTT > threshold treated as a loss)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.localization import (
    PLLLocalizer,
    RTTObservationAdapter,
    RTTThresholdConfig,
    evaluate_localization,
)
from repro.routing import enumerate_fattree_paths
from repro.simulation import LatencyModel


class TestRTTThresholdConfig:
    def test_is_spike(self):
        config = RTTThresholdConfig(threshold_us=1000)
        assert config.is_spike(1500)
        assert not config.is_spike(900)

    @pytest.mark.parametrize(
        "kwargs", [dict(threshold_us=0), dict(threshold_us=2000, timeout_us=1000)]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RTTThresholdConfig(**kwargs)


class TestAdapter:
    def test_path_observation_counts_spikes(self):
        adapter = RTTObservationAdapter(RTTThresholdConfig(threshold_us=1000))
        observation = adapter.path_observation(3, [500, 1500, 900, 2500])
        assert observation.path_index == 3
        assert observation.sent == 4 and observation.lost == 2

    def test_observations_skip_empty_and_validate_index(self, fattree4_probe_matrix):
        adapter = RTTObservationAdapter(RTTThresholdConfig(threshold_us=1000))
        observations = adapter.observations(
            fattree4_probe_matrix, {0: [500, 2000], 1: []}
        )
        assert 0 in observations and 1 not in observations
        with pytest.raises(KeyError):
            adapter.observations(fattree4_probe_matrix, {10_000: [1.0]})

    def test_baseline_threshold(self):
        adapter = RTTObservationAdapter()
        derived = adapter.baseline_threshold([100.0, 200.0, 300.0], multiplier=3.0)
        assert derived.threshold_us == pytest.approx(900.0)
        with pytest.raises(ValueError):
            adapter.baseline_threshold([], multiplier=3.0)
        with pytest.raises(ValueError):
            adapter.baseline_threshold([100.0], multiplier=1.0)

    def test_threshold_capped_at_timeout(self):
        adapter = RTTObservationAdapter(RTTThresholdConfig(threshold_us=500, timeout_us=1000))
        derived = adapter.baseline_threshold([900.0], multiplier=5.0)
        assert derived.threshold_us == 1000.0


class TestLatencyLocalizationEndToEnd:
    def test_congested_link_localized_from_rtt_spikes(self, fattree4, fattree4_probe_matrix):
        """A heavily congested link causes RTT spikes on exactly its probe paths;
        thresholding those RTTs and running PLL pinpoints the link -- the paper's
        'treat a slow RTT as a loss' claim."""
        rng = np.random.default_rng(5)
        model = LatencyModel()
        congested_link = fattree4_probe_matrix.link_ids[13]
        utilization = {l: 0.05 for l in fattree4_probe_matrix.link_ids}
        utilization[congested_link] = 0.96

        samples_by_path = {}
        for index, path in enumerate(fattree4_probe_matrix.paths):
            samples_by_path[index] = list(
                model.sample_path_rtt_us(path, utilization, rng, num_samples=50)
            )

        # Derive the spike threshold from a healthy path's samples.
        healthy_index = next(
            i for i in range(fattree4_probe_matrix.num_paths)
            if congested_link not in fattree4_probe_matrix.links_on(i)
        )
        adapter = RTTObservationAdapter()
        adapter = RTTObservationAdapter(
            adapter.baseline_threshold(samples_by_path[healthy_index], multiplier=3.0)
        )

        observations = adapter.observations(fattree4_probe_matrix, samples_by_path)
        verdict = PLLLocalizer().localize(fattree4_probe_matrix, observations)
        metrics = evaluate_localization(
            [congested_link], verdict.suspected_links, fattree4_probe_matrix.link_ids
        )
        assert congested_link in verdict.suspected_links
        assert metrics.false_positive_ratio <= 0.5
