"""Tests for structural symmetry discovery (path orbits, link roles)."""

from __future__ import annotations

import pytest

from repro.routing import enumerate_candidate_paths, enumerate_fattree_paths
from repro.topology import (
    PathOrbits,
    build_fattree,
    build_vl2,
    link_orbits,
    link_role,
    node_role,
    path_signature,
)


class TestNodeAndLinkRoles:
    def test_same_role_for_symmetric_edge_switches(self, fattree4):
        role_a = node_role(fattree4, "pod0_edge0")
        role_b = node_role(fattree4, "pod3_edge0")
        assert role_a == role_b

    def test_aggregation_positions_are_interchangeable(self, fattree4):
        # Swapping aggregation positions (together with core groups) is an
        # automorphism of the Fattree, so the roles must coincide.
        assert node_role(fattree4, "pod0_agg0") == node_role(fattree4, "pod0_agg1")

    def test_tier_distinguishes_roles(self, fattree4):
        assert node_role(fattree4, "core0_0") != node_role(fattree4, "pod0_edge0")

    def test_link_role_is_symmetric_in_endpoints(self, fattree4):
        link = fattree4.link_between("pod0_edge0", "pod0_agg0")
        role = link_role(fattree4, link)
        assert role == tuple(sorted(role))

    def test_link_orbits_group_symmetric_links(self, fattree4):
        orbits = link_orbits(fattree4, fattree4.switch_links)
        # Fattree(4) inter-switch links fall into two structural classes:
        # edge-aggregation and aggregation-core, 16 links each.
        assert len(orbits) == 2
        assert sorted(len(members) for members in orbits.values()) == [16, 16]


class TestPathSignatures:
    def test_interpod_paths_share_signature(self, fattree4):
        walk_a = ("pod0_edge0", "pod0_agg0", "core0_0", "pod1_agg0", "pod1_edge0")
        walk_b = ("pod2_edge0", "pod2_agg0", "core0_0", "pod3_agg0", "pod3_edge0")
        assert path_signature(fattree4, walk_a) == path_signature(fattree4, walk_b)

    def test_intrapod_and_interpod_differ(self, fattree4):
        inter = ("pod0_edge0", "pod0_agg0", "core0_0", "pod1_agg0", "pod1_edge0")
        intra = ("pod0_edge0", "pod0_agg0", "core0_0", "pod0_agg0", "pod0_edge1")
        assert path_signature(fattree4, inter) != path_signature(fattree4, intra)

    def test_different_agg_positions_are_isomorphic(self, fattree4):
        # Routing through the other core group is an automorphic image.
        low = ("pod0_edge0", "pod0_agg0", "core0_0", "pod1_agg0", "pod1_edge0")
        high = ("pod0_edge0", "pod0_agg1", "core1_0", "pod1_agg1", "pod1_edge0")
        assert path_signature(fattree4, low) == path_signature(fattree4, high)

    def test_bounce_and_straight_paths_differ(self, vl2_small):
        # A path that revisits a shared aggregation switch is not isomorphic to
        # one crossing four distinct switches.
        bounce = ("tor0", "agg0", "int0", "agg0", "tor2")
        straight = ("tor0", "agg0", "int0", "agg2", "tor1")
        assert path_signature(vl2_small, bounce) != path_signature(vl2_small, straight)


class TestPathOrbits:
    def test_orbits_partition_paths(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        orbits = PathOrbits.from_walks(fattree4, [p.nodes for p in paths])
        assert sum(len(m) for m in orbits.members) == len(paths)
        assert len(orbits.signature_of) == len(paths)

    def test_orbit_membership_consistency(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        orbits = PathOrbits.from_walks(fattree4, [p.nodes for p in paths])
        for orbit_index, members in enumerate(orbits.members):
            for member in members:
                assert orbits.orbit_of(member) == orbit_index

    def test_representatives_one_per_orbit(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        orbits = PathOrbits.from_walks(fattree4, [p.nodes for p in paths])
        reps = orbits.representatives()
        assert len(reps) == orbits.num_orbits
        assert len({orbits.orbit_of(r) for r in reps}) == orbits.num_orbits

    def test_fattree_orbit_count_is_small(self, fattree6):
        # The whole point of symmetry reduction: the orbit count is much
        # smaller than the candidate path count (pod identity is erased, so
        # every signature class has at least one member per pod pair).
        paths = enumerate_fattree_paths(fattree6, ordered=False)
        orbits = PathOrbits.from_walks(fattree6, [p.nodes for p in paths])
        assert orbits.num_orbits * 5 <= len(paths)
        assert orbits.summary()["largest_orbit"] >= 10

    def test_vl2_orbits(self):
        topology = build_vl2(8, 6, 0)
        paths = enumerate_candidate_paths(topology, ordered=False)
        orbits = PathOrbits.from_walks(topology, [p.nodes for p in paths])
        assert 1 <= orbits.num_orbits <= len(paths) // 10

    def test_empty_orbits(self, fattree4):
        orbits = PathOrbits.from_walks(fattree4, [])
        assert orbits.num_orbits == 0
        assert orbits.summary()["largest_orbit"] == 0
