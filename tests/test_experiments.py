"""Tests for the experiment harnesses: structure, scaling knobs and qualitative shapes.

The heavier "does the trend match the paper" checks live in benchmarks/; here
we verify that every harness runs end to end on tiny instances and produces
well-formed tables with the expected columns and reference data.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentTable,
    figure4,
    figure5,
    figure6,
    pll_comparison,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.common import format_value
from repro.topology import build_fattree


class TestExperimentTable:
    def test_add_row_and_render(self):
        table = ExperimentTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=None, b="x")
        table.add_note("a note")
        rendered = table.render()
        assert "t" in rendered and "a note" in rendered
        assert "2.5" in rendered
        assert "-" in rendered  # the None cell

    def test_column_values(self):
        table = ExperimentTable(title="t", columns=["a"])
        table.add_row(a=1)
        table.add_row(a=3)
        assert table.column_values("a") == [1, 3]

    @pytest.mark.parametrize(
        "value, expected",
        [(None, "-"), (True, "yes"), (False, "no"), (1234567, "1,234,567"), (0.0, "0")],
    )
    def test_format_value(self, value, expected):
        assert format_value(value) == expected


class TestTable2:
    def test_paper_reference_rows(self):
        reference = table2.paper_reference()
        assert len(reference.rows) == 9
        fattree72 = next(r for r in reference.rows if r["dcn"] == "Fattree(72)")
        assert fattree72["symmetry"] == pytest.approx(17.054)
        assert fattree72["strawman"] is None  # "> 24h"

    def test_run_tiny(self):
        instances = [table2.Table2Instance("Fattree(4)", lambda: build_fattree(4))]
        table = table2.run(instances=instances)
        assert len(table.rows) == 1
        row = table.rows[0]
        assert row["candidate_paths"] == 112
        for column in ("strawman", "decomposition", "lazy_update", "symmetry"):
            assert row[column] is not None and row[column] >= 0

    def test_strawman_skipped_over_limit(self):
        instances = [table2.Table2Instance("Fattree(6)", lambda: build_fattree(6))]
        table = table2.run(instances=instances, strawman_path_limit=10)
        assert table.rows[0]["strawman"] is None
        assert table.rows[0]["lazy_update"] is not None

    def test_default_instances_scales(self):
        assert len(table2.default_instances("small")) >= 3
        assert len(table2.default_instances("medium")) >= 3
        with pytest.raises(ValueError):
            table2.default_instances("huge")


class TestTable3:
    def test_paper_reference_rows(self):
        reference = table3.paper_reference()
        fattree64 = next(r for r in reference.rows if r["dcn"] == "Fattree(64)")
        assert fattree64["paths(1,1)"] == 61_440

    def test_run_tiny(self):
        instances = [table3.Table3Instance("Fattree(4)", lambda: build_fattree(4), fattree_k=4)]
        table = table3.run(instances=instances, alpha_beta=((1, 0), (1, 1)))
        row = table.rows[0]
        assert row["paths(1,0)"] < row["paths(1,1)"]
        assert row["fattree_lower_bound"] == pytest.approx(12.8)

    def test_beta_clamping_noted(self):
        instances = [table3.Table3Instance("Fattree(4)", lambda: build_fattree(4))]
        table = table3.run(instances=instances, alpha_beta=((1, 3),), max_beta=1)
        assert any("clamped" in note for note in table.notes)


class TestTable4:
    def test_paper_reference_trend(self):
        reference = table4.paper_reference()
        by_setting = {row["alpha_beta"]: row for row in reference.rows}
        assert by_setting["(1,1)"]["acc_1"] > by_setting["(3,0)"]["acc_1"]

    def test_run_tiny(self):
        table = table4.run(
            radix=4,
            alpha_beta=((1, 0), (1, 1)),
            failure_counts=(1, 2),
            trials=3,
            probes_per_path=60,
        )
        assert len(table.rows) == 2
        for row in table.rows:
            for count in (1, 2):
                assert 0.0 <= row[f"acc_{count}_failures"] <= 100.0

    def test_failure_count_exceeding_links_is_skipped(self):
        table = table4.run(
            radix=4, alpha_beta=((1, 0),), failure_counts=(1, 10_000), trials=1, probes_per_path=10
        )
        assert table.rows[0]["acc_10000_failures"] is None


class TestTable5:
    def test_paper_reference(self):
        reference = table5.paper_reference()
        assert all(row["false_positive_pct"] < 1.0 for row in reference.rows)

    def test_run_tiny(self):
        table = table5.run(radix=4, beta=1, failure_counts=(1, 2), trials=3, probes_per_path=80)
        assert len(table.rows) == 2
        for row in table.rows:
            total = row["accuracy_pct"] + row["false_negative_pct"]
            assert total == pytest.approx(100.0, abs=1e-6)


class TestFigure4:
    def test_run_tiny(self):
        table = figure4.run(radix=4, frequencies=(2, 20), trials_per_frequency=3)
        assert len(table.rows) == 2
        low, high = table.rows
        assert high["bandwidth_kbps"] > low["bandwidth_kbps"]
        assert high["cpu_pct"] > low["cpu_pct"]
        assert high["workload_rtt_us"] >= low["workload_rtt_us"] * 0.9
        assert figure4.paper_reference_notes()


class TestFigure5:
    def test_run_tiny(self):
        table = figure5.run(
            radix=4,
            trials=3,
            detector_frequencies=(5,),
            baseline_probes_per_pair=(5,),
        )
        systems = {row["system"] for row in table.rows}
        assert systems == {"deTector", "Pingmesh+Netbouncer", "NetNORAD+fbtracert"}
        detector_row = next(r for r in table.rows if r["system"] == "deTector")
        assert detector_row["time_to_localization_s"] == 30.0
        baseline_rows = [r for r in table.rows if r["system"] != "deTector"]
        assert all(r["time_to_localization_s"] >= 30.0 for r in baseline_rows)

    def test_paper_reference(self):
        reference = figure5.paper_reference()
        values = {row["system"]: row["probes_per_minute"] for row in reference.rows}
        assert values["deTector"] < values["NetNORAD+fbtracert"] < values["Pingmesh+Netbouncer"]


class TestFigure6:
    def test_run_tiny(self):
        table = figure6.run(radix=4, probe_budget_per_minute=4000, failure_counts=(1, 2), trials=3)
        detector_rows = [r for r in table.rows if r["system"] == "deTector"]
        assert len(detector_rows) == 2
        assert all(0.0 <= r["accuracy_pct"] <= 100.0 for r in table.rows)
        assert figure6.paper_reference_notes()


class TestPLLComparison:
    def test_run_tiny(self):
        table = pll_comparison.run(radix=4, trials=4, failures_per_trial=1, probes_per_path=60)
        algorithms = [row["algorithm"] for row in table.rows]
        assert algorithms == ["PLL", "Tomo", "SCORE", "OMP"]
        pll_row = table.rows[0]
        assert pll_row["accuracy_pct"] >= 70.0
        assert pll_row["mean_runtime_ms"] >= 0.0
