"""End-to-end integration tests across module boundaries.

These tests follow the paper's workflow (§3.2) through the public API only:
path computation -> probing -> localization, across topologies, failure
classes and operating conditions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_bcube, build_fattree, build_vl2, pmc_for_topology
from repro.core import check_coverage, check_identifiability
from repro.localization import (
    PLLLocalizer,
    aggregate_metrics,
    evaluate_localization,
    preprocess_observations,
)
from repro.monitor import ControllerConfig, DetectorSystem
from repro.simulation import (
    FailureGenerator,
    FailureScenario,
    LossMode,
    ProbeConfig,
    ProbeSimulator,
)


class TestCycleOnAlternativeTopologies:
    @pytest.mark.parametrize(
        "topology_factory",
        [lambda: build_vl2(6, 4, 0), lambda: build_bcube(3, 1)],
        ids=["vl2", "bcube"],
    )
    def test_pmc_plus_pll_cycle(self, topology_factory, rng):
        topology = topology_factory()
        result = pmc_for_topology(topology, alpha=2, beta=1)
        probe_matrix = result.probe_matrix
        assert check_coverage(probe_matrix, 2)
        assert check_identifiability(probe_matrix, 1)

        bad = probe_matrix.link_ids[len(probe_matrix.link_ids) // 2]
        simulator = ProbeSimulator(topology, FailureScenario.single_link(bad), rng)
        observations = simulator.observe_probe_matrix(probe_matrix, ProbeConfig(probes_per_path=50))
        cleaned = preprocess_observations(probe_matrix, observations)
        verdict = PLLLocalizer().localize(probe_matrix, cleaned.observations)
        assert verdict.suspected_links == [bad]


class TestAccuracyTargets:
    def test_single_failure_accuracy_matches_paper_ballpark(self, fattree4):
        """At the paper's operating point (10 pps, alpha=3, beta=1) accuracy is ~95%+."""
        rng = np.random.default_rng(1)
        system = DetectorSystem(
            fattree4, rng, ControllerConfig(alpha=3, beta=1, probes_per_second=10)
        )
        system.run_controller_cycle()
        generator = FailureGenerator(fattree4, rng)
        metrics = [system.run_window(generator.generate_single()).metrics for _ in range(25)]
        aggregated = aggregate_metrics(metrics)
        assert aggregated["accuracy"] >= 0.9
        assert aggregated["false_positive_ratio"] <= 0.05

    def test_accuracy_improves_with_probe_frequency(self, fattree4):
        """The Fig. 4(a) trend: more probes per window, better localization."""
        accuracies = {}
        for frequency in (1, 20):
            rng = np.random.default_rng(3)
            system = DetectorSystem(
                fattree4, rng, ControllerConfig(alpha=3, beta=1, probes_per_second=frequency)
            )
            system.run_controller_cycle()
            generator = FailureGenerator(fattree4, rng)
            metrics = [system.run_window(generator.generate_single()).metrics for _ in range(20)]
            accuracies[frequency] = aggregate_metrics(metrics)["accuracy"]
        assert accuracies[20] >= accuracies[1]

    def test_identifiability_beats_coverage_per_path(self, fattree6):
        """The Table 4 trend: identifiability buys more accuracy per selected path.

        A (1,1) matrix must clearly beat the 0-identifiability (1,0) matrix and
        reach at least the accuracy of the (2,0) matrix while using fewer paths.
        """
        results = {}
        path_counts = {}
        for alpha, beta in ((1, 0), (2, 0), (1, 1)):
            result = pmc_for_topology(fattree6, alpha=alpha, beta=beta)
            probe_matrix = result.probe_matrix
            path_counts[(alpha, beta)] = result.num_paths
            rng = np.random.default_rng(17)
            generator = FailureGenerator(fattree6, rng)
            metrics = []
            for _ in range(10):
                scenario = generator.generate(3)
                simulator = ProbeSimulator(fattree6, scenario, rng)
                observations = simulator.observe_probe_matrix(
                    probe_matrix, ProbeConfig(probes_per_path=80)
                )
                cleaned = preprocess_observations(probe_matrix, observations)
                verdict = PLLLocalizer().localize(probe_matrix, cleaned.observations)
                metrics.append(
                    evaluate_localization(
                        scenario.bad_link_ids, verdict.suspected_links, probe_matrix.link_ids
                    )
                )
            results[(alpha, beta)] = aggregate_metrics(metrics)["accuracy"]
        assert results[(1, 1)] >= results[(1, 0)] + 0.15
        assert results[(1, 1)] >= results[(2, 0)] - 0.05
        assert path_counts[(1, 1)] < path_counts[(2, 0)]


class TestOperationalScenarios:
    def test_probe_matrix_recomputation_after_reported_failure(self, fattree4):
        """§6.1 footnote: once a link is known bad, the next cycle avoids it."""
        rng = np.random.default_rng(9)
        system = DetectorSystem(fattree4, rng, ControllerConfig(alpha=2, beta=1))
        system.run_controller_cycle()
        bad = fattree4.switch_links[7].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert bad in outcome.suspected_links

        # Operator confirms the failure; the watchdog records it and the next
        # controller cycle plans around the dead link.
        system.watchdog.report_failed_link(bad)
        cycle = system.run_controller_cycle()
        for index in range(cycle.probe_matrix.num_paths):
            assert bad not in cycle.probe_matrix.links_on(index)

        # Monitoring continues and still catches new failures elsewhere.
        other = next(
            l.link_id for l in fattree4.switch_links
            if l.link_id != bad and cycle.probe_matrix.paths_through(l.link_id)
        )
        outcome2 = system.run_window(FailureScenario.single_link(other))
        assert other in outcome2.suspected_links

    def test_transient_failure_detected_within_single_window(self, fattree4):
        """Transient failures are caught because localization needs no second round."""
        rng = np.random.default_rng(21)
        system = DetectorSystem(fattree4, rng, ControllerConfig(alpha=3, beta=1))
        system.run_controller_cycle()
        bad = fattree4.switch_links[25].link_id
        outcome = system.run_window(FailureScenario.single_link(bad))
        assert bad in outcome.suspected_links
        # Next window the failure is gone; no stale alerts are produced.
        healthy = system.run_window(FailureScenario())
        assert healthy.suspected_links == []

    def test_mixed_concurrent_failure_modes(self, fattree4, fattree4_probe_matrix, rng):
        links = fattree4_probe_matrix.link_ids
        scenario = FailureScenario()
        from repro.simulation import LinkFailure

        scenario.add(LinkFailure(link_id=links[4], mode=LossMode.FULL))
        scenario.add(
            LinkFailure(link_id=links[20], mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.4)
        )
        scenario.add(
            LinkFailure(link_id=links[30], mode=LossMode.RANDOM_PARTIAL, loss_rate=0.2)
        )
        simulator = ProbeSimulator(fattree4, scenario, rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=200)
        )
        cleaned = preprocess_observations(fattree4_probe_matrix, observations)
        verdict = PLLLocalizer().localize(fattree4_probe_matrix, cleaned.observations)
        metrics = evaluate_localization(
            scenario.bad_link_ids, verdict.suspected_links, fattree4_probe_matrix.link_ids
        )
        assert metrics.accuracy >= 2 / 3
        assert metrics.false_positive_ratio <= 1 / 3
