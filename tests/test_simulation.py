"""Tests for the simulation substrate: failures, probing, workload, latency, resources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.localization import PathObservation
from repro.routing import ECMPRouter, ProbePacket, enumerate_fattree_paths
from repro.simulation import (
    FailureGenerator,
    FailureGeneratorConfig,
    FailureScenario,
    LatencyConfig,
    LatencyModel,
    LinkFailure,
    LossMode,
    PingerResourceModel,
    ProbeConfig,
    ProbeSimulator,
    WorkloadConfig,
    WorkloadModel,
)


class TestLinkFailure:
    def test_full_loss_effective_rate(self):
        failure = LinkFailure(link_id=1, mode=LossMode.FULL)
        assert failure.effective_loss_rate == 1.0

    def test_deterministic_partial_drops_consistently(self):
        failure = LinkFailure(link_id=1, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.5)
        flow = ("a", "b", 1000, 2000, 17)
        assert failure.drops_flow(flow) == failure.drops_flow(flow)

    def test_deterministic_partial_fraction_approximate(self):
        failure = LinkFailure(link_id=3, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.3)
        flows = [("a", "b", 1000 + i, 2000, 17) for i in range(2000)]
        dropped = sum(failure.drops_flow(f) for f in flows)
        assert 0.2 < dropped / len(flows) < 0.4
        assert failure.effective_loss_rate == pytest.approx(0.3)

    @pytest.mark.parametrize("kwargs", [dict(loss_rate=1.5), dict(match_fraction=0.0)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LinkFailure(link_id=0, mode=LossMode.RANDOM_PARTIAL, **kwargs)


class TestFailureScenario:
    def test_single_link(self):
        scenario = FailureScenario.single_link(7)
        assert scenario.bad_link_ids == [7]
        assert scenario.failure_on(7).mode is LossMode.FULL
        assert scenario.failure_on(8) is None

    def test_switch_down(self, fattree4):
        switch = "pod0_agg0"
        scenario = FailureScenario.switch_down(fattree4, switch)
        incident = {l.link_id for l in fattree4.links_of(switch)}
        assert set(scenario.bad_link_ids) == incident
        assert scenario.failed_switches == (switch,)

    def test_add(self):
        scenario = FailureScenario()
        scenario.add(LinkFailure(link_id=2, mode=LossMode.FULL))
        assert scenario.num_failures == 1


class TestFailureGenerator:
    def test_generates_requested_count(self, fattree4, rng):
        generator = FailureGenerator(fattree4, rng)
        for count in (1, 3, 5):
            scenario = generator.generate(count)
            assert scenario.num_failures == count

    def test_failures_are_switch_links(self, fattree4, rng):
        generator = FailureGenerator(fattree4, rng)
        switch_links = {l.link_id for l in fattree4.switch_links}
        for _ in range(20):
            scenario = generator.generate_single()
            assert set(scenario.bad_link_ids) <= switch_links

    def test_all_modes_eventually_drawn(self, fattree4, rng):
        generator = FailureGenerator(fattree4, rng)
        modes = set()
        for _ in range(60):
            scenario = generator.generate_single()
            modes.update(f.mode for f in scenario.failures.values())
        assert modes == {LossMode.FULL, LossMode.DETERMINISTIC_PARTIAL, LossMode.RANDOM_PARTIAL}

    def test_random_loss_rates_within_buckets(self, fattree4, rng):
        config = FailureGeneratorConfig(
            mode_weights={LossMode.RANDOM_PARTIAL: 1.0},
            random_loss_rate_buckets=((1e-2, 1e-1, 1.0),),
        )
        generator = FailureGenerator(fattree4, rng, config)
        for _ in range(20):
            failure = list(generator.generate_single().failures.values())[0]
            assert 1e-2 <= failure.loss_rate <= 1e-1

    def test_too_many_failures_rejected(self, fattree4, rng):
        generator = FailureGenerator(fattree4, rng)
        with pytest.raises(ValueError):
            generator.generate(10_000)

    def test_zero_failures_rejected(self, fattree4, rng):
        generator = FailureGenerator(fattree4, rng)
        with pytest.raises(ValueError):
            generator.generate(0)

    def test_custom_link_universe(self, fattree4, rng):
        universe = [l.link_id for l in fattree4.switch_links[:4]]
        generator = FailureGenerator(fattree4, rng, link_ids=universe)
        for _ in range(10):
            assert set(generator.generate_single().bad_link_ids) <= set(universe)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(switch_failure_probability=1.5),
            dict(random_loss_rate_buckets=()),
            dict(random_loss_rate_buckets=((0.5, 0.1, 1.0),)),
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            FailureGeneratorConfig(**kwargs)


class TestProbeSimulator:
    def test_healthy_network_no_losses(self, fattree4, fattree4_probe_matrix, rng):
        simulator = ProbeSimulator(fattree4, FailureScenario(), rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=20)
        )
        assert observations.total_lost() == 0

    def test_full_loss_drops_every_probe_on_affected_paths(
        self, fattree4, fattree4_probe_matrix, rng
    ):
        bad = fattree4_probe_matrix.link_ids[6]
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad), rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=10)
        )
        affected = set(fattree4_probe_matrix.paths_through(bad))
        for obs in observations:
            if obs.path_index in affected:
                assert obs.lost == obs.sent
            else:
                assert obs.lost == 0

    def test_random_loss_rate_roughly_matches(self, fattree4, fattree4_probe_matrix, rng):
        bad = fattree4_probe_matrix.link_ids[2]
        scenario = FailureScenario.single_link(bad, mode=LossMode.RANDOM_PARTIAL, loss_rate=0.3)
        simulator = ProbeSimulator(fattree4, scenario, rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=400)
        )
        affected = fattree4_probe_matrix.paths_through(bad)
        rates = [observations.get(i).loss_rate for i in affected]
        # Forward + reverse traversal: effective ~= 1 - 0.7^2 = 0.51.
        assert all(0.35 < r < 0.65 for r in rates)

    def test_reverse_path_disabled_halves_loss(self, fattree4, fattree4_probe_matrix):
        bad = fattree4_probe_matrix.link_ids[2]
        scenario = FailureScenario.single_link(bad, mode=LossMode.RANDOM_PARTIAL, loss_rate=0.3)
        one_way = ProbeSimulator(
            fattree4, scenario, np.random.default_rng(1), probe_reverse_path=False
        )
        observations = one_way.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=400)
        )
        affected = fattree4_probe_matrix.paths_through(bad)
        rates = [observations.get(i).loss_rate for i in affected]
        assert all(0.2 < r < 0.4 for r in rates)

    def test_deterministic_partial_spares_some_ports(self, fattree4, fattree4_probe_matrix, rng):
        bad = fattree4_probe_matrix.link_ids[8]
        scenario = FailureScenario.single_link(
            bad, mode=LossMode.DETERMINISTIC_PARTIAL, match_fraction=0.3
        )
        simulator = ProbeSimulator(fattree4, scenario, rng)
        observations = simulator.observe_probe_matrix(
            fattree4_probe_matrix, ProbeConfig(probes_per_path=64, port_range=32)
        )
        affected = fattree4_probe_matrix.paths_through(bad)
        for index in affected:
            obs = observations.get(index)
            assert 0 < obs.lost < obs.sent

    def test_drop_accounting(self, fattree4, fattree4_probe_matrix, rng):
        bad = fattree4_probe_matrix.link_ids[6]
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad), rng)
        simulator.observe_probe_matrix(fattree4_probe_matrix, ProbeConfig(probes_per_path=5))
        assert simulator.drops_per_link.get(bad, 0) > 0
        assert set(simulator.drops_per_link) == {bad}

    def test_set_scenario_resets_accounting(self, fattree4, fattree4_probe_matrix, rng):
        bad = fattree4_probe_matrix.link_ids[6]
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad), rng)
        simulator.observe_probe_matrix(fattree4_probe_matrix, ProbeConfig(probes_per_path=5))
        simulator.set_scenario(FailureScenario())
        assert simulator.drops_per_link == {}
        assert simulator.scenario.num_failures == 0

    def test_probe_path_single(self, fattree4, fattree4_probe_matrix, rng):
        path = fattree4_probe_matrix.path(0)
        simulator = ProbeSimulator(fattree4, FailureScenario(), rng)
        observation = simulator.probe_path(path, ProbeConfig(probes_per_path=7))
        assert observation.sent == 7 and observation.lost == 0

    def test_ecmp_probing_dilutes_single_path_failure(self, fattree4, rng):
        # A full-loss failure on one of the 4 parallel paths: pinned probing on
        # that path loses everything, ECMP probing between the pair loses only
        # about a quarter of the probes -- the §2 motivation for deTector.
        paths = enumerate_fattree_paths(fattree4, ordered=True)
        router = ECMPRouter(paths, seed=5)
        target_pair = ("pod0_edge0", "pod1_edge0")
        pair_paths = [p for p in paths if (p.src, p.dst) == target_pair]
        bad_path = pair_paths[0]
        bad_link = next(iter(bad_path.link_ids - pair_paths[1].link_ids))
        simulator = ProbeSimulator(fattree4, FailureScenario.single_link(bad_link), rng)
        outcome = simulator.probe_pair_ecmp(router, *target_pair, num_probes=200)
        assert 0 < outcome.lost < outcome.sent
        assert outcome.loss_rate < 0.6

    def test_ecmp_probing_unknown_pair_raises(self, fattree4, rng):
        router = ECMPRouter([], seed=1)
        simulator = ProbeSimulator(fattree4, FailureScenario(), rng)
        with pytest.raises(ValueError):
            simulator.probe_pair_ecmp(router, "a", "b", 5)

    def test_probe_config_validation(self):
        with pytest.raises(ValueError):
            ProbeConfig(probes_per_path=0)
        with pytest.raises(ValueError):
            ProbeConfig(port_range=0)


class TestWorkloadAndLatency:
    def test_workload_utilization_in_range(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        workload = WorkloadModel(fattree4, paths, rng)
        utilization = workload.link_utilization()
        assert set(utilization) == {l.link_id for l in fattree4.switch_links}
        assert all(0.0 <= value <= 0.99 for value in utilization.values())
        assert workload.mean_utilization(utilization) > 0.0

    def test_workload_flows_have_valid_endpoints(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        workload = WorkloadModel(fattree4, paths, rng)
        flows = workload.generate_flows()
        assert flows
        for flow in flows[:50]:
            assert flow.src != flow.dst
            assert flow.size_bytes > 0

    def test_workload_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(pareto_shape=1.0)
        with pytest.raises(ValueError):
            WorkloadConfig(link_capacity_bps=0)

    def test_latency_grows_with_utilization(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=False)
        model = LatencyModel()
        path = paths[0]
        idle = model.path_rtt_us(path, {})
        busy = model.path_rtt_us(path, {l: 0.9 for l in path.link_ids})
        assert busy > idle

    def test_latency_add_probe_load(self, fattree4):
        paths = enumerate_fattree_paths(fattree4, ordered=False)[:10]
        base = {l.link_id: 0.1 for l in fattree4.switch_links}
        updated = LatencyModel.add_probe_load(base, paths, probes_per_second_per_path=100)
        assert all(updated[l] >= base[l] for l in base)
        assert any(updated[l] > base[l] for l in base)

    def test_workload_rtt_statistics(self, fattree4, rng):
        paths = enumerate_fattree_paths(fattree4, ordered=False)[:20]
        model = LatencyModel()
        sample = model.workload_rtt(paths, {l.link_id: 0.2 for l in fattree4.switch_links}, rng)
        assert sample.mean_rtt_us > 0
        assert sample.jitter_us >= 0
        assert sample.p99_rtt_us >= sample.mean_rtt_us

    def test_workload_rtt_requires_paths(self, rng):
        with pytest.raises(ValueError):
            LatencyModel().workload_rtt([], {}, rng)

    def test_latency_config_validation(self):
        with pytest.raises(ValueError):
            LatencyConfig(link_capacity_bps=0)
        with pytest.raises(ValueError):
            LatencyConfig(max_utilization=1.0)


class TestResourceModel:
    def test_paper_operating_point(self):
        usage = PingerResourceModel().usage(probes_per_second=10, num_paths=60)
        # §6.3: ~100 Kbps, ~0.4% CPU, ~13 MB at 10 probes/second.
        assert 100 <= usage.bandwidth_kbps <= 200
        assert 0.2 <= usage.cpu_percent <= 0.8
        assert 10 <= usage.memory_mb <= 16

    def test_linear_growth_with_frequency(self):
        model = PingerResourceModel()
        low = model.usage(5)
        high = model.usage(50)
        assert high.bandwidth_kbps == pytest.approx(10 * low.bandwidth_kbps)
        assert high.cpu_percent > low.cpu_percent

    def test_validation(self):
        with pytest.raises(ValueError):
            PingerResourceModel().usage(-1)
        with pytest.raises(ValueError):
            PingerResourceModel().usage(1, num_paths=-1)
